/root/repo/target/debug/deps/sparsedist_gen-1ad34f0762749f65.d: crates/gen/src/lib.rs crates/gen/src/checkpoint.rs crates/gen/src/matrixmarket.rs crates/gen/src/patterns.rs crates/gen/src/random.rs

/root/repo/target/debug/deps/sparsedist_gen-1ad34f0762749f65: crates/gen/src/lib.rs crates/gen/src/checkpoint.rs crates/gen/src/matrixmarket.rs crates/gen/src/patterns.rs crates/gen/src/random.rs

crates/gen/src/lib.rs:
crates/gen/src/checkpoint.rs:
crates/gen/src/matrixmarket.rs:
crates/gen/src/patterns.rs:
crates/gen/src/random.rs:
