/root/repo/target/debug/deps/sparsedist_ops-6875a02617593aea.d: crates/ops/src/lib.rs crates/ops/src/distributed.rs crates/ops/src/elementwise.rs crates/ops/src/solve.rs crates/ops/src/spgemm.rs crates/ops/src/spmv.rs crates/ops/src/transpose.rs Cargo.toml

/root/repo/target/debug/deps/libsparsedist_ops-6875a02617593aea.rmeta: crates/ops/src/lib.rs crates/ops/src/distributed.rs crates/ops/src/elementwise.rs crates/ops/src/solve.rs crates/ops/src/spgemm.rs crates/ops/src/spmv.rs crates/ops/src/transpose.rs Cargo.toml

crates/ops/src/lib.rs:
crates/ops/src/distributed.rs:
crates/ops/src/elementwise.rs:
crates/ops/src/solve.rs:
crates/ops/src/spgemm.rs:
crates/ops/src/spmv.rs:
crates/ops/src/transpose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
