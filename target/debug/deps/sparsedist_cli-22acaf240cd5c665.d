/root/repo/target/debug/deps/sparsedist_cli-22acaf240cd5c665.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libsparsedist_cli-22acaf240cd5c665.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libsparsedist_cli-22acaf240cd5c665.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
