/root/repo/target/debug/deps/ablation_machine_models-d55bc6bea685ec1a.d: crates/bench/benches/ablation_machine_models.rs Cargo.toml

/root/repo/target/debug/deps/libablation_machine_models-d55bc6bea685ec1a.rmeta: crates/bench/benches/ablation_machine_models.rs Cargo.toml

crates/bench/benches/ablation_machine_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
