/root/repo/target/debug/deps/proptest-8e9636d3f252eed2.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-8e9636d3f252eed2: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
