/root/repo/target/debug/deps/kernels-40811c5b8dd5f0f1.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-40811c5b8dd5f0f1: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
