/root/repo/target/debug/deps/paper_goldens-a6658f5efe839786.d: tests/paper_goldens.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_goldens-a6658f5efe839786.rmeta: tests/paper_goldens.rs Cargo.toml

tests/paper_goldens.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
