/root/repo/target/debug/deps/sparsedist_cli-bd3c87ee82e232f6.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/sparsedist_cli-bd3c87ee82e232f6: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
