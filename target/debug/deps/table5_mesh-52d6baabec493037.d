/root/repo/target/debug/deps/table5_mesh-52d6baabec493037.d: crates/bench/benches/table5_mesh.rs

/root/repo/target/debug/deps/table5_mesh-52d6baabec493037: crates/bench/benches/table5_mesh.rs

crates/bench/benches/table5_mesh.rs:
