/root/repo/target/debug/deps/ablation_load_balance-9d15d0cf292f77ca.d: crates/bench/benches/ablation_load_balance.rs Cargo.toml

/root/repo/target/debug/deps/libablation_load_balance-9d15d0cf292f77ca.rmeta: crates/bench/benches/ablation_load_balance.rs Cargo.toml

crates/bench/benches/ablation_load_balance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
