/root/repo/target/debug/deps/table3_row-8cea7377b791ac76.d: crates/bench/benches/table3_row.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_row-8cea7377b791ac76.rmeta: crates/bench/benches/table3_row.rs Cargo.toml

crates/bench/benches/table3_row.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
