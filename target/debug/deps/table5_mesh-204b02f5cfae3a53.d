/root/repo/target/debug/deps/table5_mesh-204b02f5cfae3a53.d: crates/bench/benches/table5_mesh.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_mesh-204b02f5cfae3a53.rmeta: crates/bench/benches/table5_mesh.rs Cargo.toml

crates/bench/benches/table5_mesh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
