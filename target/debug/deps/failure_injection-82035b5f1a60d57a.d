/root/repo/target/debug/deps/failure_injection-82035b5f1a60d57a.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-82035b5f1a60d57a: tests/failure_injection.rs

tests/failure_injection.rs:
