/root/repo/target/debug/deps/table4_column-1fa40b95ed478b8c.d: crates/bench/benches/table4_column.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_column-1fa40b95ed478b8c.rmeta: crates/bench/benches/table4_column.rs Cargo.toml

crates/bench/benches/table4_column.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
