/root/repo/target/debug/deps/properties-6ec3c3bb799c13fa.d: tests/properties.rs

/root/repo/target/debug/deps/properties-6ec3c3bb799c13fa: tests/properties.rs

tests/properties.rs:
