/root/repo/target/debug/deps/sparsedist-c16f31034b23507c.d: src/lib.rs src/array.rs Cargo.toml

/root/repo/target/debug/deps/libsparsedist-c16f31034b23507c.rmeta: src/lib.rs src/array.rs Cargo.toml

src/lib.rs:
src/array.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
