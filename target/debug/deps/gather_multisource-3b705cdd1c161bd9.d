/root/repo/target/debug/deps/gather_multisource-3b705cdd1c161bd9.d: crates/bench/benches/gather_multisource.rs

/root/repo/target/debug/deps/gather_multisource-3b705cdd1c161bd9: crates/bench/benches/gather_multisource.rs

crates/bench/benches/gather_multisource.rs:
