/root/repo/target/debug/deps/compression_formats-6cdc2c1e30d9f0ea.d: crates/bench/benches/compression_formats.rs

/root/repo/target/debug/deps/compression_formats-6cdc2c1e30d9f0ea: crates/bench/benches/compression_formats.rs

crates/bench/benches/compression_formats.rs:
