/root/repo/target/debug/deps/sparsedist_gen-0a53da4cfc9ae377.d: crates/gen/src/lib.rs crates/gen/src/checkpoint.rs crates/gen/src/matrixmarket.rs crates/gen/src/patterns.rs crates/gen/src/random.rs Cargo.toml

/root/repo/target/debug/deps/libsparsedist_gen-0a53da4cfc9ae377.rmeta: crates/gen/src/lib.rs crates/gen/src/checkpoint.rs crates/gen/src/matrixmarket.rs crates/gen/src/patterns.rs crates/gen/src/random.rs Cargo.toml

crates/gen/src/lib.rs:
crates/gen/src/checkpoint.rs:
crates/gen/src/matrixmarket.rs:
crates/gen/src/patterns.rs:
crates/gen/src/random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
