/root/repo/target/debug/deps/ablation_redistribution-fde89284029343b6.d: crates/bench/benches/ablation_redistribution.rs Cargo.toml

/root/repo/target/debug/deps/libablation_redistribution-fde89284029343b6.rmeta: crates/bench/benches/ablation_redistribution.rs Cargo.toml

crates/bench/benches/ablation_redistribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
