/root/repo/target/debug/deps/end_to_end-a6d6e1cdaec3ed39.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a6d6e1cdaec3ed39: tests/end_to_end.rs

tests/end_to_end.rs:
