/root/repo/target/debug/deps/sparsedist-990fa488c373b2d9.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsparsedist-990fa488c373b2d9.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
