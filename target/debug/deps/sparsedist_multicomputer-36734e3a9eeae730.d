/root/repo/target/debug/deps/sparsedist_multicomputer-36734e3a9eeae730.d: crates/multicomputer/src/lib.rs crates/multicomputer/src/collectives.rs crates/multicomputer/src/engine.rs crates/multicomputer/src/fault.rs crates/multicomputer/src/model.rs crates/multicomputer/src/pack.rs crates/multicomputer/src/time.rs crates/multicomputer/src/timing.rs crates/multicomputer/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libsparsedist_multicomputer-36734e3a9eeae730.rmeta: crates/multicomputer/src/lib.rs crates/multicomputer/src/collectives.rs crates/multicomputer/src/engine.rs crates/multicomputer/src/fault.rs crates/multicomputer/src/model.rs crates/multicomputer/src/pack.rs crates/multicomputer/src/time.rs crates/multicomputer/src/timing.rs crates/multicomputer/src/topology.rs Cargo.toml

crates/multicomputer/src/lib.rs:
crates/multicomputer/src/collectives.rs:
crates/multicomputer/src/engine.rs:
crates/multicomputer/src/fault.rs:
crates/multicomputer/src/model.rs:
crates/multicomputer/src/pack.rs:
crates/multicomputer/src/time.rs:
crates/multicomputer/src/timing.rs:
crates/multicomputer/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
