/root/repo/target/debug/deps/tables-1ddf0e465636a53b.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-1ddf0e465636a53b: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
