/root/repo/target/debug/deps/ablation_compression_kind-bf294d9f72d4c947.d: crates/bench/benches/ablation_compression_kind.rs Cargo.toml

/root/repo/target/debug/deps/libablation_compression_kind-bf294d9f72d4c947.rmeta: crates/bench/benches/ablation_compression_kind.rs Cargo.toml

crates/bench/benches/ablation_compression_kind.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
