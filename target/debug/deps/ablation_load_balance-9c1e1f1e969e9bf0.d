/root/repo/target/debug/deps/ablation_load_balance-9c1e1f1e969e9bf0.d: crates/bench/benches/ablation_load_balance.rs

/root/repo/target/debug/deps/ablation_load_balance-9c1e1f1e969e9bf0: crates/bench/benches/ablation_load_balance.rs

crates/bench/benches/ablation_load_balance.rs:
