/root/repo/target/debug/deps/ablation_overlap-2edc46079211294f.d: crates/bench/benches/ablation_overlap.rs Cargo.toml

/root/repo/target/debug/deps/libablation_overlap-2edc46079211294f.rmeta: crates/bench/benches/ablation_overlap.rs Cargo.toml

crates/bench/benches/ablation_overlap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
