/root/repo/target/debug/deps/compression_formats-bfb54ce03285525c.d: crates/bench/benches/compression_formats.rs Cargo.toml

/root/repo/target/debug/deps/libcompression_formats-bfb54ce03285525c.rmeta: crates/bench/benches/compression_formats.rs Cargo.toml

crates/bench/benches/compression_formats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
