/root/repo/target/debug/deps/remarks_sweep-1f782ce8d0e57c7d.d: crates/bench/benches/remarks_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libremarks_sweep-1f782ce8d0e57c7d.rmeta: crates/bench/benches/remarks_sweep.rs Cargo.toml

crates/bench/benches/remarks_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
