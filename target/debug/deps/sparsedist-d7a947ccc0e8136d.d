/root/repo/target/debug/deps/sparsedist-d7a947ccc0e8136d.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/sparsedist-d7a947ccc0e8136d: crates/cli/src/main.rs

crates/cli/src/main.rs:
