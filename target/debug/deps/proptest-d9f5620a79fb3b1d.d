/root/repo/target/debug/deps/proptest-d9f5620a79fb3b1d.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-d9f5620a79fb3b1d.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
