/root/repo/target/debug/deps/ablation_topology-871f570b408e1e43.d: crates/bench/benches/ablation_topology.rs Cargo.toml

/root/repo/target/debug/deps/libablation_topology-871f570b408e1e43.rmeta: crates/bench/benches/ablation_topology.rs Cargo.toml

crates/bench/benches/ablation_topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
