/root/repo/target/debug/deps/sparsedist_ops-8f2e10ca6f9b21d6.d: crates/ops/src/lib.rs crates/ops/src/distributed.rs crates/ops/src/elementwise.rs crates/ops/src/solve.rs crates/ops/src/spgemm.rs crates/ops/src/spmv.rs crates/ops/src/transpose.rs

/root/repo/target/debug/deps/libsparsedist_ops-8f2e10ca6f9b21d6.rlib: crates/ops/src/lib.rs crates/ops/src/distributed.rs crates/ops/src/elementwise.rs crates/ops/src/solve.rs crates/ops/src/spgemm.rs crates/ops/src/spmv.rs crates/ops/src/transpose.rs

/root/repo/target/debug/deps/libsparsedist_ops-8f2e10ca6f9b21d6.rmeta: crates/ops/src/lib.rs crates/ops/src/distributed.rs crates/ops/src/elementwise.rs crates/ops/src/solve.rs crates/ops/src/spgemm.rs crates/ops/src/spmv.rs crates/ops/src/transpose.rs

crates/ops/src/lib.rs:
crates/ops/src/distributed.rs:
crates/ops/src/elementwise.rs:
crates/ops/src/solve.rs:
crates/ops/src/spgemm.rs:
crates/ops/src/spmv.rs:
crates/ops/src/transpose.rs:
