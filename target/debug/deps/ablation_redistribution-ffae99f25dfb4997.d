/root/repo/target/debug/deps/ablation_redistribution-ffae99f25dfb4997.d: crates/bench/benches/ablation_redistribution.rs

/root/repo/target/debug/deps/ablation_redistribution-ffae99f25dfb4997: crates/bench/benches/ablation_redistribution.rs

crates/bench/benches/ablation_redistribution.rs:
