/root/repo/target/debug/deps/tables-a30d70216d229320.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-a30d70216d229320: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
