/root/repo/target/debug/deps/ablation_machine_models-fd5fbdf78ee453e8.d: crates/bench/benches/ablation_machine_models.rs

/root/repo/target/debug/deps/ablation_machine_models-fd5fbdf78ee453e8: crates/bench/benches/ablation_machine_models.rs

crates/bench/benches/ablation_machine_models.rs:
