/root/repo/target/debug/deps/remarks_sweep-1724c9cf73d66ee4.d: crates/bench/benches/remarks_sweep.rs

/root/repo/target/debug/deps/remarks_sweep-1724c9cf73d66ee4: crates/bench/benches/remarks_sweep.rs

crates/bench/benches/remarks_sweep.rs:
