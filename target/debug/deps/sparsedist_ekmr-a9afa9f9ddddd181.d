/root/repo/target/debug/deps/sparsedist_ekmr-a9afa9f9ddddd181.d: crates/ekmr/src/lib.rs crates/ekmr/src/sparse3.rs crates/ekmr/src/sparse4.rs crates/ekmr/src/tensorops.rs

/root/repo/target/debug/deps/sparsedist_ekmr-a9afa9f9ddddd181: crates/ekmr/src/lib.rs crates/ekmr/src/sparse3.rs crates/ekmr/src/sparse4.rs crates/ekmr/src/tensorops.rs

crates/ekmr/src/lib.rs:
crates/ekmr/src/sparse3.rs:
crates/ekmr/src/sparse4.rs:
crates/ekmr/src/tensorops.rs:
