/root/repo/target/debug/deps/sparsedist-bcf91972f31480ca.d: src/lib.rs src/array.rs

/root/repo/target/debug/deps/sparsedist-bcf91972f31480ca: src/lib.rs src/array.rs

src/lib.rs:
src/array.rs:
