/root/repo/target/debug/deps/sparsedist-4a9abb046b867f8a.d: src/lib.rs src/array.rs Cargo.toml

/root/repo/target/debug/deps/libsparsedist-4a9abb046b867f8a.rmeta: src/lib.rs src/array.rs Cargo.toml

src/lib.rs:
src/array.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
