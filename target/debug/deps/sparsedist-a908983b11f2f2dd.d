/root/repo/target/debug/deps/sparsedist-a908983b11f2f2dd.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/sparsedist-a908983b11f2f2dd: crates/cli/src/main.rs

crates/cli/src/main.rs:
