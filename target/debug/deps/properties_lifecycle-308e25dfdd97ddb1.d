/root/repo/target/debug/deps/properties_lifecycle-308e25dfdd97ddb1.d: tests/properties_lifecycle.rs

/root/repo/target/debug/deps/properties_lifecycle-308e25dfdd97ddb1: tests/properties_lifecycle.rs

tests/properties_lifecycle.rs:
