/root/repo/target/debug/deps/sparsedist_gen-34325f724a0bae06.d: crates/gen/src/lib.rs crates/gen/src/checkpoint.rs crates/gen/src/matrixmarket.rs crates/gen/src/patterns.rs crates/gen/src/random.rs

/root/repo/target/debug/deps/libsparsedist_gen-34325f724a0bae06.rlib: crates/gen/src/lib.rs crates/gen/src/checkpoint.rs crates/gen/src/matrixmarket.rs crates/gen/src/patterns.rs crates/gen/src/random.rs

/root/repo/target/debug/deps/libsparsedist_gen-34325f724a0bae06.rmeta: crates/gen/src/lib.rs crates/gen/src/checkpoint.rs crates/gen/src/matrixmarket.rs crates/gen/src/patterns.rs crates/gen/src/random.rs

crates/gen/src/lib.rs:
crates/gen/src/checkpoint.rs:
crates/gen/src/matrixmarket.rs:
crates/gen/src/patterns.rs:
crates/gen/src/random.rs:
