/root/repo/target/debug/deps/sparsedist_core-0b9175c4b5433830.d: crates/core/src/lib.rs crates/core/src/compress/mod.rs crates/core/src/compress/bsr.rs crates/core/src/compress/ccs.rs crates/core/src/compress/coo.rs crates/core/src/compress/crs.rs crates/core/src/compress/dia.rs crates/core/src/compress/jds.rs crates/core/src/convert.rs crates/core/src/cost/mod.rs crates/core/src/cost/extensions.rs crates/core/src/cost/remarks.rs crates/core/src/dense.rs crates/core/src/encode.rs crates/core/src/error.rs crates/core/src/gather.rs crates/core/src/opcount.rs crates/core/src/partition/mod.rs crates/core/src/partition/balanced.rs crates/core/src/partition/block.rs crates/core/src/partition/cyclic.rs crates/core/src/redistribute.rs crates/core/src/schemes/mod.rs crates/core/src/schemes/cfs.rs crates/core/src/schemes/ed.rs crates/core/src/schemes/multi.rs crates/core/src/schemes/sfc.rs

/root/repo/target/debug/deps/libsparsedist_core-0b9175c4b5433830.rlib: crates/core/src/lib.rs crates/core/src/compress/mod.rs crates/core/src/compress/bsr.rs crates/core/src/compress/ccs.rs crates/core/src/compress/coo.rs crates/core/src/compress/crs.rs crates/core/src/compress/dia.rs crates/core/src/compress/jds.rs crates/core/src/convert.rs crates/core/src/cost/mod.rs crates/core/src/cost/extensions.rs crates/core/src/cost/remarks.rs crates/core/src/dense.rs crates/core/src/encode.rs crates/core/src/error.rs crates/core/src/gather.rs crates/core/src/opcount.rs crates/core/src/partition/mod.rs crates/core/src/partition/balanced.rs crates/core/src/partition/block.rs crates/core/src/partition/cyclic.rs crates/core/src/redistribute.rs crates/core/src/schemes/mod.rs crates/core/src/schemes/cfs.rs crates/core/src/schemes/ed.rs crates/core/src/schemes/multi.rs crates/core/src/schemes/sfc.rs

/root/repo/target/debug/deps/libsparsedist_core-0b9175c4b5433830.rmeta: crates/core/src/lib.rs crates/core/src/compress/mod.rs crates/core/src/compress/bsr.rs crates/core/src/compress/ccs.rs crates/core/src/compress/coo.rs crates/core/src/compress/crs.rs crates/core/src/compress/dia.rs crates/core/src/compress/jds.rs crates/core/src/convert.rs crates/core/src/cost/mod.rs crates/core/src/cost/extensions.rs crates/core/src/cost/remarks.rs crates/core/src/dense.rs crates/core/src/encode.rs crates/core/src/error.rs crates/core/src/gather.rs crates/core/src/opcount.rs crates/core/src/partition/mod.rs crates/core/src/partition/balanced.rs crates/core/src/partition/block.rs crates/core/src/partition/cyclic.rs crates/core/src/redistribute.rs crates/core/src/schemes/mod.rs crates/core/src/schemes/cfs.rs crates/core/src/schemes/ed.rs crates/core/src/schemes/multi.rs crates/core/src/schemes/sfc.rs

crates/core/src/lib.rs:
crates/core/src/compress/mod.rs:
crates/core/src/compress/bsr.rs:
crates/core/src/compress/ccs.rs:
crates/core/src/compress/coo.rs:
crates/core/src/compress/crs.rs:
crates/core/src/compress/dia.rs:
crates/core/src/compress/jds.rs:
crates/core/src/convert.rs:
crates/core/src/cost/mod.rs:
crates/core/src/cost/extensions.rs:
crates/core/src/cost/remarks.rs:
crates/core/src/dense.rs:
crates/core/src/encode.rs:
crates/core/src/error.rs:
crates/core/src/gather.rs:
crates/core/src/opcount.rs:
crates/core/src/partition/mod.rs:
crates/core/src/partition/balanced.rs:
crates/core/src/partition/block.rs:
crates/core/src/partition/cyclic.rs:
crates/core/src/redistribute.rs:
crates/core/src/schemes/mod.rs:
crates/core/src/schemes/cfs.rs:
crates/core/src/schemes/ed.rs:
crates/core/src/schemes/multi.rs:
crates/core/src/schemes/sfc.rs:
