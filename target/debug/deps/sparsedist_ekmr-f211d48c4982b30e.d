/root/repo/target/debug/deps/sparsedist_ekmr-f211d48c4982b30e.d: crates/ekmr/src/lib.rs crates/ekmr/src/sparse3.rs crates/ekmr/src/sparse4.rs crates/ekmr/src/tensorops.rs

/root/repo/target/debug/deps/libsparsedist_ekmr-f211d48c4982b30e.rlib: crates/ekmr/src/lib.rs crates/ekmr/src/sparse3.rs crates/ekmr/src/sparse4.rs crates/ekmr/src/tensorops.rs

/root/repo/target/debug/deps/libsparsedist_ekmr-f211d48c4982b30e.rmeta: crates/ekmr/src/lib.rs crates/ekmr/src/sparse3.rs crates/ekmr/src/sparse4.rs crates/ekmr/src/tensorops.rs

crates/ekmr/src/lib.rs:
crates/ekmr/src/sparse3.rs:
crates/ekmr/src/sparse4.rs:
crates/ekmr/src/tensorops.rs:
