/root/repo/target/debug/deps/tables-e6bb648c3bae4189.d: crates/bench/src/bin/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-e6bb648c3bae4189.rmeta: crates/bench/src/bin/tables.rs Cargo.toml

crates/bench/src/bin/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
