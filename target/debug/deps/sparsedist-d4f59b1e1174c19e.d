/root/repo/target/debug/deps/sparsedist-d4f59b1e1174c19e.d: src/lib.rs src/array.rs

/root/repo/target/debug/deps/libsparsedist-d4f59b1e1174c19e.rlib: src/lib.rs src/array.rs

/root/repo/target/debug/deps/libsparsedist-d4f59b1e1174c19e.rmeta: src/lib.rs src/array.rs

src/lib.rs:
src/array.rs:
