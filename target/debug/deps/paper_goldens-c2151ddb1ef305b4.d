/root/repo/target/debug/deps/paper_goldens-c2151ddb1ef305b4.d: tests/paper_goldens.rs

/root/repo/target/debug/deps/paper_goldens-c2151ddb1ef305b4: tests/paper_goldens.rs

tests/paper_goldens.rs:
