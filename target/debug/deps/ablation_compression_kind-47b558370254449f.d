/root/repo/target/debug/deps/ablation_compression_kind-47b558370254449f.d: crates/bench/benches/ablation_compression_kind.rs

/root/repo/target/debug/deps/ablation_compression_kind-47b558370254449f: crates/bench/benches/ablation_compression_kind.rs

crates/bench/benches/ablation_compression_kind.rs:
