/root/repo/target/debug/deps/table3_row-40c7fb6a5c1815f2.d: crates/bench/benches/table3_row.rs

/root/repo/target/debug/deps/table3_row-40c7fb6a5c1815f2: crates/bench/benches/table3_row.rs

crates/bench/benches/table3_row.rs:
