/root/repo/target/debug/deps/sparsedist_bench-17839d212ffe39ff.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsparsedist_bench-17839d212ffe39ff.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsparsedist_bench-17839d212ffe39ff.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
