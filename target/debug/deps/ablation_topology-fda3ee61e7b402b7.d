/root/repo/target/debug/deps/ablation_topology-fda3ee61e7b402b7.d: crates/bench/benches/ablation_topology.rs

/root/repo/target/debug/deps/ablation_topology-fda3ee61e7b402b7: crates/bench/benches/ablation_topology.rs

crates/bench/benches/ablation_topology.rs:
