/root/repo/target/debug/deps/sparsedist_bench-8da453846a903b5c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sparsedist_bench-8da453846a903b5c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
