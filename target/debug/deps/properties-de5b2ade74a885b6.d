/root/repo/target/debug/deps/properties-de5b2ade74a885b6.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-de5b2ade74a885b6.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
