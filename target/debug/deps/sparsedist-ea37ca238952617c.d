/root/repo/target/debug/deps/sparsedist-ea37ca238952617c.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsparsedist-ea37ca238952617c.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
