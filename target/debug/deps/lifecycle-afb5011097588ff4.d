/root/repo/target/debug/deps/lifecycle-afb5011097588ff4.d: tests/lifecycle.rs

/root/repo/target/debug/deps/lifecycle-afb5011097588ff4: tests/lifecycle.rs

tests/lifecycle.rs:
