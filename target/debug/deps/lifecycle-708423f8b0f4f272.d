/root/repo/target/debug/deps/lifecycle-708423f8b0f4f272.d: tests/lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/liblifecycle-708423f8b0f4f272.rmeta: tests/lifecycle.rs Cargo.toml

tests/lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
