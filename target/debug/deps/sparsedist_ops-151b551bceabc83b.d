/root/repo/target/debug/deps/sparsedist_ops-151b551bceabc83b.d: crates/ops/src/lib.rs crates/ops/src/distributed.rs crates/ops/src/elementwise.rs crates/ops/src/solve.rs crates/ops/src/spgemm.rs crates/ops/src/spmv.rs crates/ops/src/transpose.rs

/root/repo/target/debug/deps/sparsedist_ops-151b551bceabc83b: crates/ops/src/lib.rs crates/ops/src/distributed.rs crates/ops/src/elementwise.rs crates/ops/src/solve.rs crates/ops/src/spgemm.rs crates/ops/src/spmv.rs crates/ops/src/transpose.rs

crates/ops/src/lib.rs:
crates/ops/src/distributed.rs:
crates/ops/src/elementwise.rs:
crates/ops/src/solve.rs:
crates/ops/src/spgemm.rs:
crates/ops/src/spmv.rs:
crates/ops/src/transpose.rs:
