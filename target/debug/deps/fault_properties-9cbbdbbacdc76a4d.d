/root/repo/target/debug/deps/fault_properties-9cbbdbbacdc76a4d.d: tests/fault_properties.rs Cargo.toml

/root/repo/target/debug/deps/libfault_properties-9cbbdbbacdc76a4d.rmeta: tests/fault_properties.rs Cargo.toml

tests/fault_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
