/root/repo/target/debug/deps/gather_multisource-351a7bb5f239cc10.d: crates/bench/benches/gather_multisource.rs Cargo.toml

/root/repo/target/debug/deps/libgather_multisource-351a7bb5f239cc10.rmeta: crates/bench/benches/gather_multisource.rs Cargo.toml

crates/bench/benches/gather_multisource.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
