/root/repo/target/debug/deps/rand-dcd7cd4c6e0f743a.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-dcd7cd4c6e0f743a: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
