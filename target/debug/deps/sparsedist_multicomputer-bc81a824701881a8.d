/root/repo/target/debug/deps/sparsedist_multicomputer-bc81a824701881a8.d: crates/multicomputer/src/lib.rs crates/multicomputer/src/collectives.rs crates/multicomputer/src/engine.rs crates/multicomputer/src/fault.rs crates/multicomputer/src/model.rs crates/multicomputer/src/pack.rs crates/multicomputer/src/time.rs crates/multicomputer/src/timing.rs crates/multicomputer/src/topology.rs

/root/repo/target/debug/deps/sparsedist_multicomputer-bc81a824701881a8: crates/multicomputer/src/lib.rs crates/multicomputer/src/collectives.rs crates/multicomputer/src/engine.rs crates/multicomputer/src/fault.rs crates/multicomputer/src/model.rs crates/multicomputer/src/pack.rs crates/multicomputer/src/time.rs crates/multicomputer/src/timing.rs crates/multicomputer/src/topology.rs

crates/multicomputer/src/lib.rs:
crates/multicomputer/src/collectives.rs:
crates/multicomputer/src/engine.rs:
crates/multicomputer/src/fault.rs:
crates/multicomputer/src/model.rs:
crates/multicomputer/src/pack.rs:
crates/multicomputer/src/time.rs:
crates/multicomputer/src/timing.rs:
crates/multicomputer/src/topology.rs:
