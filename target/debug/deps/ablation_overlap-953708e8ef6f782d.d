/root/repo/target/debug/deps/ablation_overlap-953708e8ef6f782d.d: crates/bench/benches/ablation_overlap.rs

/root/repo/target/debug/deps/ablation_overlap-953708e8ef6f782d: crates/bench/benches/ablation_overlap.rs

crates/bench/benches/ablation_overlap.rs:
