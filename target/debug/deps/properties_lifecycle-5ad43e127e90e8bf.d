/root/repo/target/debug/deps/properties_lifecycle-5ad43e127e90e8bf.d: tests/properties_lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/libproperties_lifecycle-5ad43e127e90e8bf.rmeta: tests/properties_lifecycle.rs Cargo.toml

tests/properties_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
