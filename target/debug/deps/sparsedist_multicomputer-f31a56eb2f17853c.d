/root/repo/target/debug/deps/sparsedist_multicomputer-f31a56eb2f17853c.d: crates/multicomputer/src/lib.rs crates/multicomputer/src/collectives.rs crates/multicomputer/src/engine.rs crates/multicomputer/src/fault.rs crates/multicomputer/src/model.rs crates/multicomputer/src/pack.rs crates/multicomputer/src/time.rs crates/multicomputer/src/timing.rs crates/multicomputer/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libsparsedist_multicomputer-f31a56eb2f17853c.rmeta: crates/multicomputer/src/lib.rs crates/multicomputer/src/collectives.rs crates/multicomputer/src/engine.rs crates/multicomputer/src/fault.rs crates/multicomputer/src/model.rs crates/multicomputer/src/pack.rs crates/multicomputer/src/time.rs crates/multicomputer/src/timing.rs crates/multicomputer/src/topology.rs Cargo.toml

crates/multicomputer/src/lib.rs:
crates/multicomputer/src/collectives.rs:
crates/multicomputer/src/engine.rs:
crates/multicomputer/src/fault.rs:
crates/multicomputer/src/model.rs:
crates/multicomputer/src/pack.rs:
crates/multicomputer/src/time.rs:
crates/multicomputer/src/timing.rs:
crates/multicomputer/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
