/root/repo/target/debug/deps/fault_properties-4304b1af175bcd3b.d: tests/fault_properties.rs

/root/repo/target/debug/deps/fault_properties-4304b1af175bcd3b: tests/fault_properties.rs

tests/fault_properties.rs:
