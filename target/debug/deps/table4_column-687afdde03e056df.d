/root/repo/target/debug/deps/table4_column-687afdde03e056df.d: crates/bench/benches/table4_column.rs

/root/repo/target/debug/deps/table4_column-687afdde03e056df: crates/bench/benches/table4_column.rs

crates/bench/benches/table4_column.rs:
