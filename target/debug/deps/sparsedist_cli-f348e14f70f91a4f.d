/root/repo/target/debug/deps/sparsedist_cli-f348e14f70f91a4f.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libsparsedist_cli-f348e14f70f91a4f.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
