/root/repo/target/debug/deps/sparsedist_bench-b718f8947b245289.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsparsedist_bench-b718f8947b245289.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
