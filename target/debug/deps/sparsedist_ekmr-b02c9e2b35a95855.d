/root/repo/target/debug/deps/sparsedist_ekmr-b02c9e2b35a95855.d: crates/ekmr/src/lib.rs crates/ekmr/src/sparse3.rs crates/ekmr/src/sparse4.rs crates/ekmr/src/tensorops.rs Cargo.toml

/root/repo/target/debug/deps/libsparsedist_ekmr-b02c9e2b35a95855.rmeta: crates/ekmr/src/lib.rs crates/ekmr/src/sparse3.rs crates/ekmr/src/sparse4.rs crates/ekmr/src/tensorops.rs Cargo.toml

crates/ekmr/src/lib.rs:
crates/ekmr/src/sparse3.rs:
crates/ekmr/src/sparse4.rs:
crates/ekmr/src/tensorops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
