/root/repo/target/debug/examples/ekmr_multidim-e678f59ccc044d72.d: examples/ekmr_multidim.rs Cargo.toml

/root/repo/target/debug/examples/libekmr_multidim-e678f59ccc044d72.rmeta: examples/ekmr_multidim.rs Cargo.toml

examples/ekmr_multidim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
