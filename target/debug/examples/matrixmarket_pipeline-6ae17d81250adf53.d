/root/repo/target/debug/examples/matrixmarket_pipeline-6ae17d81250adf53.d: examples/matrixmarket_pipeline.rs

/root/repo/target/debug/examples/matrixmarket_pipeline-6ae17d81250adf53: examples/matrixmarket_pipeline.rs

examples/matrixmarket_pipeline.rs:
