/root/repo/target/debug/examples/paper_figures-1463635e7c031747.d: examples/paper_figures.rs Cargo.toml

/root/repo/target/debug/examples/libpaper_figures-1463635e7c031747.rmeta: examples/paper_figures.rs Cargo.toml

examples/paper_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
