/root/repo/target/debug/examples/quickstart-9d5e65b454fff490.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9d5e65b454fff490: examples/quickstart.rs

examples/quickstart.rs:
