/root/repo/target/debug/examples/paper_figures-c508c7240d65734a.d: examples/paper_figures.rs

/root/repo/target/debug/examples/paper_figures-c508c7240d65734a: examples/paper_figures.rs

examples/paper_figures.rs:
