/root/repo/target/debug/examples/scheme_advisor-7da0aff3e74f0cd5.d: examples/scheme_advisor.rs Cargo.toml

/root/repo/target/debug/examples/libscheme_advisor-7da0aff3e74f0cd5.rmeta: examples/scheme_advisor.rs Cargo.toml

examples/scheme_advisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
