/root/repo/target/debug/examples/repartition_pipeline-c6359601f4c1e8ef.d: examples/repartition_pipeline.rs

/root/repo/target/debug/examples/repartition_pipeline-c6359601f4c1e8ef: examples/repartition_pipeline.rs

examples/repartition_pipeline.rs:
