/root/repo/target/debug/examples/repartition_pipeline-773312796618e59e.d: examples/repartition_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/librepartition_pipeline-773312796618e59e.rmeta: examples/repartition_pipeline.rs Cargo.toml

examples/repartition_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
