/root/repo/target/debug/examples/matrixmarket_pipeline-e5bbb888aaaa2529.d: examples/matrixmarket_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libmatrixmarket_pipeline-e5bbb888aaaa2529.rmeta: examples/matrixmarket_pipeline.rs Cargo.toml

examples/matrixmarket_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
