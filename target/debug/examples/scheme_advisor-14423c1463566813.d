/root/repo/target/debug/examples/scheme_advisor-14423c1463566813.d: examples/scheme_advisor.rs

/root/repo/target/debug/examples/scheme_advisor-14423c1463566813: examples/scheme_advisor.rs

examples/scheme_advisor.rs:
