/root/repo/target/debug/examples/stencil_jacobi-b9d261a6a5ab2ab4.d: examples/stencil_jacobi.rs Cargo.toml

/root/repo/target/debug/examples/libstencil_jacobi-b9d261a6a5ab2ab4.rmeta: examples/stencil_jacobi.rs Cargo.toml

examples/stencil_jacobi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
