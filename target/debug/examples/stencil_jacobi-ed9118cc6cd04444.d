/root/repo/target/debug/examples/stencil_jacobi-ed9118cc6cd04444.d: examples/stencil_jacobi.rs

/root/repo/target/debug/examples/stencil_jacobi-ed9118cc6cd04444: examples/stencil_jacobi.rs

examples/stencil_jacobi.rs:
