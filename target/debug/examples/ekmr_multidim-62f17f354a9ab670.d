/root/repo/target/debug/examples/ekmr_multidim-62f17f354a9ab670.d: examples/ekmr_multidim.rs

/root/repo/target/debug/examples/ekmr_multidim-62f17f354a9ab670: examples/ekmr_multidim.rs

examples/ekmr_multidim.rs:
