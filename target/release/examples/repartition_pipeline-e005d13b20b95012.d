/root/repo/target/release/examples/repartition_pipeline-e005d13b20b95012.d: examples/repartition_pipeline.rs

/root/repo/target/release/examples/repartition_pipeline-e005d13b20b95012: examples/repartition_pipeline.rs

examples/repartition_pipeline.rs:
