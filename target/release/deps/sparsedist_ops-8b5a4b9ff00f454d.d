/root/repo/target/release/deps/sparsedist_ops-8b5a4b9ff00f454d.d: crates/ops/src/lib.rs crates/ops/src/distributed.rs crates/ops/src/elementwise.rs crates/ops/src/solve.rs crates/ops/src/spgemm.rs crates/ops/src/spmv.rs crates/ops/src/transpose.rs

/root/repo/target/release/deps/libsparsedist_ops-8b5a4b9ff00f454d.rlib: crates/ops/src/lib.rs crates/ops/src/distributed.rs crates/ops/src/elementwise.rs crates/ops/src/solve.rs crates/ops/src/spgemm.rs crates/ops/src/spmv.rs crates/ops/src/transpose.rs

/root/repo/target/release/deps/libsparsedist_ops-8b5a4b9ff00f454d.rmeta: crates/ops/src/lib.rs crates/ops/src/distributed.rs crates/ops/src/elementwise.rs crates/ops/src/solve.rs crates/ops/src/spgemm.rs crates/ops/src/spmv.rs crates/ops/src/transpose.rs

crates/ops/src/lib.rs:
crates/ops/src/distributed.rs:
crates/ops/src/elementwise.rs:
crates/ops/src/solve.rs:
crates/ops/src/spgemm.rs:
crates/ops/src/spmv.rs:
crates/ops/src/transpose.rs:
