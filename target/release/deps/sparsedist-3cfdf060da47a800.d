/root/repo/target/release/deps/sparsedist-3cfdf060da47a800.d: crates/cli/src/main.rs

/root/repo/target/release/deps/sparsedist-3cfdf060da47a800: crates/cli/src/main.rs

crates/cli/src/main.rs:
