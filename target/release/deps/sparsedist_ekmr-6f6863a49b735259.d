/root/repo/target/release/deps/sparsedist_ekmr-6f6863a49b735259.d: crates/ekmr/src/lib.rs crates/ekmr/src/sparse3.rs crates/ekmr/src/sparse4.rs crates/ekmr/src/tensorops.rs

/root/repo/target/release/deps/libsparsedist_ekmr-6f6863a49b735259.rlib: crates/ekmr/src/lib.rs crates/ekmr/src/sparse3.rs crates/ekmr/src/sparse4.rs crates/ekmr/src/tensorops.rs

/root/repo/target/release/deps/libsparsedist_ekmr-6f6863a49b735259.rmeta: crates/ekmr/src/lib.rs crates/ekmr/src/sparse3.rs crates/ekmr/src/sparse4.rs crates/ekmr/src/tensorops.rs

crates/ekmr/src/lib.rs:
crates/ekmr/src/sparse3.rs:
crates/ekmr/src/sparse4.rs:
crates/ekmr/src/tensorops.rs:
