/root/repo/target/release/deps/sparsedist_multicomputer-ba219206b2c8a0ec.d: crates/multicomputer/src/lib.rs crates/multicomputer/src/collectives.rs crates/multicomputer/src/engine.rs crates/multicomputer/src/fault.rs crates/multicomputer/src/model.rs crates/multicomputer/src/pack.rs crates/multicomputer/src/time.rs crates/multicomputer/src/timing.rs crates/multicomputer/src/topology.rs

/root/repo/target/release/deps/libsparsedist_multicomputer-ba219206b2c8a0ec.rlib: crates/multicomputer/src/lib.rs crates/multicomputer/src/collectives.rs crates/multicomputer/src/engine.rs crates/multicomputer/src/fault.rs crates/multicomputer/src/model.rs crates/multicomputer/src/pack.rs crates/multicomputer/src/time.rs crates/multicomputer/src/timing.rs crates/multicomputer/src/topology.rs

/root/repo/target/release/deps/libsparsedist_multicomputer-ba219206b2c8a0ec.rmeta: crates/multicomputer/src/lib.rs crates/multicomputer/src/collectives.rs crates/multicomputer/src/engine.rs crates/multicomputer/src/fault.rs crates/multicomputer/src/model.rs crates/multicomputer/src/pack.rs crates/multicomputer/src/time.rs crates/multicomputer/src/timing.rs crates/multicomputer/src/topology.rs

crates/multicomputer/src/lib.rs:
crates/multicomputer/src/collectives.rs:
crates/multicomputer/src/engine.rs:
crates/multicomputer/src/fault.rs:
crates/multicomputer/src/model.rs:
crates/multicomputer/src/pack.rs:
crates/multicomputer/src/time.rs:
crates/multicomputer/src/timing.rs:
crates/multicomputer/src/topology.rs:
