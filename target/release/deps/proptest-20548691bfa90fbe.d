/root/repo/target/release/deps/proptest-20548691bfa90fbe.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-20548691bfa90fbe.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-20548691bfa90fbe.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
