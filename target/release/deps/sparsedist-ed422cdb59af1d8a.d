/root/repo/target/release/deps/sparsedist-ed422cdb59af1d8a.d: src/lib.rs src/array.rs

/root/repo/target/release/deps/libsparsedist-ed422cdb59af1d8a.rlib: src/lib.rs src/array.rs

/root/repo/target/release/deps/libsparsedist-ed422cdb59af1d8a.rmeta: src/lib.rs src/array.rs

src/lib.rs:
src/array.rs:
