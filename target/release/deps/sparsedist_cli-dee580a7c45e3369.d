/root/repo/target/release/deps/sparsedist_cli-dee580a7c45e3369.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libsparsedist_cli-dee580a7c45e3369.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libsparsedist_cli-dee580a7c45e3369.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
