/root/repo/target/release/deps/rand-c5906651e43a1e79.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-c5906651e43a1e79.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-c5906651e43a1e79.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
