/root/repo/target/release/deps/sparsedist_gen-a61195977a1837cb.d: crates/gen/src/lib.rs crates/gen/src/checkpoint.rs crates/gen/src/matrixmarket.rs crates/gen/src/patterns.rs crates/gen/src/random.rs

/root/repo/target/release/deps/libsparsedist_gen-a61195977a1837cb.rlib: crates/gen/src/lib.rs crates/gen/src/checkpoint.rs crates/gen/src/matrixmarket.rs crates/gen/src/patterns.rs crates/gen/src/random.rs

/root/repo/target/release/deps/libsparsedist_gen-a61195977a1837cb.rmeta: crates/gen/src/lib.rs crates/gen/src/checkpoint.rs crates/gen/src/matrixmarket.rs crates/gen/src/patterns.rs crates/gen/src/random.rs

crates/gen/src/lib.rs:
crates/gen/src/checkpoint.rs:
crates/gen/src/matrixmarket.rs:
crates/gen/src/patterns.rs:
crates/gen/src/random.rs:
