#![warn(missing_docs)]

//! `sparsedist` — data distribution schemes for sparse arrays on
//! distributed-memory multicomputers.
//!
//! A Rust reproduction of Lin, Chung & Liu, *"Data Distribution Schemes of
//! Sparse Arrays on Distributed Memory Multicomputers"* (ICPP 2002). This
//! facade crate re-exports the workspace:
//!
//! * [`core`] — partitions, CRS/CCS compression, the SFC/CFS/ED schemes
//!   and the paper's analytic cost model;
//! * [`multicomputer`] — the simulated distributed-memory machine the
//!   schemes run on (SPMD engine, pack buffers, α-β cost model);
//! * [`gen`] — workload generators and MatrixMarket I/O;
//! * [`ops`] — post-distribution sparse computation (SpMV & friends);
//! * [`ekmr`] — multi-dimensional sparse arrays via the Extended Karnaugh
//!   Map Representation (the paper's stated future work).
//!
//! The [`array::DistributedSparseArray`] facade wraps the whole lifecycle
//! (distribute → compute → repartition → gather → checkpoint) in one
//! object; see `examples/quickstart.rs` for the two-minute tour.

pub mod array;

pub use sparsedist_core as core;
pub use sparsedist_ekmr as ekmr;
pub use sparsedist_gen as gen;
pub use sparsedist_multicomputer as multicomputer;
pub use sparsedist_ops as ops;

/// Convenience prelude: the names almost every user needs.
pub mod prelude {
    pub use sparsedist_core::compress::{Ccs, CompressKind, Coo, Crs, LocalCompressed};
    pub use sparsedist_core::cost::{predict, CostInput, PartitionMethod};
    pub use sparsedist_core::dense::Dense2D;
    pub use sparsedist_core::partition::{
        BlockCyclic, ColBlock, ColCyclic, Mesh2D, Partition, RowBlock, RowCyclic,
    };
    pub use sparsedist_core::schemes::{
        run_scheme, run_scheme_with, SchemeConfig, SchemeKind, SchemeRun,
    };
    pub use sparsedist_core::wire::{CodecChoice, WireFormat, WirePolicy};
    pub use sparsedist_multicomputer::{MachineModel, Multicomputer, Phase};
}
