//! The high-level object model: a sparse array that *lives distributed*.
//!
//! [`DistributedSparseArray`] owns a machine, a partition and the
//! per-processor compressed local arrays, and exposes the whole workspace
//! as methods: distribute (any scheme), compute, repartition, transpose,
//! gather, checkpoint. Library users who don't want to orchestrate the
//! crates by hand start here.
//!
//! ```
//! use sparsedist::array::DistributedSparseArray;
//! use sparsedist::prelude::*;
//!
//! let mut a = Dense2D::zeros(16, 16);
//! for i in 0..16 { a.set(i, i, 2.0); }
//!
//! let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
//! let dist = DistributedSparseArray::distribute(
//!     &machine, &a, Box::new(RowBlock::new(16, 16, 4)),
//!     SchemeKind::Ed, CompressKind::Crs,
//! ).unwrap();
//! let y = dist.spmv(&vec![1.0; 16]).unwrap();
//! assert_eq!(y, vec![2.0; 16]);
//! assert_eq!(dist.nnz(), 16);
//! ```

use sparsedist_core::compress::{CompressKind, LocalCompressed};
use sparsedist_core::dense::Dense2D;
use sparsedist_core::error::SparsedistError;
use sparsedist_core::gather::{gather_global, GatherStrategy};
use sparsedist_core::partition::Partition;
use sparsedist_core::redistribute::{redistribute, RedistStrategy};
use sparsedist_core::schemes::{run_scheme, SchemeKind, SchemeRun};
use sparsedist_gen::checkpoint;
use sparsedist_multicomputer::{Multicomputer, PhaseLedger, VirtualTime};
use sparsedist_ops::distributed::{
    distributed_add, distributed_frobenius, distributed_scale, distributed_transpose,
};
use sparsedist_ops::spmv::distributed_spmv;
use std::path::Path;

/// A sparse array distributed over a simulated multicomputer.
///
/// The machine is borrowed (several arrays can share one machine); the
/// partition and local arrays are owned.
pub struct DistributedSparseArray<'m> {
    machine: &'m Multicomputer,
    partition: Box<dyn Partition>,
    kind: CompressKind,
    locals: Vec<LocalCompressed>,
    /// Ledgers of the operation that produced this state (distribution,
    /// repartition, …).
    last_ledgers: Vec<PhaseLedger>,
}

impl<'m> DistributedSparseArray<'m> {
    /// Distribute a global dense array with the chosen scheme.
    ///
    /// # Errors
    /// Same failure modes as [`sparsedist_core::schemes::run_scheme`].
    ///
    /// # Panics
    /// Panics on machine/partition/shape mismatches (see
    /// [`sparsedist_core::schemes::run_scheme`]).
    pub fn distribute(
        machine: &'m Multicomputer,
        global: &Dense2D,
        partition: Box<dyn Partition>,
        scheme: SchemeKind,
        kind: CompressKind,
    ) -> Result<Self, SparsedistError> {
        let run = run_scheme(scheme, machine, global, partition.as_ref(), kind)?;
        Ok(DistributedSparseArray {
            machine,
            partition,
            kind,
            locals: run.locals,
            last_ledgers: run.ledgers,
        })
    }

    /// Adopt already-distributed local arrays (e.g. from a checkpoint).
    ///
    /// # Panics
    /// Panics if the shapes of `locals` disagree with the partition.
    pub fn from_locals(
        machine: &'m Multicomputer,
        partition: Box<dyn Partition>,
        kind: CompressKind,
        locals: Vec<LocalCompressed>,
    ) -> Self {
        assert_eq!(
            machine.nprocs(),
            partition.nparts(),
            "machine/partition size mismatch"
        );
        assert_eq!(locals.len(), partition.nparts(), "one local array per part");
        for (pid, l) in locals.iter().enumerate() {
            assert_eq!(l.kind(), kind, "local {pid} kind mismatch");
            assert_eq!(
                l.shape(),
                partition.local_shape(pid),
                "local {pid} shape mismatch"
            );
        }
        let p = locals.len();
        DistributedSparseArray {
            machine,
            partition,
            kind,
            locals,
            last_ledgers: vec![PhaseLedger::new(); p],
        }
    }

    /// The partition currently in force.
    pub fn partition(&self) -> &dyn Partition {
        self.partition.as_ref()
    }

    /// The compression format of the local arrays.
    pub fn kind(&self) -> CompressKind {
        self.kind
    }

    /// Borrow the per-processor local arrays.
    pub fn locals(&self) -> &[LocalCompressed] {
        &self.locals
    }

    /// Ledgers of the last state-changing operation.
    pub fn last_ledgers(&self) -> &[PhaseLedger] {
        &self.last_ledgers
    }

    /// Global shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        self.partition.global_shape()
    }

    /// Total nonzeros across all processors.
    pub fn nnz(&self) -> usize {
        self.locals.iter().map(|l| l.nnz()).sum()
    }

    /// Global sparse ratio.
    pub fn sparse_ratio(&self) -> f64 {
        let (r, c) = self.shape();
        self.nnz() as f64 / (r * c) as f64
    }

    /// The slowest processor's busy time in the last operation.
    pub fn last_busy_max(&self) -> VirtualTime {
        self.last_ledgers
            .iter()
            .map(|l| l.busy_total())
            .fold(VirtualTime::ZERO, VirtualTime::max)
    }

    fn as_run(&self) -> SchemeRun {
        SchemeRun {
            scheme: SchemeKind::Ed, // irrelevant for computation
            compress_kind: self.kind,
            source: 0,
            ledgers: self.last_ledgers.clone(),
            locals: self.locals.clone(),
            owners: (0..self.locals.len()).collect(),
        }
    }

    /// Distributed `y = A·x`.
    ///
    /// # Errors
    /// Propagates communication failures when a fault plan is installed.
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the global column count.
    pub fn spmv(&self, x: &[f64]) -> Result<Vec<f64>, SparsedistError> {
        distributed_spmv(self.machine, &self.as_run(), self.partition.as_ref(), x)
    }

    /// Scale in place: `A ← α·A`.
    pub fn scale(&mut self, alpha: f64) {
        self.locals = distributed_scale(self.machine, &self.locals, alpha);
    }

    /// Elementwise add another array distributed under the same partition
    /// (CRS only).
    ///
    /// # Panics
    /// Panics if shapes/kinds/partitions disagree.
    pub fn add_assign(&mut self, other: &DistributedSparseArray<'_>) {
        assert_eq!(self.shape(), other.shape(), "global shapes differ");
        assert_eq!(self.kind, CompressKind::Crs, "add_assign needs CRS locals");
        assert_eq!(other.kind, CompressKind::Crs, "add_assign needs CRS locals");
        for pid in 0..self.locals.len() {
            assert_eq!(
                self.partition.local_shape(pid),
                other.partition.local_shape(pid),
                "partitions disagree at part {pid}"
            );
        }
        self.locals = distributed_add(self.machine, &self.locals, &other.locals);
    }

    /// Frobenius norm of the whole distributed array (allreduce).
    ///
    /// # Errors
    /// Propagates communication failures when a fault plan is installed.
    pub fn frobenius_norm(&self) -> Result<f64, SparsedistError> {
        distributed_frobenius(self.machine, &self.locals)
    }

    /// Re-own the array under a new partition (no gather).
    ///
    /// On error the array is left unchanged.
    ///
    /// # Errors
    /// Same failure modes as [`redistribute`].
    ///
    /// # Panics
    /// Panics if the new partition describes a different global shape.
    pub fn repartition(
        &mut self,
        to: Box<dyn Partition>,
        strategy: RedistStrategy,
    ) -> Result<(), SparsedistError> {
        let run = redistribute(
            self.machine,
            &self.locals,
            self.partition.as_ref(),
            to.as_ref(),
            self.kind,
            strategy,
        )?;
        self.locals = run.locals;
        self.last_ledgers = run.ledgers;
        self.partition = to;
        Ok(())
    }

    /// Distributed transpose into a new array owned under `to` (which must
    /// describe the transposed global shape).
    ///
    /// # Errors
    /// Propagates communication failures when a fault plan is installed.
    pub fn transpose(
        &self,
        to: Box<dyn Partition>,
    ) -> Result<DistributedSparseArray<'m>, SparsedistError> {
        let (locals, ledgers) = distributed_transpose(
            self.machine,
            &self.locals,
            self.partition.as_ref(),
            to.as_ref(),
            self.kind,
        )?;
        Ok(DistributedSparseArray {
            machine: self.machine,
            partition: to,
            kind: self.kind,
            locals,
            last_ledgers: ledgers,
        })
    }

    /// Gather the whole array back to the source as a dense array.
    ///
    /// # Errors
    /// Same failure modes as [`gather_global`].
    pub fn gather_dense(&self, strategy: GatherStrategy) -> Result<Dense2D, SparsedistError> {
        let run = gather_global(
            self.machine,
            &self.locals,
            self.partition.as_ref(),
            self.kind,
            strategy,
        )?;
        // The gathered compressed global expands directly.
        Ok(run.global.to_dense())
    }

    /// Checkpoint the distributed state to a directory.
    ///
    /// The partition itself is not serialised — the resuming program
    /// reconstructs it (it is a pure function of a few integers) and calls
    /// [`DistributedSparseArray::from_locals`].
    pub fn checkpoint(&self, dir: impl AsRef<Path>) -> Result<(), checkpoint::CkptError> {
        checkpoint::save(dir, &self.locals)
    }

    /// Resume from a checkpoint written by
    /// [`DistributedSparseArray::checkpoint`].
    pub fn resume(
        machine: &'m Multicomputer,
        partition: Box<dyn Partition>,
        kind: CompressKind,
        dir: impl AsRef<Path>,
    ) -> Result<Self, checkpoint::CkptError> {
        let locals = checkpoint::load(dir)?;
        Ok(Self::from_locals(machine, partition, kind, locals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsedist_core::dense::paper_array_a;
    use sparsedist_core::partition::{ColBlock, Mesh2D, RowBlock};
    use sparsedist_multicomputer::MachineModel;

    fn machine() -> Multicomputer {
        Multicomputer::virtual_machine(4, MachineModel::ibm_sp2())
    }

    fn dist<'m>(m: &'m Multicomputer) -> DistributedSparseArray<'m> {
        DistributedSparseArray::distribute(
            m,
            &paper_array_a(),
            Box::new(RowBlock::new(10, 8, 4)),
            SchemeKind::Ed,
            CompressKind::Crs,
        )
        .unwrap()
    }

    #[test]
    fn lifecycle_through_the_facade() {
        let m = machine();
        let mut a = dist(&m);
        assert_eq!(a.shape(), (10, 8));
        assert_eq!(a.nnz(), 16);
        assert!((a.sparse_ratio() - 0.2).abs() < 1e-12);

        // Compute.
        let y = a.spmv(&[1.0; 8]).unwrap();
        assert_eq!(y[2], 7.0); // row 2 holds 3 + 4

        // Scale and norm.
        a.scale(2.0);
        let want: f64 = (1..=16)
            .map(|v| (2.0 * v as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!((a.frobenius_norm().unwrap() - want).abs() < 1e-9);

        // Repartition to a mesh; content unchanged.
        a.repartition(Box::new(Mesh2D::new(10, 8, 2, 2)), RedistStrategy::Direct)
            .unwrap();
        assert_eq!(a.nnz(), 16);
        let d = a.gather_dense(GatherStrategy::Encoded).unwrap();
        assert_eq!(d.get(2, 0), 6.0); // 2 × 3
    }

    #[test]
    fn add_assign_doubles() {
        let m = machine();
        let mut a = dist(&m);
        let b = dist(&m);
        a.add_assign(&b);
        let d = a.gather_dense(GatherStrategy::Compressed).unwrap();
        for (r, c, v) in paper_array_a().iter_nonzero() {
            assert_eq!(d.get(r, c), 2.0 * v);
        }
    }

    #[test]
    fn transpose_via_facade() {
        let m = machine();
        let a = dist(&m);
        let t = a.transpose(Box::new(ColBlock::new(8, 10, 4))).unwrap();
        assert_eq!(t.shape(), (8, 10));
        let d = t.gather_dense(GatherStrategy::Dense).unwrap();
        for (r, c, v) in paper_array_a().iter_nonzero() {
            assert_eq!(d.get(c, r), v);
        }
    }

    #[test]
    fn checkpoint_resume_round_trip() {
        let dir = std::env::temp_dir().join("sparsedist_facade_ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        let m = machine();
        let a = dist(&m);
        a.checkpoint(&dir).unwrap();

        let b = DistributedSparseArray::resume(
            &m,
            Box::new(RowBlock::new(10, 8, 4)),
            CompressKind::Crs,
            &dir,
        )
        .unwrap();
        assert_eq!(b.locals(), a.locals());
        assert_eq!(
            b.gather_dense(GatherStrategy::Encoded).unwrap(),
            paper_array_a()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_locals_validates_shapes() {
        let m = machine();
        let a = dist(&m);
        // Wrong partition: column split instead of rows.
        let _ = DistributedSparseArray::from_locals(
            &m,
            Box::new(ColBlock::new(10, 8, 4)),
            CompressKind::Crs,
            a.locals().to_vec(),
        );
    }
}
