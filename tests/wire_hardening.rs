//! Decoder hardening: fuzz-style malformed-frame sweeps over all three
//! wire formats, plus stream-level mixed-version negotiation.
//!
//! Every mutation below — truncation at each byte boundary, single-byte
//! corruption at each offset — must surface as a typed error or, for
//! corruption the layout cannot distinguish from real data (e.g. a flipped
//! value byte), a clean decode of different numbers. Never a panic and
//! never an unbounded allocation: counts read off the wire are checked
//! against the bytes actually present before anything is reserved. The
//! sweeps cut and flip real encoded streams rather than hand-written ones
//! so they track the current layouts automatically.

use sparsedist::core::wire::{self, CodecChoice, WireFormat, WirePolicy};
use sparsedist::multicomputer::{MachineModel, PackBuffer};

/// A triple with enough shape to exercise every codec path: empty
/// segments, a monotone run that bit-packs, a scattered segment that
/// doesn't, repeated values (dictionary-friendly planes) and distinct
/// values (raw planes).
fn fixture() -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let pointer = vec![0, 3, 3, 8, 12, 12, 20];
    let indices = vec![
        4, 5, 6, // dense run
        0, 9, 17, 33, 60, // scattered
        2, 3, 4, 5, // dense run
        1, 8, 15, 22, 29, 36, 43, 50, // stride 7
    ];
    let values: Vec<f64> = (0..20)
        .map(|i| if i % 3 == 0 { 2.5 } else { i as f64 * 0.75 })
        .collect();
    (pointer, indices, values)
}

const BOUND: usize = 64;

/// Every (format, codec) pairing a sender can put on the wire.
fn policies() -> Vec<WirePolicy> {
    let mut out = vec![
        WirePolicy::of(WireFormat::V1),
        WirePolicy::of(WireFormat::V2),
    ];
    for choice in [
        CodecChoice::Raw,
        CodecChoice::Delta,
        CodecChoice::Packed,
        CodecChoice::Auto,
    ] {
        out.push(WirePolicy::new(
            WireFormat::V3,
            choice,
            MachineModel::network_bound(),
        ));
    }
    out
}

fn encode(policy: &WirePolicy) -> PackBuffer {
    let (pointer, indices, values) = fixture();
    let mut buf = PackBuffer::new();
    wire::pack_triple_into(&mut buf, &pointer, &indices, &values, BOUND, policy);
    buf
}

fn from_bytes(bytes: &[u8]) -> PackBuffer {
    let mut buf = PackBuffer::new();
    buf.push_chunk(bytes, 0);
    buf
}

#[test]
fn every_policy_roundtrips_the_fixture() {
    let (pointer, indices, values) = fixture();
    let nseg = pointer.len() - 1;
    for policy in policies() {
        let buf = encode(&policy);
        let (ro, co, vl) = wire::unpack_triple(&mut buf.cursor(), nseg, policy.format)
            .unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        assert_eq!(ro, pointer, "{policy:?}");
        assert_eq!(co, indices, "{policy:?}");
        assert_eq!(vl, values, "{policy:?}");
    }
}

/// Cutting the stream at any byte boundary must yield a typed error from
/// each format's decoder — some field is always missing.
#[test]
fn truncation_at_every_boundary_is_a_typed_error() {
    let (pointer, ..) = fixture();
    let nseg = pointer.len() - 1;
    for policy in policies() {
        let bytes = encode(&policy).as_bytes().to_vec();
        for cut in 0..bytes.len() {
            let short = from_bytes(&bytes[..cut]);
            let got = wire::unpack_triple(&mut short.cursor(), nseg, policy.format);
            assert!(
                got.is_err(),
                "{policy:?}: {cut}/{} byte prefix decoded",
                bytes.len()
            );
        }
    }
}

/// Corrupting any single byte must never panic. Where the decode still
/// succeeds (a flipped value byte is just a different number), the shape
/// must stay consistent with the segment count we asked for.
#[test]
fn single_byte_corruption_never_panics() {
    let (pointer, ..) = fixture();
    let nseg = pointer.len() - 1;
    for policy in policies() {
        let bytes = encode(&policy).as_bytes().to_vec();
        for pos in 0..bytes.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut bad = bytes.clone();
                bad[pos] ^= mask;
                let buf = from_bytes(&bad);
                if let Ok((ro, co, vl)) =
                    wire::unpack_triple(&mut buf.cursor(), nseg, policy.format)
                {
                    assert_eq!(ro.len(), nseg + 1, "{policy:?} pos {pos} mask {mask:#x}");
                    assert_eq!(co.len(), vl.len(), "{policy:?} pos {pos} mask {mask:#x}");
                }
            }
        }
    }
}

/// The dense value stream (SFC's whole payload) hardens the same way.
#[test]
fn value_stream_truncation_is_a_typed_error_in_all_formats() {
    let values: Vec<f64> = (0..48).map(|i| (i % 5) as f64 * 1.25).collect();
    for policy in policies() {
        let mut buf = PackBuffer::new();
        wire::pack_values_into(&mut buf, &values, &policy);
        let bytes = buf.as_bytes().to_vec();
        let full = wire::unpack_values(&mut buf.cursor(), values.len(), policy.format)
            .unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        assert_eq!(full, values, "{policy:?}");
        for cut in 0..bytes.len() {
            let short = from_bytes(&bytes[..cut]);
            let got = wire::unpack_values(&mut short.cursor(), values.len(), policy.format);
            assert!(got.is_err(), "{policy:?}: {cut}-byte prefix decoded");
        }
    }
}

/// A receiver that asks for more segments than the frame carries must
/// never panic or allocate for the phantom elements. Counts that imply
/// more bytes than remain fail the pre-allocation guard outright; a
/// slightly-off count may still parse structurally (v1 is columnar, so
/// misreading an index as a pointer entry yields a shorter valid prefix),
/// but then it must leave the cursor visibly unexhausted — the framing
/// check every scheme unpacker runs catches it at that layer.
#[test]
fn counts_beyond_the_frame_are_rejected_or_leave_trailing_bytes() {
    let (pointer, ..) = fixture();
    let nseg = pointer.len() - 1;
    for policy in policies() {
        let buf = encode(&policy);
        for lied in [nseg + 1, nseg * 64] {
            let mut cursor = buf.cursor();
            let got = wire::unpack_triple(&mut cursor, lied, policy.format);
            assert!(
                got.is_err() || !cursor.is_exhausted(),
                "{policy:?}: swallowed the whole frame as {lied} segments"
            );
        }
        // A count this large cannot fit any frame: the guard must refuse
        // it before reserving memory, not die in the allocator.
        let got = wire::unpack_triple(&mut buf.cursor(), usize::MAX / 32, policy.format);
        assert!(got.is_err(), "{policy:?}: accepted an impossible count");
    }
}

/// Mixed-version negotiation, sender side: a v3-capable source talking to
/// a v2-only peer caps its policy and the bytes it emits are identical to
/// a native v2 sender's — the fallback is not merely compatible, it is
/// the same stream.
#[test]
fn v3_sender_capped_to_v2_peer_is_byte_identical_to_native_v2() {
    let capped = WirePolicy::new(WireFormat::V3, CodecChoice::Packed, MachineModel::ibm_sp2())
        .capped(WireFormat::V2);
    assert_eq!(capped.format, WireFormat::V2);
    let native = encode(&WirePolicy::of(WireFormat::V2));
    let fell_back = encode(&capped);
    assert_eq!(fell_back.as_bytes(), native.as_bytes());
    assert_eq!(fell_back.elem_count(), native.elem_count());
}

/// Mixed-version negotiation, receiver side: a v3 decoder accepts a v2
/// stream (the header self-describes, so old senders keep working), while
/// a v2 decoder refuses a v3 stream with a typed error instead of
/// misparsing it as payload.
#[test]
fn v3_receiver_accepts_v2_but_not_vice_versa() {
    let (pointer, indices, values) = fixture();
    let nseg = pointer.len() - 1;

    let v2 = encode(&WirePolicy::of(WireFormat::V2));
    let (ro, co, vl) = wire::unpack_triple(&mut v2.cursor(), nseg, WireFormat::V3)
        .expect("v3 decoder reads a v2 stream");
    assert_eq!((ro, co, vl), (pointer, indices, values));

    let v3 = encode(&WirePolicy::of(WireFormat::V3));
    assert!(
        wire::unpack_triple(&mut v3.cursor(), nseg, WireFormat::V2).is_err(),
        "a v2 decoder must reject the v3 header"
    );
}
