//! Property-based tests over the core invariants.

use proptest::prelude::*;
use sparsedist::core::compress::{Ccs, Crs};
use sparsedist::core::encode::{decode_part, encode_part};
use sparsedist::core::opcount::OpCounter;
use sparsedist::ops::spmv::{crs_spmv, dense_spmv};
use sparsedist::ops::transpose::{crs_to_ccs, transpose};
use sparsedist::prelude::*;

/// An arbitrary small sparse array: shape up to 24×24, each cell nonzero
/// with probability ~1/6.
fn arb_dense() -> impl Strategy<Value = Dense2D> {
    (1usize..24, 1usize..24)
        .prop_flat_map(|(r, c)| {
            (
                Just(r),
                Just(c),
                proptest::collection::vec(
                    prop_oneof![4 => Just(0.0f64), 1 => -100.0f64..100.0],
                    r * c,
                ),
            )
        })
        .prop_map(|(r, c, data)| {
            // Reject exact-zero draws from the nonzero branch so nnz is
            // well-defined under the `v != 0.0` convention.
            let data = data
                .into_iter()
                .map(|v| if v.abs() < 1e-9 { 0.0 } else { v })
                .collect();
            Dense2D::from_vec(r, c, data)
        })
}

fn arb_partition(rows: usize, cols: usize) -> impl Strategy<Value = (Box<dyn Partition>, usize)> {
    (1usize..6, 0usize..6).prop_map(move |(p, which)| {
        let part: Box<dyn Partition> = match which {
            0 => Box::new(RowBlock::new(rows, cols, p)),
            1 => Box::new(ColBlock::new(rows, cols, p)),
            2 => Box::new(RowCyclic::new(rows, cols, p)),
            3 => Box::new(ColCyclic::new(rows, cols, p)),
            4 => Box::new(Mesh2D::new(rows, cols, p, 2)),
            _ => Box::new(BlockCyclic::new(rows, cols, 2, 3, p, 2)),
        };
        let n = part.nparts();
        (part, n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn crs_round_trips_exactly(a in arb_dense()) {
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        prop_assert_eq!(crs.to_dense(), a);
        prop_assert!(crs.validate().is_ok());
    }

    #[test]
    fn ccs_round_trips_exactly(a in arb_dense()) {
        let ccs = Ccs::from_dense(&a, &mut OpCounter::new());
        prop_assert_eq!(ccs.to_dense(), a);
        prop_assert!(ccs.validate().is_ok());
    }

    #[test]
    fn compression_op_count_is_cells_plus_3nnz(a in arb_dense()) {
        let mut ops = OpCounter::new();
        let _ = Crs::from_dense(&a, &mut ops);
        prop_assert_eq!(ops.get(), (a.len() + 3 * a.nnz()) as u64);
    }

    #[test]
    fn partition_tiles_cells((a, pp) in arb_dense().prop_flat_map(|a| {
        let (r, c) = (a.rows(), a.cols());
        (Just(a), arb_partition(r, c))
    })) {
        let (part, p) = pp;
        // Every part's extracted nonzeros sum to the global count.
        let total: usize = (0..p)
            .map(|pid| part.extract_dense(&a, pid).nnz())
            .sum();
        prop_assert_eq!(total, a.nnz());
    }

    #[test]
    fn encode_decode_round_trips((a, pp) in arb_dense().prop_flat_map(|a| {
        let (r, c) = (a.rows(), a.cols());
        (Just(a), arb_partition(r, c))
    }), kind in prop_oneof![Just(CompressKind::Crs), Just(CompressKind::Ccs)]) {
        let (part, p) = pp;
        for pid in 0..p {
            let buf = encode_part(&a, part.as_ref(), pid, kind, &mut OpCounter::new());
            let got = decode_part(&buf, part.as_ref(), pid, kind, &mut OpCounter::new()).unwrap();
            prop_assert_eq!(got.to_dense(), part.extract_dense(&a, pid));
        }
    }

    #[test]
    fn schemes_agree_pairwise((a, pp) in arb_dense().prop_flat_map(|a| {
        let (r, c) = (a.rows(), a.cols());
        (Just(a), arb_partition(r, c))
    }), kind in prop_oneof![Just(CompressKind::Crs), Just(CompressKind::Ccs)]) {
        let (part, p) = pp;
        let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
        let sfc = run_scheme(SchemeKind::Sfc, &machine, &a, part.as_ref(), kind).unwrap();
        let cfs = run_scheme(SchemeKind::Cfs, &machine, &a, part.as_ref(), kind).unwrap();
        let ed = run_scheme(SchemeKind::Ed, &machine, &a, part.as_ref(), kind).unwrap();
        prop_assert_eq!(&sfc.locals, &cfs.locals);
        prop_assert_eq!(&cfs.locals, &ed.locals);
        prop_assert_eq!(ed.reassemble(part.as_ref()), a);
    }

    #[test]
    fn ed_distribution_never_slower_than_cfs((a, pp) in arb_dense().prop_flat_map(|a| {
        let (r, c) = (a.rows(), a.cols());
        (Just(a), arb_partition(r, c))
    })) {
        // Remark 1 as an invariant: ED ships strictly fewer elements with
        // zero pack/unpack ops, so its T_Distribution can never exceed
        // CFS's on the same input.
        let (part, p) = pp;
        let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
        let cfs = run_scheme(SchemeKind::Cfs, &machine, &a, part.as_ref(), CompressKind::Crs).unwrap();
        let ed = run_scheme(SchemeKind::Ed, &machine, &a, part.as_ref(), CompressKind::Crs).unwrap();
        prop_assert!(ed.t_distribution() <= cfs.t_distribution());
    }

    #[test]
    fn spmv_linear_in_x(a in arb_dense(), alpha in -4.0f64..4.0) {
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.7).cos()).collect();
        let ax: Vec<f64> = x.iter().map(|v| alpha * v).collect();
        let y1 = crs_spmv(&crs, &ax);
        let y0 = crs_spmv(&crs, &x);
        for (u, v) in y1.iter().zip(&y0) {
            prop_assert!((u - alpha * v).abs() < 1e-9 * (1.0 + v.abs()));
        }
        // And it matches the dense baseline.
        let want = dense_spmv(&a, &x);
        for (u, v) in y0.iter().zip(&want) {
            prop_assert!((u - v).abs() < 1e-9 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn transpose_involution(a in arb_dense()) {
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        prop_assert_eq!(transpose(&transpose(&crs)), crs);
    }

    #[test]
    fn crs_ccs_conversion_preserves_content(a in arb_dense()) {
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        let ccs = crs_to_ccs(&crs);
        prop_assert_eq!(ccs.to_dense(), a);
    }
}
