//! Byte-exact goldens for the v1 and v2 wire layouts, v3 self-description
//! checks, plus property tests showing all formats decode to identical
//! compressed state.
//!
//! The expected byte streams are written out field by field, independently
//! of the packing code, so any layout drift — field order, widths, varint
//! encoding, header bytes — fails here even if both ends of the pipeline
//! drift together.

use proptest::prelude::*;
use sparsedist::core::compress::CompressKind;
use sparsedist::core::dense::paper_array_a;
use sparsedist::core::encode::{decode_part_wire, encode_part_into};
use sparsedist::core::opcount::OpCounter;
use sparsedist::core::wire::{self, CodecChoice, WireFormat, WirePolicy};
use sparsedist::multicomputer::PackBuffer;
use sparsedist::prelude::*;

/// Append a little-endian `u64` field to an expected stream.
fn le64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u32` field to an expected stream.
fn le32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `f64` field to an expected stream.
fn lef(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// The CFS wire triple of Figure 7's flavour: a 3-segment compressed part
/// with pointer `[0,2,2,5]`, global indices `[1,6 | — | 0,3,7]` and five
/// values.
const POINTER: [usize; 4] = [0, 2, 2, 5];
const INDICES: [usize; 5] = [1, 6, 0, 3, 7];
const VALUES: [f64; 5] = [1.5, 2.5, 3.5, 4.5, 5.5];

#[test]
fn cfs_triple_v1_bytes_golden() {
    let mut buf = PackBuffer::new();
    wire::pack_triple_into(
        &mut buf,
        &POINTER,
        &INDICES,
        &VALUES,
        8,
        &WirePolicy::of(WireFormat::V1),
    );

    // v1: pointer and indices as raw LE u64, values as LE f64 — no header.
    let mut expect = Vec::new();
    for p in POINTER {
        le64(&mut expect, p as u64);
    }
    for i in INDICES {
        le64(&mut expect, i as u64);
    }
    for v in VALUES {
        lef(&mut expect, v);
    }
    assert_eq!(buf.as_bytes(), expect.as_slice());
    assert_eq!(buf.byte_len(), 9 * 8 + 5 * 8);
    assert_eq!(buf.elem_count(), 4 + 2 * 5);
}

#[test]
fn cfs_triple_v2_bytes_golden() {
    let mut buf = PackBuffer::new();
    wire::pack_triple_into(
        &mut buf,
        &POINTER,
        &INDICES,
        &VALUES,
        8,
        &WirePolicy::of(WireFormat::V2),
    );

    // v2: "S2" magic + flags (DELTA|IDX32 = 0b11), the pointer as an
    // absolute varint then deltas, each segment's indices as an absolute
    // varint then deltas (run state resets at segment boundaries), then
    // the values still as raw LE f64.
    let mut expect: Vec<u8> = vec![b'S', b'2', 0b11];
    expect.extend_from_slice(&[0, 2, 0, 3]); // pointer 0, +2, +0, +3
    expect.extend_from_slice(&[1, 5]); // segment 0: 1, +5
    expect.extend_from_slice(&[0, 3, 4]); // segment 2: 0, +3, +4
    for v in VALUES {
        lef(&mut expect, v);
    }
    assert_eq!(buf.as_bytes(), expect.as_slice());
    assert_eq!(buf.byte_len(), 3 + 4 + 5 + 40);
    // Same logical elements as v1: the virtual clock sees no difference.
    assert_eq!(buf.elem_count(), 4 + 2 * 5);
}

#[test]
fn ed_buffer_v1_bytes_golden() {
    // ED special buffer B for P0 of the paper's Figure 1 array under the
    // row partition: rows 0..3 hold (r0: col 1 → 1.0), (r1: col 6 → 2.0),
    // (r2: cols 0,7 → 3.0, 4.0). v1 interleaves LE u64 counts, LE u64
    // global indices and LE f64 values.
    let a = paper_array_a();
    let part = RowBlock::new(10, 8, 4);
    let mut buf = PackBuffer::new();
    encode_part_into(
        &mut buf,
        &a,
        &part,
        0,
        CompressKind::Crs,
        &WirePolicy::of(WireFormat::V1),
        &mut OpCounter::new(),
    );

    let mut expect = Vec::new();
    le64(&mut expect, 1); // R_0
    le64(&mut expect, 1);
    lef(&mut expect, 1.0);
    le64(&mut expect, 1); // R_1
    le64(&mut expect, 6);
    lef(&mut expect, 2.0);
    le64(&mut expect, 2); // R_2
    le64(&mut expect, 0);
    lef(&mut expect, 3.0);
    le64(&mut expect, 7);
    lef(&mut expect, 4.0);
    assert_eq!(buf.as_bytes(), expect.as_slice());
    assert_eq!(buf.byte_len(), 11 * 8);
    assert_eq!(buf.elem_count(), 3 + 2 * 4);
}

#[test]
fn ed_buffer_v2_bytes_golden() {
    // The same buffer under v2: header, u32 counts (IDX32), delta-varint
    // indices resetting per row, raw f64 values.
    let a = paper_array_a();
    let part = RowBlock::new(10, 8, 4);
    let mut buf = PackBuffer::new();
    encode_part_into(
        &mut buf,
        &a,
        &part,
        0,
        CompressKind::Crs,
        &WirePolicy::of(WireFormat::V2),
        &mut OpCounter::new(),
    );

    let mut expect: Vec<u8> = vec![b'S', b'2', 0b11];
    le32(&mut expect, 1); // R_0
    expect.push(1);
    lef(&mut expect, 1.0);
    le32(&mut expect, 1); // R_1
    expect.push(6);
    lef(&mut expect, 2.0);
    le32(&mut expect, 2); // R_2
    expect.push(0);
    lef(&mut expect, 3.0);
    expect.push(7);
    lef(&mut expect, 4.0);
    assert_eq!(buf.as_bytes(), expect.as_slice());
    assert_eq!(buf.byte_len(), 3 + 3 * 4 + 4 + 4 * 8);
    assert_eq!(buf.elem_count(), 3 + 2 * 4);
}

/// An arbitrary small sparse array: shape up to 20×20, each cell nonzero
/// with probability ~1/5.
fn arb_dense() -> impl Strategy<Value = Dense2D> {
    (1usize..20, 1usize..20)
        .prop_flat_map(|(r, c)| {
            (
                Just(r),
                Just(c),
                proptest::collection::vec(
                    prop_oneof![4 => Just(0.0f64), 1 => -100.0f64..100.0],
                    r * c,
                ),
            )
        })
        .prop_map(|(r, c, data)| {
            let data = data
                .into_iter()
                .map(|v| if v.abs() < 1e-9 { 0.0 } else { v })
                .collect();
            Dense2D::from_vec(r, c, data)
        })
}

proptest! {
    #[test]
    fn v2_triple_round_trips_to_v1_state(a in arb_dense(), nparts in 1usize..5) {
        // The CFS wire path: compress at the source with global indices,
        // pack under both formats, unpack both — identical RO/CO/VL and
        // identical logical element counts.
        let part = RowBlock::new(a.rows(), a.cols(), nparts);
        for pid in 0..nparts {
            let crs = sparsedist::core::compress::Crs::from_part_global(
                &a, &part, pid, &mut OpCounter::new(),
            );
            let (lrows, _) = part.local_shape(pid);
            let mut v1 = PackBuffer::new();
            let mut v2 = PackBuffer::new();
            wire::pack_triple_into(&mut v1, crs.ro(), crs.co(), crs.vl(), a.cols(), &WirePolicy::of(WireFormat::V1));
            wire::pack_triple_into(&mut v2, crs.ro(), crs.co(), crs.vl(), a.cols(), &WirePolicy::of(WireFormat::V2));
            prop_assert_eq!(v1.elem_count(), v2.elem_count());
            prop_assert!(v2.byte_len() <= v1.byte_len() + wire::HEADER_LEN);

            let from_v1 =
                wire::unpack_triple(&mut v1.cursor(), lrows, WireFormat::V1).unwrap();
            let from_v2 =
                wire::unpack_triple(&mut v2.cursor(), lrows, WireFormat::V2).unwrap();
            prop_assert_eq!(&from_v1, &from_v2);
            prop_assert_eq!(from_v1.0.as_slice(), crs.ro());
            prop_assert_eq!(from_v1.1.as_slice(), crs.co());
            prop_assert_eq!(from_v1.2.as_slice(), crs.vl());

            // v3 under every forced codec and auto: same decoded triple,
            // same logical elements.
            for choice in [CodecChoice::Auto, CodecChoice::Raw, CodecChoice::Delta, CodecChoice::Packed] {
                let policy = WirePolicy::new(WireFormat::V3, choice, MachineModel::ibm_sp2());
                let mut v3 = PackBuffer::new();
                wire::pack_triple_into(&mut v3, crs.ro(), crs.co(), crs.vl(), a.cols(), &policy);
                prop_assert_eq!(v3.elem_count(), v1.elem_count());
                let from_v3 =
                    wire::unpack_triple(&mut v3.cursor(), lrows, WireFormat::V3).unwrap();
                prop_assert_eq!(&from_v3, &from_v1);
            }
        }
    }

    #[test]
    fn v2_encode_decodes_to_v1_state(a in arb_dense(), nparts in 1usize..5) {
        // The ED wire path: encode under both formats, decode each with
        // its own format — identical compressed local state and ops.
        let part = RowBlock::new(a.rows(), a.cols(), nparts);
        for kind in [CompressKind::Crs, CompressKind::Ccs] {
            for pid in 0..nparts {
                let mut v1 = PackBuffer::new();
                let mut v2 = PackBuffer::new();
                let mut v3 = PackBuffer::new();
                let mut ops1 = OpCounter::new();
                let mut ops2 = OpCounter::new();
                let mut ops3 = OpCounter::new();
                encode_part_into(&mut v1, &a, &part, pid, kind, &WirePolicy::of(WireFormat::V1), &mut ops1);
                encode_part_into(&mut v2, &a, &part, pid, kind, &WirePolicy::of(WireFormat::V2), &mut ops2);
                encode_part_into(&mut v3, &a, &part, pid, kind, &WirePolicy::of(WireFormat::V3), &mut ops3);
                prop_assert_eq!(ops1.get(), ops2.get());
                prop_assert_eq!(ops1.get(), ops3.get());
                prop_assert_eq!(v1.elem_count(), v2.elem_count());
                prop_assert_eq!(v1.elem_count(), v3.elem_count());

                let d1 = decode_part_wire(&v1, &part, pid, kind, WireFormat::V1, &mut ops1).unwrap();
                let d2 = decode_part_wire(&v2, &part, pid, kind, WireFormat::V2, &mut ops2).unwrap();
                let d3 = decode_part_wire(&v3, &part, pid, kind, WireFormat::V3, &mut ops3).unwrap();
                prop_assert_eq!(&d1, &d2);
                prop_assert_eq!(&d1, &d3);
                prop_assert_eq!(ops1.get(), ops2.get());
                prop_assert_eq!(ops1.get(), ops3.get());
            }
        }
    }

    #[test]
    fn schemes_agree_across_formats_end_to_end(seed_nnz in 1usize..60) {
        // Full distribution on a virtual machine under every scheme:
        // compact-parallel config reproduces the default's locals exactly.
        let mut a = Dense2D::zeros(12, 12);
        for i in 0..seed_nnz {
            a.set((i * 5) % 12, (i * 7 + i / 12) % 12, 1.0 + i as f64);
        }
        let part = RowBlock::new(12, 12, 4);
        let m = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
        for scheme in SchemeKind::ALL {
            let base = run_scheme(scheme, &m, &a, &part, CompressKind::Crs).unwrap();
            let fast = run_scheme_with(
                scheme, &m, &a, &part, CompressKind::Crs, SchemeConfig::compact_parallel(),
            )
            .unwrap();
            prop_assert_eq!(&base.locals, &fast.locals);
            prop_assert_eq!(fast.reassemble(&part), a.clone());
        }
    }
}
