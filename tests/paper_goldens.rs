//! Golden tests against the paper's literal worked example (Figures 1–7)
//! and the qualitative results of its evaluation (§5 observations).

use sparsedist::core::compress::Ccs;
use sparsedist::core::dense::paper_array_a;
use sparsedist::core::opcount::OpCounter;
use sparsedist::gen::SparseRandom;
use sparsedist::prelude::*;

#[test]
fn figure1_array_a() {
    let a = paper_array_a();
    assert_eq!((a.rows(), a.cols()), (10, 8));
    assert_eq!(a.nnz(), 16);
    assert_eq!(a.get(0, 1), 1.0);
    assert_eq!(a.get(9, 6), 16.0);
}

#[test]
fn figure2_partition_bands() {
    let part = RowBlock::new(10, 8, 4);
    let bands: Vec<(usize, usize)> = (0..4).map(|p| part.local_shape(p)).collect();
    assert_eq!(bands, vec![(3, 8), (3, 8), (3, 8), (1, 8)]);
}

#[test]
fn figure3_received_local_arrays() {
    let a = paper_array_a();
    let part = RowBlock::new(10, 8, 4);
    let nnz: Vec<usize> = (0..4).map(|p| part.extract_dense(&a, p).nnz()).collect();
    assert_eq!(nnz, vec![4, 3, 6, 3]);
}

#[test]
fn figure4_crs_of_each_processor() {
    let a = paper_array_a();
    let part = RowBlock::new(10, 8, 4);
    let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
    // Run the full SFC scheme; the receivers' CRS must equal the figure.
    let run = run_scheme(SchemeKind::Sfc, &machine, &a, &part, CompressKind::Crs).unwrap();
    let expect: [(&[usize], &[usize], &[f64]); 4] = [
        (&[1, 2, 3, 5], &[2, 7, 1, 8], &[1., 2., 3., 4.]),
        (&[1, 2, 3, 4], &[6, 4, 5], &[5., 6., 7.]),
        (
            &[1, 2, 4, 7],
            &[7, 5, 8, 2, 3, 5],
            &[8., 9., 10., 11., 12., 13.],
        ),
        (&[1, 4], &[1, 4, 7], &[14., 15., 16.]),
    ];
    for (pid, (ro, co, vl)) in expect.iter().enumerate() {
        let crs = run.locals[pid].as_crs();
        assert_eq!(&crs.ro_paper(), ro, "P{pid} RO");
        assert_eq!(&crs.co_paper(), co, "P{pid} CO");
        assert_eq!(&crs.vl(), vl, "P{pid} VL");
    }
}

#[test]
fn figure5_cfs_p1_conversion() {
    // §3.2 example: CFS, row partition, CCS. The source packs global row
    // indices; P1 subtracts 3 (Case 3.2.2).
    let a = paper_array_a();
    let part = RowBlock::new(10, 8, 4);
    // Source-side compressed form of P1's band (global indices 4,5,6 → 1-based 5,6,4 in CCS column order).
    let global = Ccs::from_part_global(&a, &part, 1, &mut OpCounter::new());
    assert_eq!(global.ri_paper(), vec![5, 6, 4]);
    // After the full CFS run, P1's local CCS has local rows 2,3,1 (1-based).
    let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
    let run = run_scheme(SchemeKind::Cfs, &machine, &a, &part, CompressKind::Ccs).unwrap();
    let p1 = run.locals[1].as_ccs();
    assert_eq!(p1.ri_paper(), vec![2, 3, 1]);
    assert_eq!(p1.vl(), &[6.0, 7.0, 5.0]);
}

#[test]
fn figure7_ed_p1_decode() {
    // §3.3 example: ED, row partition, CCS. P1 decodes RO via
    // RO[i+1] = RO[i] + R_i and subtracts 3 from each C (Case 3.3.2).
    let a = paper_array_a();
    let part = RowBlock::new(10, 8, 4);
    let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
    let run = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Ccs).unwrap();
    let p1 = run.locals[1].as_ccs();
    assert_eq!(p1.cp_paper(), vec![1, 1, 1, 1, 2, 3, 4, 4, 4]);
    assert_eq!(p1.ri_paper(), vec![2, 3, 1]);
    assert_eq!(p1.vl(), &[6.0, 7.0, 5.0]);
}

/// The paper's §5 observations, regenerated at a reduced grid. Shape, not
/// absolute milliseconds: who wins and where.
#[test]
fn section5_observations_hold_on_reduced_grid() {
    let model = MachineModel::ibm_sp2();
    for &n in &[200usize, 400] {
        let a = SparseRandom::new(n, n)
            .sparse_ratio(0.1)
            .seed(n as u64)
            .generate();
        for &p in &[4usize] {
            let machine = Multicomputer::virtual_machine(p, model);
            let configs: Vec<(&str, Box<dyn Partition>)> = vec![
                ("row", Box::new(RowBlock::new(n, n, p))),
                ("column", Box::new(ColBlock::new(n, n, p))),
                ("mesh", Box::new(Mesh2D::new(n, n, 2, 2))),
            ];
            for (name, part) in configs {
                let sfc = run_scheme(
                    SchemeKind::Sfc,
                    &machine,
                    &a,
                    part.as_ref(),
                    CompressKind::Crs,
                )
                .unwrap();
                let cfs = run_scheme(
                    SchemeKind::Cfs,
                    &machine,
                    &a,
                    part.as_ref(),
                    CompressKind::Crs,
                )
                .unwrap();
                let ed = run_scheme(
                    SchemeKind::Ed,
                    &machine,
                    &a,
                    part.as_ref(),
                    CompressKind::Crs,
                )
                .unwrap();

                // §5 observation (all tables): ED dist < CFS dist < SFC dist.
                assert!(ed.t_distribution() < cfs.t_distribution(), "{name} n={n}");
                assert!(cfs.t_distribution() < sfc.t_distribution(), "{name} n={n}");
                // §5 observation (all tables): SFC comp < CFS comp < ED comp.
                assert!(sfc.t_compression() < cfs.t_compression(), "{name} n={n}");
                assert!(cfs.t_compression() < ed.t_compression(), "{name} n={n}");
                // Overall: ED beats CFS everywhere (§5 conclusion 3).
                assert!(ed.t_total() < cfs.t_total(), "{name} n={n}");
                match name {
                    // §5.1: under the row partition SFC wins overall on SP2.
                    "row" => {
                        assert!(sfc.t_total() < cfs.t_total(), "row n={n}");
                        assert!(sfc.t_total() < ed.t_total(), "row n={n}");
                    }
                    // §5.2/5.3: under column/mesh the proposed schemes win.
                    _ => {
                        assert!(ed.t_total() < sfc.t_total(), "{name} n={n}");
                        assert!(cfs.t_total() < sfc.t_total(), "{name} n={n}");
                    }
                }
            }
        }
    }
}

/// Table 3's scaling shape: SFC's distribution time is roughly flat in p
/// (dominated by n²·T_Data), while its compression time shrinks ~1/p.
#[test]
fn table3_scaling_shape_in_p() {
    let n = 320;
    let a = SparseRandom::new(n, n).sparse_ratio(0.1).seed(3).generate();
    let model = MachineModel::ibm_sp2();
    let mut dist = Vec::new();
    let mut comp = Vec::new();
    for p in [4usize, 16, 32] {
        let machine = Multicomputer::virtual_machine(p, model);
        let part = RowBlock::new(n, n, p);
        let run = run_scheme(SchemeKind::Sfc, &machine, &a, &part, CompressKind::Crs).unwrap();
        dist.push(run.t_distribution().as_millis());
        comp.push(run.t_compression().as_millis());
    }
    // Distribution grows slightly with p (startup terms only).
    assert!(dist[2] > dist[0]);
    assert!(
        dist[2] < dist[0] * 1.2,
        "SFC dist should be nearly flat in p: {dist:?}"
    );
    // Compression shrinks roughly linearly in p.
    assert!(
        comp[0] > comp[1] * 2.0 && comp[1] > comp[2] * 1.5,
        "{comp:?}"
    );
}
