//! Integration tests for the observability layer: golden Chrome-trace
//! exports, tracing-is-observational guarantees, and sequential/parallel
//! span equivalence.
//!
//! The golden fixtures live in `tests/goldens/trace_*_n64_p4.json`.
//! Regenerate them after an intentional trace-schema change with
//! `UPDATE_GOLDENS=1 cargo test --test trace` and review the diff.

use proptest::prelude::*;
use sparsedist::gen::SparseRandom;
use sparsedist::multicomputer::{chrome_trace_json, MemorySink, NullSink, RankTrace};
use sparsedist::prelude::*;
use std::sync::Arc;

/// One traced distribution of the fixture workload: uniform random 64×64 at
/// 10% density, seed 7, four row bands on the paper's IBM SP2 model.
fn traced_run(scheme: SchemeKind, config: SchemeConfig) -> (SchemeRun, Vec<RankTrace>) {
    let a = SparseRandom::new(64, 64)
        .sparse_ratio(0.1)
        .seed(7)
        .generate();
    let part = RowBlock::new(64, 64, 4);
    let sink = Arc::new(MemorySink::new());
    let machine =
        Multicomputer::virtual_machine(4, MachineModel::ibm_sp2()).with_trace_sink(sink.clone());
    let run = run_scheme_with(scheme, &machine, &a, &part, CompressKind::Crs, config).unwrap();
    (run, sink.take())
}

#[test]
fn chrome_trace_export_matches_goldens() {
    for (scheme, name) in [
        (SchemeKind::Sfc, "sfc"),
        (SchemeKind::Cfs, "cfs"),
        (SchemeKind::Ed, "ed"),
    ] {
        let (_, traces) = traced_run(scheme, SchemeConfig::default());
        let json = chrome_trace_json(&traces);
        let path = format!(
            "{}/tests/goldens/trace_{name}_n64_p4.json",
            env!("CARGO_MANIFEST_DIR")
        );
        if std::env::var_os("UPDATE_GOLDENS").is_some() {
            std::fs::write(&path, &json).expect("write golden");
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e}; run with UPDATE_GOLDENS=1 to create it"));
        assert_eq!(
            json, golden,
            "{name} trace drifted from its golden; if the change is \
             intentional rerun with UPDATE_GOLDENS=1 and review the diff"
        );
    }
}

#[test]
fn goldens_are_nontrivial() {
    // Guard against an accidentally-empty fixture passing the byte
    // comparison: every golden must carry real spans from every rank.
    let (_, traces) = traced_run(SchemeKind::Ed, SchemeConfig::default());
    assert_eq!(traces.len(), 4);
    for t in &traces {
        assert!(!t.spans.is_empty(), "rank {} recorded no spans", t.rank);
        assert!(t.spans.iter().any(|s| s.scope == "ED"), "rank {}", t.rank);
    }
}

/// Tracing is observational: a traced run's virtual clocks, ledgers and
/// results are identical to an untraced run's, and the default
/// [`NullSink`] behaves exactly like no sink at all.
#[test]
fn tracing_never_perturbs_the_run() {
    for scheme in [SchemeKind::Sfc, SchemeKind::Cfs, SchemeKind::Ed] {
        let a = SparseRandom::new(64, 64)
            .sparse_ratio(0.1)
            .seed(7)
            .generate();
        let part = RowBlock::new(64, 64, 4);
        let model = MachineModel::ibm_sp2();

        let bare = Multicomputer::virtual_machine(4, model);
        let untraced = run_scheme(scheme, &bare, &a, &part, CompressKind::Crs).unwrap();

        let nulled = Multicomputer::virtual_machine(4, model).with_trace_sink(Arc::new(NullSink));
        let with_null = run_scheme(scheme, &nulled, &a, &part, CompressKind::Crs).unwrap();

        let (traced, _) = traced_run(scheme, SchemeConfig::default());

        assert_eq!(untraced.ledgers, with_null.ledgers, "{scheme}");
        assert_eq!(untraced.ledgers, traced.ledgers, "{scheme}");
        assert_eq!(untraced.locals, traced.locals, "{scheme}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Host-side parallelism is invisible to the trace: the per-part op
    /// counts are merged in part order, so sequential and parallel runs
    /// emit identical spans and identical ledgers (fault-free).
    #[test]
    fn parallel_and_sequential_runs_trace_identically(
        seed in 0u64..1000,
        n in 16usize..48,
        p in 2usize..5,
        scheme_ix in 0usize..3,
        wire_ix in 0usize..2,
    ) {
        let scheme = [SchemeKind::Sfc, SchemeKind::Cfs, SchemeKind::Ed][scheme_ix];
        let wire = [WireFormat::V1, WireFormat::V2][wire_ix];
        let a = SparseRandom::new(n, n).sparse_ratio(0.15).seed(seed).generate();
        let part = RowBlock::new(n, n, p);

        let mut traces = Vec::new();
        for parallel in [false, true] {
            let sink = Arc::new(MemorySink::new());
            let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
                .with_trace_sink(sink.clone());
            run_scheme_with(
                scheme,
                &machine,
                &a,
                &part,
                CompressKind::Crs,
                SchemeConfig {
                    wire,
                    parallel,
                    ..SchemeConfig::default()
                },
            )
            .unwrap();
            traces.push(sink.take());
        }
        let (seq, par) = (&traces[0], &traces[1]);
        prop_assert_eq!(seq.len(), par.len());
        for (s, q) in seq.iter().zip(par) {
            prop_assert_eq!(&s.spans, &q.spans, "rank {} spans differ", s.rank);
            prop_assert_eq!(&s.ledger, &q.ledger, "rank {} ledger differs", s.rank);
        }
    }
}
