//! Whole-lifecycle integration: distribute → compute → redistribute →
//! compute → gather, across schemes, strategies and topologies.

use sparsedist::core::gather::{gather_global, GatherStrategy};
use sparsedist::core::redistribute::{redistribute, RedistStrategy};
use sparsedist::gen::SparseRandom;
use sparsedist::multicomputer::Topology;
use sparsedist::ops::spmv::{dense_spmv, distributed_spmv};
use sparsedist::prelude::*;

#[test]
fn distribute_redistribute_gather_round_trip() {
    let n = 48;
    let p = 4;
    let a = SparseRandom::new(n, n)
        .sparse_ratio(0.15)
        .seed(21)
        .generate();
    let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
    let rows = RowBlock::new(n, n, p);
    let mesh = Mesh2D::new(n, n, 2, 2);

    for scheme in SchemeKind::ALL {
        for kind in [CompressKind::Crs, CompressKind::Ccs] {
            let dist = run_scheme(scheme, &machine, &a, &rows, kind).unwrap();
            for rstrat in [RedistStrategy::Direct, RedistStrategy::ViaSource] {
                let re = redistribute(&machine, &dist.locals, &rows, &mesh, kind, rstrat).unwrap();
                for gstrat in [
                    GatherStrategy::Dense,
                    GatherStrategy::Compressed,
                    GatherStrategy::Encoded,
                ] {
                    let g = gather_global(&machine, &re.locals, &mesh, kind, gstrat).unwrap();
                    assert_eq!(
                        g.global.to_dense(),
                        a,
                        "{scheme} {kind} {rstrat:?} {gstrat:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn computation_is_invariant_under_repartitioning() {
    let n = 64;
    let p = 8;
    let a = SparseRandom::new(n, n).sparse_ratio(0.1).seed(5).generate();
    let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
    let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
    let want = dense_spmv(&a, &x);

    let from = RowBlock::new(n, n, p);
    let dist = run_scheme(SchemeKind::Cfs, &machine, &a, &from, CompressKind::Crs).unwrap();
    let y0 = distributed_spmv(&machine, &dist, &from, &x).unwrap();

    let targets: Vec<Box<dyn Partition>> = vec![
        Box::new(ColBlock::new(n, n, p)),
        Box::new(Mesh2D::new(n, n, 2, 4)),
        Box::new(RowCyclic::new(n, n, p)),
    ];
    for to in &targets {
        let re = redistribute(
            &machine,
            &dist.locals,
            &from,
            to.as_ref(),
            CompressKind::Crs,
            RedistStrategy::Direct,
        )
        .unwrap();
        let run = SchemeRun {
            scheme: SchemeKind::Cfs,
            compress_kind: CompressKind::Crs,
            source: 0,
            ledgers: re.ledgers.clone(),
            locals: re.locals.clone(),
            owners: (0..p).collect(),
        };
        let y = distributed_spmv(&machine, &run, to.as_ref(), &x).unwrap();
        for ((u, v), w) in y.iter().zip(&y0).zip(&want) {
            assert!(
                (u - v).abs() < 1e-10 && (u - w).abs() < 1e-10,
                "{}",
                to.name()
            );
        }
    }
}

#[test]
fn schemes_work_on_every_topology() {
    let n = 40;
    let p = 16;
    let a = SparseRandom::new(n, n).sparse_ratio(0.1).seed(9).generate();
    let part = RowBlock::new(n, n, p);
    let model = MachineModel::ibm_sp2().with_hop_cost(10.0);
    for topo in [
        Topology::FullyConnected,
        Topology::Ring,
        Topology::Mesh2D { pr: 4, pc: 4 },
        Topology::Torus2D { pr: 4, pc: 4 },
    ] {
        let machine = Multicomputer::virtual_with_topology(p, model, topo);
        let mut totals = Vec::new();
        for scheme in SchemeKind::ALL {
            let run = run_scheme(scheme, &machine, &a, &part, CompressKind::Crs).unwrap();
            assert_eq!(run.reassemble(&part), a, "{scheme} on {topo:?}");
            totals.push(run.t_distribution());
        }
        // Remark 1's ordering survives every interconnect.
        assert!(
            totals[2] < totals[1] && totals[1] < totals[0],
            "{topo:?}: {totals:?}"
        );
    }
}

#[test]
fn hop_costs_only_increase_times() {
    let n = 40;
    let p = 16;
    let a = SparseRandom::new(n, n).sparse_ratio(0.1).seed(9).generate();
    let part = RowBlock::new(n, n, p);
    let flat = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
    let ringy = Multicomputer::virtual_with_topology(
        p,
        MachineModel::ibm_sp2().with_hop_cost(10.0),
        Topology::Ring,
    );
    for scheme in SchemeKind::ALL {
        let base = run_scheme(scheme, &flat, &a, &part, CompressKind::Crs).unwrap();
        let hop = run_scheme(scheme, &ringy, &a, &part, CompressKind::Crs).unwrap();
        assert!(hop.t_distribution() > base.t_distribution(), "{scheme}");
        // The ring's extra cost is pure routing: compression is untouched.
        assert_eq!(hop.t_compression(), base.t_compression(), "{scheme}");
    }
}
