//! Failure injection through the public API: corrupted wire buffers,
//! malformed compressed arrays, bad MatrixMarket input, misconfigured
//! machines.

use sparsedist::core::compress::{Ccs, CompressError, Crs};
use sparsedist::core::dense::paper_array_a;
use sparsedist::core::encode::{decode_part, encode_part};
use sparsedist::core::opcount::OpCounter;
use sparsedist::gen::matrixmarket;
use sparsedist::multicomputer::PackBuffer;
use sparsedist::prelude::*;

#[test]
fn truncated_ed_buffer_reports_error_not_panic() {
    let a = paper_array_a();
    let part = RowBlock::new(10, 8, 4);
    let full = encode_part(&a, &part, 2, CompressKind::Crs, &mut OpCounter::new());
    // Rebuild progressively truncated buffers; every prefix must fail
    // cleanly (or, for the full buffer, succeed).
    let words = full.byte_len() / 8;
    for keep in 0..words {
        let mut t = PackBuffer::new();
        let mut cursor = full.cursor();
        for _ in 0..keep {
            t.push_u64(cursor.read_u64());
        }
        let r = decode_part(&t, &part, 2, CompressKind::Crs, &mut OpCounter::new());
        assert!(r.is_err(), "prefix of {keep}/{words} words must fail");
    }
    let ok = decode_part(&full, &part, 2, CompressKind::Crs, &mut OpCounter::new());
    assert!(ok.is_ok());
}

#[test]
fn corrupted_counts_detected() {
    let a = paper_array_a();
    let part = RowBlock::new(10, 8, 4);
    let mut buf = encode_part(&a, &part, 0, CompressKind::Crs, &mut OpCounter::new());
    buf.patch_u64(0, u64::MAX / 16).unwrap(); // absurd R_0
    let r = decode_part(&buf, &part, 0, CompressKind::Crs, &mut OpCounter::new());
    assert!(r.is_err());
}

#[test]
fn from_raw_rejects_each_invariant_violation() {
    // Pointer array too short.
    assert!(matches!(
        Crs::from_raw(3, 4, vec![0, 1], vec![0], vec![1.0]),
        Err(CompressError::PointerLength { .. })
    ));
    // Pointer does not start at zero.
    assert!(matches!(
        Crs::from_raw(1, 4, vec![1, 1], vec![], vec![]),
        Err(CompressError::PointerStart)
    ));
    // Decreasing pointer.
    assert!(matches!(
        Crs::from_raw(2, 4, vec![0, 2, 1], vec![0, 1], vec![1., 2.]),
        Err(CompressError::PointerNotMonotone { .. })
    ));
    // Index past the bound.
    assert!(matches!(
        Crs::from_raw(1, 4, vec![0, 1], vec![4], vec![1.]),
        Err(CompressError::IndexOutOfBounds { .. })
    ));
    // Unsorted within a row.
    assert!(matches!(
        Crs::from_raw(1, 4, vec![0, 2], vec![2, 1], vec![1., 2.]),
        Err(CompressError::IndicesNotSorted { .. })
    ));
    // Value/index length mismatch.
    assert!(matches!(
        Ccs::from_raw(4, 1, vec![0, 2], vec![0, 1], vec![1.]),
        Err(CompressError::LengthMismatch { .. })
    ));
}

#[test]
fn matrixmarket_rejects_malformed_documents() {
    for bad in [
        "",                                                                // empty
        "%%MatrixMarket matrix coordinate real general\n",                 // no size
        "%%MatrixMarket matrix coordinate real general\nx y z\n",          // bad size
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",     // short entry
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 5.0\n", // 0-based index
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5.0\n", // count mismatch
    ] {
        assert!(matrixmarket::parse(bad).is_err(), "should reject: {bad:?}");
    }
}

#[test]
fn unpack_cursor_survives_any_byte_prefix() {
    // Reading any truncated prefix via try_* never panics.
    let mut b = PackBuffer::new();
    b.push_u64_slice(&[1, 2, 3]);
    b.push_f64_slice(&[1.5, 2.5]);
    let mut cursor = b.cursor();
    let mut reads = 0;
    while cursor.try_read_u64().is_ok() {
        reads += 1;
    }
    assert_eq!(reads, 5);
    assert!(cursor.try_read_f64().is_err());
}

#[test]
#[should_panic(expected = "parts but the machine")]
fn scheme_refuses_wrong_machine_size() {
    let a = paper_array_a();
    let machine = Multicomputer::virtual_machine(3, MachineModel::ibm_sp2());
    let part = RowBlock::new(10, 8, 4);
    let _ = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Crs);
}

#[test]
#[should_panic(expected = "does not match the array")]
fn scheme_refuses_wrong_partition_shape() {
    let a = paper_array_a();
    let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
    let part = RowBlock::new(8, 10, 4); // transposed shape
    let _ = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Crs);
}
