//! The deterministic chaos sweep — the repo's never-panic, never-hang
//! contract for the fault-tolerant pipeline.
//!
//! [`FaultPlan::chaos`] turns a seed into a fault plan mixing drops,
//! corruption, link delays and one mid-run rank death. This harness
//! sweeps well over a hundred such plans across every scheme and a
//! rotation of pipeline configs (wire format, parallel encode,
//! overlapped sends, chunked streaming) and holds each run to exactly
//! two acceptable outcomes:
//!
//! 1. **Golden reconstruction** — the run succeeds and the reassembled
//!    array is bit-identical to the generated one, or
//! 2. **a typed error** — retries exhausted, a dead peer, no surviving
//!    re-home target — surfaced through `SparsedistError`.
//!
//! A panic fails the test outright; a hang trips the wall-clock
//! watchdog, whose `Stalled` error carries the word "watchdog" and is
//! rejected here explicitly. A final property pins determinism: the
//! same seed replays to bit-identical ledgers, locals and owners (or
//! the identical typed error).

use sparsedist::core::error::SparsedistError;
use sparsedist::gen::SparseRandom;
use sparsedist::multicomputer::{EngineKind, FaultPlan, RetryPolicy};
use sparsedist::prelude::*;
use std::time::Duration;

const PROCS: usize = 8;
const ROWS: usize = 48;

/// The config rotation: every seed lands on one of these, so the sweep
/// exercises the whole `SchemeConfig` surface without multiplying the
/// run count by it.
fn config_for(seed: u64) -> SchemeConfig {
    match seed % 5 {
        0 => SchemeConfig::default(),
        1 => SchemeConfig {
            wire: WireFormat::V2,
            parallel: true,
            ..SchemeConfig::default()
        },
        2 => SchemeConfig::overlapped(),
        3 => SchemeConfig {
            chunk_elems: 64,
            ..SchemeConfig::overlapped()
        },
        _ => SchemeConfig {
            chunk_elems: 32,
            ..SchemeConfig::default()
        },
    }
}

fn golden() -> (Dense2D, RowBlock) {
    let a = SparseRandom::new(ROWS, ROWS)
        .sparse_ratio(0.12)
        .seed(0xDECADE)
        .generate();
    let part = RowBlock::new(ROWS, ROWS, PROCS);
    (a, part)
}

fn chaos_machine_on(seed: u64, engine: EngineKind) -> Multicomputer {
    // Every seventh seed runs on a starved retry budget: chaos drop
    // rates top out at 0.2, which a 10-retry ARQ window always rides
    // out, so without the tight class no plan would ever surface the
    // retries-exhausted path this sweep exists to pin.
    let retries = if seed % 7 == 0 { 1 } else { 10 };
    Multicomputer::virtual_machine(PROCS, MachineModel::ibm_sp2())
        .with_engine(engine)
        .with_faults(FaultPlan::chaos(seed, PROCS))
        .with_retry_policy(RetryPolicy::with_retries(retries))
        .with_watchdog(Duration::from_secs(10))
}

fn chaos_machine(seed: u64) -> Multicomputer {
    chaos_machine_on(seed, EngineKind::Threaded)
}

fn run_one(
    seed: u64,
    scheme: SchemeKind,
    a: &Dense2D,
    part: &RowBlock,
) -> Result<SchemeRun, SparsedistError> {
    run_scheme_with(
        scheme,
        &chaos_machine(seed),
        a,
        part,
        CompressKind::Crs,
        config_for(seed),
    )
}

/// ≥ 100 seeded plans × every scheme: each run reconstructs the golden
/// array exactly or fails with a typed error; no panic, no watchdog
/// trip, ever.
#[test]
fn chaos_sweep_reconstructs_or_fails_typed() {
    let (a, part) = golden();
    let (mut clean, mut recovered, mut failed) = (0u32, 0u32, 0u32);
    for seed in 0..120u64 {
        for scheme in SchemeKind::ALL {
            match run_one(seed, scheme, &a, &part) {
                Ok(run) => {
                    assert_eq!(
                        run.reassemble(&part),
                        a,
                        "seed {seed} {scheme}: reconstruction diverged"
                    );
                    let retries: u64 = run.ledgers.iter().map(|l| l.faults().retries).sum();
                    let rehomed = run.owners.iter().enumerate().any(|(pid, &o)| pid != o);
                    if retries > 0 || rehomed {
                        recovered += 1;
                    } else {
                        clean += 1;
                    }
                }
                Err(e) => {
                    let msg = e.to_string();
                    assert!(
                        !msg.contains("watchdog"),
                        "seed {seed} {scheme}: protocol stall — {msg}"
                    );
                    failed += 1;
                }
            }
        }
    }
    // The generator is tuned so the sweep visits every outcome class:
    // untouched runs, runs that recovered mid-stream, and plans harsh
    // enough to exhaust the machine. A silent collapse into one bucket
    // would mean the chaos plans stopped biting.
    assert!(clean > 0, "no clean run in {} plans", 120);
    assert!(recovered > 0, "no recovered run — faults never fired");
    assert!(
        failed > 0,
        "no typed failure — plans never exceeded the retry budget"
    );
}

/// Same seed, same plan, same everything: the sweep is a pure function
/// of the seed. Replays produce bit-identical ledgers, locals and
/// owners — or the identical typed error.
#[test]
fn chaos_replays_are_bit_identical() {
    let (a, part) = golden();
    for seed in (0..120u64).step_by(13) {
        for scheme in SchemeKind::ALL {
            let first = run_one(seed, scheme, &a, &part);
            let second = run_one(seed, scheme, &a, &part);
            match (first, second) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(
                        x.ledgers, y.ledgers,
                        "seed {seed} {scheme}: ledgers drifted"
                    );
                    assert_eq!(x.locals, y.locals, "seed {seed} {scheme}: locals drifted");
                    assert_eq!(x.owners, y.owners, "seed {seed} {scheme}: owners drifted");
                }
                (Err(x), Err(y)) => {
                    assert_eq!(x, y, "seed {seed} {scheme}: error drifted");
                }
                (a, b) => panic!(
                    "seed {seed} {scheme}: outcome flipped between replays ({:?} vs {:?})",
                    a.map(|_| "ok"),
                    b.map(|_| "ok"),
                ),
            }
        }
    }
}

/// A subset of the chaos corpus replayed on the event-loop engine: every
/// plan must produce byte-identical ledgers, locals and owners (or the
/// identical typed error) to the threaded path. This is the contract that
/// lets the event loop stand in for OS threads at any scale — the two
/// backends share all charging/ARQ/fault logic above the transport seam,
/// and this sweep pins that the seam itself is invisible.
#[test]
fn chaos_subset_is_bit_identical_across_engines() {
    let (a, part) = golden();
    for seed in (0..120u64).step_by(7) {
        for scheme in SchemeKind::ALL {
            let go = |engine: EngineKind| {
                run_scheme_with(
                    scheme,
                    &chaos_machine_on(seed, engine),
                    &a,
                    &part,
                    CompressKind::Crs,
                    config_for(seed),
                )
            };
            match (go(EngineKind::Threaded), go(EngineKind::EventLoop)) {
                (Ok(t), Ok(e)) => {
                    assert_eq!(
                        t.ledgers, e.ledgers,
                        "seed {seed} {scheme}: event-loop ledgers diverged"
                    );
                    assert_eq!(t.locals, e.locals, "seed {seed} {scheme}: locals diverged");
                    assert_eq!(t.owners, e.owners, "seed {seed} {scheme}: owners diverged");
                }
                (Err(t), Err(e)) => {
                    assert_eq!(t, e, "seed {seed} {scheme}: errors diverged");
                }
                (t, e) => panic!(
                    "seed {seed} {scheme}: outcome flipped across engines ({:?} vs {:?})",
                    t.map(|_| "ok"),
                    e.map(|_| "ok"),
                ),
            }
        }
    }
}

/// The chaos generator itself is deterministic and bounded: same seed →
/// same plan, drop ≤ 0.2, and rank 0 (the source) is never scheduled to
/// die — otherwise every seed in its third would collapse into
/// `SourceDead` and test nothing.
#[test]
fn chaos_plans_are_deterministic_and_spare_the_source() {
    for seed in 0..200u64 {
        let p1 = FaultPlan::chaos(seed, PROCS);
        let p2 = FaultPlan::chaos(seed, PROCS);
        assert_eq!(p1, p2, "seed {seed}: plan not reproducible");
        assert!(
            p1.death_time(0).is_none(),
            "seed {seed}: plan kills the source"
        );
    }
}
