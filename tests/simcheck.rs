//! Exhaustive schedule checking of whole scheme runs (`sparsedist
//! simcheck`'s engine, driven directly): every message-delivery
//! interleaving of a small machine must produce bit-identical ledgers,
//! locals and owners, and none may deadlock.
//!
//! The static C rules (crates/lint) prove the syntactic half of the
//! communication-safety story; these tests prove the semantic half on
//! real configurations, including the hardest one — a routed pipeline
//! with a mid-stream rank death, where parts re-home while frames are
//! still in flight.

use sparsedist_core::compress::CompressKind;
use sparsedist_core::dense::Dense2D;
use sparsedist_core::partition::RowBlock;
use sparsedist_core::schemes::{run_scheme_with, SchemeConfig, SchemeKind};
use sparsedist_gen::SparseRandom;
use sparsedist_multicomputer::{
    explore, EngineKind, Exploration, FaultPlan, MachineModel, Multicomputer, RetryPolicy,
};

fn array(rows: usize) -> Dense2D {
    SparseRandom::new(rows, rows)
        .sparse_ratio(0.2)
        .seed(0xC0FFEE)
        .generate()
}

/// One scheme run on the event loop, digested into a string covering
/// everything that must be schedule-invariant: success/error kind,
/// golden reconstruction, owner map, full ledgers and local arrays.
fn digest_run(
    scheme: SchemeKind,
    procs: usize,
    a: &Dense2D,
    plan: Option<&FaultPlan>,
    config: SchemeConfig,
) -> String {
    let part = RowBlock::new(a.rows(), a.cols(), procs);
    let mut machine = Multicomputer::virtual_machine(procs, MachineModel::ibm_sp2())
        .with_engine(EngineKind::EventLoop);
    if let Some(plan) = plan {
        machine = machine
            .with_faults(plan.clone())
            .with_retry_policy(RetryPolicy::with_retries(10));
    }
    match run_scheme_with(scheme, &machine, a, &part, CompressKind::Crs, config) {
        Ok(run) => format!(
            "ok reassembled={} owners={:?} ledgers={:?} locals={:?}",
            run.reassemble(&part) == *a,
            run.owners,
            run.ledgers,
            run.locals
        ),
        Err(e) => format!("err {e}"),
    }
}

fn assert_schedule_independent(label: &str, report: &Exploration<String>) {
    assert!(
        !report.truncated,
        "{label}: tree not exhausted in {} schedules",
        report.schedules
    );
    assert!(
        report.divergence.is_none(),
        "{label}: outcome depends on delivery order — baseline {:?} vs {:?}",
        report.baseline,
        report.divergence
    );
    assert!(
        !report.baseline.contains("watchdog"),
        "{label}: every schedule deadlocks identically: {}",
        report.baseline
    );
    println!(
        "{label}: {} schedules, {} branch points max, baseline {}…",
        report.schedules,
        report.max_branch_points,
        &report.baseline[..report.baseline.len().min(40)]
    );
}

#[test]
fn routed_death_p3_is_schedule_independent_across_100_plus_schedules() {
    // The acceptance configuration: p=3, overlapped chunked pipeline,
    // rank 2 dying mid-stream so its part re-homes while frames are in
    // flight. Every delivery interleaving must reconstruct the golden
    // array with identical ledgers.
    let a = array(6);
    let config = SchemeConfig {
        overlap: true,
        ..SchemeConfig::default()
    };
    let plan = FaultPlan::new(1).with_death_at(2, 200.0);
    let report = explore(
        || digest_run(SchemeKind::Ed, 3, &a, Some(&plan), config),
        25_000,
    );
    assert_schedule_independent("routed-death p=3", &report);
    assert!(
        report.baseline.starts_with("ok reassembled=true"),
        "routed run must survive the death: {}",
        report.baseline
    );
    assert!(
        report.baseline.contains("owners=[0, 1, 1]")
            || report.baseline.contains("owners=[0, 0, 1]"),
        "rank 2's part must have re-homed to a survivor: {}",
        report.baseline
    );
    assert!(
        report.schedules >= 100,
        "need >= 100 distinct schedules for the exhaustiveness claim, got {}",
        report.schedules
    );
}

#[test]
fn overlapped_pipeline_p3_is_schedule_independent() {
    let a = array(6);
    let config = SchemeConfig {
        overlap: true,
        chunk_elems: 6,
        ..SchemeConfig::default()
    };
    for scheme in [SchemeKind::Sfc, SchemeKind::Cfs, SchemeKind::Ed] {
        let report = explore(|| digest_run(scheme, 3, &a, None, config), 25_000);
        assert_schedule_independent(&format!("pipeline p=3 {scheme:?}"), &report);
        assert!(report.baseline.starts_with("ok reassembled=true"));
    }
}

#[test]
fn chaos_plans_p3_are_schedule_independent() {
    // Seeded chaos plans (drops, corruption, delays, deaths): whatever
    // the outcome — clean, recovered or typed error — it must be the
    // same outcome under every delivery order.
    let a = array(10);
    for seed in 0..3u64 {
        let plan = FaultPlan::chaos(seed, 3);
        let report = explore(
            || digest_run(SchemeKind::Ed, 3, &a, Some(&plan), SchemeConfig::default()),
            60_000,
        );
        assert_schedule_independent(&format!("chaos seed {seed} p=3"), &report);
    }
}

#[test]
#[ignore]
fn probe_tree_sizes() {
    for (rows, chunk) in [(6usize, 4usize), (6, 6), (6, 0)] {
        let a = array(rows);
        let config = SchemeConfig {
            overlap: true,
            chunk_elems: chunk,
            ..SchemeConfig::default()
        };
        let plan = FaultPlan::new(1).with_death_at(2, 200.0);
        let _ = &plan;
        for scheme in [SchemeKind::Sfc, SchemeKind::Cfs, SchemeKind::Ed] {
            let pl = explore(|| digest_run(scheme, 3, &a, None, config), 120_000);
            println!(
                "rows={rows} chunk={chunk} {scheme:?}: pipeline {} (trunc={}, bp={})",
                pl.schedules, pl.truncated, pl.max_branch_points
            );
        }
    }
}
