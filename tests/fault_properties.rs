//! Property-based tests over the fault-injection substrate and the
//! reliable-delivery layer.
//!
//! Two invariants from the fault model:
//!
//! 1. **Determinism** — a `FaultPlan` is a pure function of
//!    `(seed, src, dst, seq, attempt)`, so two runs with the same plan
//!    produce byte-identical per-rank `PhaseLedger`s and identical locals.
//! 2. **Recovery** — under a ≤20% drop plan the retry layer delivers every
//!    message eventually, so the final compressed locals equal the
//!    fault-free run's for every (scheme, partition, compression) triple.

use proptest::prelude::*;
use sparsedist::multicomputer::{FaultPlan, RetryPolicy};
use sparsedist::prelude::*;

/// A small random sparse array (≤ 16×16, density ~1/5).
fn arb_dense() -> impl Strategy<Value = Dense2D> {
    (2usize..16, 2usize..16)
        .prop_flat_map(|(r, c)| {
            (
                Just(r),
                Just(c),
                proptest::collection::vec(
                    prop_oneof![4 => Just(0.0f64), 1 => 1.0f64..100.0],
                    r * c,
                ),
            )
        })
        .prop_map(|(r, c, data)| Dense2D::from_vec(r, c, data))
}

fn arb_partition(rows: usize, cols: usize) -> impl Strategy<Value = Box<dyn Partition>> {
    (2usize..5, 0usize..4).prop_map(move |(p, which)| -> Box<dyn Partition> {
        match which {
            0 => Box::new(RowBlock::new(rows, cols, p)),
            1 => Box::new(ColBlock::new(rows, cols, p)),
            2 => Box::new(RowCyclic::new(rows, cols, p)),
            _ => Box::new(Mesh2D::new(rows, cols, p, 2)),
        }
    })
}

fn arb_scheme() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Sfc),
        Just(SchemeKind::Cfs),
        Just(SchemeKind::Ed)
    ]
}

fn arb_kind() -> impl Strategy<Value = CompressKind> {
    prop_oneof![Just(CompressKind::Crs), Just(CompressKind::Ccs)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same plan, same inputs ⇒ the same faults fire at the same points, so
    /// the resulting ledgers (including retry charges and fault counters)
    /// are byte-for-byte identical across runs.
    #[test]
    fn same_fault_seed_gives_identical_ledgers(
        (a, part) in arb_dense().prop_flat_map(|a| {
            let (r, c) = (a.rows(), a.cols());
            (Just(a), arb_partition(r, c))
        }),
        scheme in arb_scheme(),
        kind in arb_kind(),
        seed in 0u64..1_000_000_000,
    ) {
        let plan = FaultPlan::new(seed).with_drop(0.15).with_corrupt(0.05).with_delay(0.05, 40.0);
        let p = part.nparts();
        let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
            .with_faults(plan.clone())
            .with_retry_policy(RetryPolicy::with_retries(12));
        let r1 = run_scheme(scheme, &machine, &a, part.as_ref(), kind).unwrap();
        let machine2 = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
            .with_faults(plan)
            .with_retry_policy(RetryPolicy::with_retries(12));
        let r2 = run_scheme(scheme, &machine2, &a, part.as_ref(), kind).unwrap();
        prop_assert_eq!(&r1.ledgers, &r2.ledgers);
        prop_assert_eq!(format!("{:?}", r1.ledgers), format!("{:?}", r2.ledgers));
        prop_assert_eq!(r1.locals, r2.locals);
    }

    /// A ≤20% drop plan is always recovered by retries: every scheme ends
    /// with exactly the locals the fault-free run produces, and the retry
    /// work shows up in the ledgers whenever a fault actually fired.
    #[test]
    fn drop_plans_recover_to_fault_free_locals(
        (a, part) in arb_dense().prop_flat_map(|a| {
            let (r, c) = (a.rows(), a.cols());
            (Just(a), arb_partition(r, c))
        }),
        kind in arb_kind(),
        seed in 0u64..1_000_000_000,
        drop in 0.01f64..0.20,
    ) {
        let p = part.nparts();
        let clean_machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
        for scheme in SchemeKind::ALL {
            let clean = run_scheme(scheme, &clean_machine, &a, part.as_ref(), kind).unwrap();
            let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
                .with_faults(FaultPlan::new(seed).with_drop(drop))
                .with_retry_policy(RetryPolicy::with_retries(16));
            let run = run_scheme(scheme, &machine, &a, part.as_ref(), kind).unwrap();
            prop_assert_eq!(&run.locals, &clean.locals, "{} under drop={}", scheme, drop);
            prop_assert_eq!(run.reassemble(part.as_ref()), a.clone());
            // Retry charges never appear in a fault-free run…
            for l in &clean.ledgers {
                prop_assert!(l.get(Phase::Retry).as_micros() == 0.0);
            }
            // …and any dropped frame must leave a visible retry charge.
            let dropped: u64 = run.ledgers.iter().map(|l| l.faults().drops).sum();
            if dropped > 0 {
                let retry_us: f64 =
                    run.ledgers.iter().map(|l| l.get(Phase::Retry).as_micros()).sum();
                prop_assert!(retry_us > 0.0, "{dropped} drops but no retry time");
            }
        }
    }

    /// Corruption is caught by the CRC frame check and healed the same way
    /// drops are — the delivered data is never silently wrong.
    #[test]
    fn corruption_never_reaches_the_application(
        (a, part) in arb_dense().prop_flat_map(|a| {
            let (r, c) = (a.rows(), a.cols());
            (Just(a), arb_partition(r, c))
        }),
        seed in 0u64..1_000_000_000,
        corrupt in 0.01f64..0.20,
    ) {
        let p = part.nparts();
        let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
            .with_faults(FaultPlan::new(seed).with_corrupt(corrupt))
            .with_retry_policy(RetryPolicy::with_retries(16));
        let run = run_scheme(SchemeKind::Ed, &machine, &a, part.as_ref(), CompressKind::Crs).unwrap();
        prop_assert_eq!(run.reassemble(part.as_ref()), a);
    }
}

/// When the backoff schedule runs dry mid-part on the chunked streaming
/// path, the run fails with the typed `RetriesExhausted` error — not a
/// panic, not a hang, and not a partial local that reassembles wrong.
#[test]
fn chunked_streaming_surfaces_retry_exhaustion_typed() {
    use sparsedist::core::error::SparsedistError;
    use sparsedist::multicomputer::engine::CommError;

    let a = Dense2D::from_vec(8, 8, (0..64).map(|i| (i % 3) as f64).collect());
    let part = RowBlock::new(8, 8, 4);
    // A total blackout: every attempt of every frame is dropped, so the
    // budget is exhausted on the very first chunk no matter its size.
    let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2())
        .with_faults(FaultPlan::new(7).with_drop(1.0))
        .with_retry_policy(RetryPolicy::with_retries(2));
    for chunk_elems in [2, 16] {
        let config = SchemeConfig {
            chunk_elems,
            ..SchemeConfig::default()
        };
        let err = run_scheme_with(
            SchemeKind::Ed,
            &machine,
            &a,
            &part,
            CompressKind::Crs,
            config,
        )
        .unwrap_err();
        match err {
            SparsedistError::Comm(CommError::RetriesExhausted { attempts, .. }) => {
                assert_eq!(attempts, 3, "initial transmission + the 2-retry budget");
            }
            other => panic!("chunk={chunk_elems}: expected RetriesExhausted, got {other}"),
        }
    }
}
