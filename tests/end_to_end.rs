//! Cross-crate integration: generate → distribute → compute → verify,
//! across schemes, partitions, compression kinds and timing modes.

use sparsedist::gen::patterns::{banded, block_clustered, five_point_laplacian, row_skewed};
use sparsedist::gen::{RatioMode, SparseRandom};
use sparsedist::ops::spmv::{dense_spmv, distributed_spmv};
use sparsedist::prelude::*;

fn partitions(rows: usize, cols: usize, p: usize) -> Vec<Box<dyn Partition>> {
    let mut out: Vec<Box<dyn Partition>> = vec![
        Box::new(RowBlock::new(rows, cols, p)),
        Box::new(ColBlock::new(rows, cols, p)),
        Box::new(RowCyclic::new(rows, cols, p)),
        Box::new(ColCyclic::new(rows, cols, p)),
    ];
    if p == 4 {
        out.push(Box::new(Mesh2D::new(rows, cols, 2, 2)));
        out.push(Box::new(BlockCyclic::new(rows, cols, 3, 5, 2, 2)));
    }
    out
}

#[test]
fn every_workload_every_scheme_round_trips() {
    let workloads = vec![
        (
            "uniform",
            SparseRandom::new(60, 48)
                .sparse_ratio(0.1)
                .seed(1)
                .generate(),
        ),
        (
            "bernoulli",
            SparseRandom::new(60, 48)
                .sparse_ratio(0.15)
                .mode(RatioMode::Bernoulli)
                .seed(2)
                .generate(),
        ),
        ("banded", banded(60, 2).block(0, 0, 60, 48)),
        (
            "clustered",
            block_clustered(60, 8, 5, 3).block(0, 0, 60, 48),
        ),
        ("skewed", row_skewed(60, 30, 4).block(0, 0, 60, 48)),
    ];
    let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
    for (name, a) in &workloads {
        for part in partitions(a.rows(), a.cols(), 4) {
            for kind in [CompressKind::Crs, CompressKind::Ccs] {
                for scheme in SchemeKind::ALL {
                    let run = run_scheme(scheme, &machine, a, part.as_ref(), kind).unwrap();
                    assert_eq!(
                        run.reassemble(part.as_ref()),
                        *a,
                        "{name} {scheme} {kind} {}",
                        part.name()
                    );
                }
            }
        }
    }
}

#[test]
fn distributed_spmv_matches_dense_on_fem_matrix() {
    let a = five_point_laplacian(10); // 100×100
    let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
    let x: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
    let want = dense_spmv(&a, &x);
    for part in partitions(100, 100, 4) {
        let run = run_scheme(
            SchemeKind::Ed,
            &machine,
            &a,
            part.as_ref(),
            CompressKind::Crs,
        )
        .unwrap();
        let y = distributed_spmv(&machine, &run, part.as_ref(), &x).unwrap();
        let err = y
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-10, "{}: err {err}", part.name());
    }
}

#[test]
fn wall_clock_and_virtual_agree_on_state() {
    let a = SparseRandom::new(40, 40)
        .sparse_ratio(0.1)
        .seed(9)
        .generate();
    let part = RowBlock::new(40, 40, 4);
    let virt = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
    let wall = Multicomputer::wall_clock(4);
    for scheme in SchemeKind::ALL {
        let rv = run_scheme(scheme, &virt, &a, &part, CompressKind::Crs).unwrap();
        let rw = run_scheme(scheme, &wall, &a, &part, CompressKind::Crs).unwrap();
        assert_eq!(
            rv.locals, rw.locals,
            "{scheme}: timing mode must not change results"
        );
    }
}

#[test]
fn wall_clock_with_injected_wire_cost_runs() {
    use sparsedist::multicomputer::TimingMode;
    let a = SparseRandom::new(64, 64)
        .sparse_ratio(0.1)
        .seed(5)
        .generate();
    let part = RowBlock::new(64, 64, 4);
    let machine = Multicomputer::with_mode(
        4,
        TimingMode::WallClock {
            wire_ns_per_elem: 50,
            wire_ns_startup: 1_000,
        },
    );
    let sfc = run_scheme(SchemeKind::Sfc, &machine, &a, &part, CompressKind::Crs).unwrap();
    let ed = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Crs).unwrap();
    assert_eq!(sfc.reassemble(&part), a);
    assert_eq!(ed.reassemble(&part), a);
    // With a real injected wire cost, SFC's send (4096 dense elements)
    // must measurably exceed ED's (~960).
    assert!(
        sfc.ledgers[0].get(Phase::Send) > ed.ledgers[0].get(Phase::Send),
        "SFC send {} !> ED send {}",
        sfc.ledgers[0].get(Phase::Send),
        ed.ledgers[0].get(Phase::Send)
    );
}

#[test]
fn larger_processor_counts() {
    let a = SparseRandom::new(96, 96)
        .sparse_ratio(0.1)
        .seed(11)
        .generate();
    for p in [1, 2, 8, 16, 32] {
        let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
        let part = RowBlock::new(96, 96, p);
        let run = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Crs).unwrap();
        assert_eq!(run.reassemble(&part), a, "p={p}");
    }
    // Mesh up to 6x6 = 36 processors.
    let machine = Multicomputer::virtual_machine(36, MachineModel::ibm_sp2());
    let part = Mesh2D::new(96, 96, 6, 6);
    let run = run_scheme(SchemeKind::Cfs, &machine, &a, &part, CompressKind::Ccs).unwrap();
    assert_eq!(run.reassemble(&part), a);
}

#[test]
fn empty_and_dense_extremes() {
    let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
    let part = RowBlock::new(32, 32, 4);

    let empty = Dense2D::zeros(32, 32);
    let full = SparseRandom::new(32, 32)
        .sparse_ratio(1.0)
        .seed(1)
        .generate();
    for a in [&empty, &full] {
        for scheme in SchemeKind::ALL {
            let run = run_scheme(scheme, &machine, a, &part, CompressKind::Crs).unwrap();
            assert_eq!(run.reassemble(&part), *a);
        }
    }
}

#[test]
fn ragged_sizes_with_empty_parts() {
    // 9 rows over 4 processors leaves P3 empty (⌈9/4⌉ = 3 → 3,3,3,0).
    let a = SparseRandom::new(9, 17)
        .sparse_ratio(0.2)
        .seed(2)
        .generate();
    let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
    let part = RowBlock::new(9, 17, 4);
    for scheme in SchemeKind::ALL {
        for kind in [CompressKind::Crs, CompressKind::Ccs] {
            let run = run_scheme(scheme, &machine, &a, &part, kind).unwrap();
            assert_eq!(run.reassemble(&part), a, "{scheme} {kind}");
            assert_eq!(run.locals[3].nnz(), 0);
        }
    }
}
