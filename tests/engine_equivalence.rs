//! Threaded-vs-event-loop engine equivalence, property-enforced.
//!
//! The event-loop executor ([`EngineKind::EventLoop`]) exists so the
//! paper's sweeps can run at tens of thousands of ranks, but its license
//! to do so is this file: over arbitrary chaos fault plans, machine
//! sizes up to 256 ranks, schemes and pipeline configs, a run on the
//! event loop must be **bit-identical** to the same run on the threaded
//! engine — every per-rank ledger (virtual clocks, wire bytes, fault
//! stats), every decoded local array, every owner map, and every typed
//! error. No tolerance, no "close enough": the two backends share all
//! charging/ARQ/fault logic above the transport seam, so any divergence
//! is a scheduler bug, and `proptest` shrinks it to a minimal seed.

use proptest::prelude::*;
use sparsedist::gen::SparseRandom;
use sparsedist::multicomputer::{EngineKind, FaultPlan, RetryPolicy};
use sparsedist::prelude::*;
use std::time::Duration;

/// Machine sizes biased toward the interesting edges: tiny rings where
/// every rank matters, the paper's 4–64 sweet spot, and the 256-rank
/// ceiling this property is chartered to cover (above it the threaded
/// reference gets expensive for a per-case proptest).
fn arb_procs() -> impl Strategy<Value = usize> {
    prop_oneof![
        4 => 2usize..16,
        3 => 16usize..64,
        2 => prop_oneof![Just(64usize), Just(128), Just(256)],
    ]
}

fn arb_config() -> impl Strategy<Value = SchemeConfig> {
    (0u32..5).prop_map(|which| match which {
        0 => SchemeConfig::default(),
        1 => SchemeConfig {
            wire: WireFormat::V2,
            parallel: true,
            ..SchemeConfig::default()
        },
        2 => SchemeConfig::overlapped(),
        3 => SchemeConfig {
            chunk_elems: 64,
            ..SchemeConfig::overlapped()
        },
        _ => SchemeConfig {
            chunk_elems: 32,
            ..SchemeConfig::default()
        },
    })
}

fn arb_scheme() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Sfc),
        Just(SchemeKind::Cfs),
        Just(SchemeKind::Ed)
    ]
}

fn machine(p: usize, seed: u64, engine: EngineKind) -> Multicomputer {
    Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
        .with_engine(engine)
        .with_faults(FaultPlan::chaos(seed, p))
        .with_retry_policy(RetryPolicy::with_retries(if seed % 7 == 0 {
            1
        } else {
            10
        }))
        .with_watchdog(Duration::from_secs(10))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed, same plan, two engines: bit-identical outcome.
    #[test]
    fn event_loop_is_bit_identical_to_threaded(
        p in arb_procs(),
        seed in 0u64..10_000,
        scheme in arb_scheme(),
        config in arb_config(),
    ) {
        // Rows scale with p so every rank owns at least one row up to the
        // 64-rank tier; past it parts go empty, which is itself a case
        // worth covering (the sweeps at p = 65536 rely on it).
        let rows = 64usize;
        let a = SparseRandom::new(rows, rows)
            .sparse_ratio(0.12)
            .seed(0xDECADE ^ seed)
            .generate();
        let part = RowBlock::new(rows, rows, p);
        let go = |engine: EngineKind| {
            run_scheme_with(scheme, &machine(p, seed, engine), &a, &part, CompressKind::Crs, config)
        };
        match (go(EngineKind::Threaded), go(EngineKind::EventLoop)) {
            (Ok(t), Ok(e)) => {
                prop_assert_eq!(t.ledgers, e.ledgers, "ledgers diverged");
                prop_assert_eq!(t.locals, e.locals, "locals diverged");
                prop_assert_eq!(t.owners, e.owners, "owners diverged");
            }
            (Err(t), Err(e)) => prop_assert_eq!(t, e, "errors diverged"),
            (t, e) => panic!(
                "outcome flipped across engines ({:?} vs {:?})",
                t.map(|_| "ok"),
                e.map(|_| "ok"),
            ),
        }
    }
}
