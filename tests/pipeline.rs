//! Integration properties of the unified pipeline driver.
//!
//! Every scheme now runs through the same staged driver
//! (`sparsedist_core::schemes::pipeline`), so one property covers them
//! all: whatever knobs `SchemeConfig` turns — wire format, host-side
//! parallel encode, overlapped nonblocking sends, chunked streaming —
//! and whatever fault plan the machine carries, the distributed state
//! (`SchemeRun::locals`) and the reassembled array are identical to the
//! default staged run's. The knobs trade scheduling and byte layout,
//! never data.
//!
//! The second half pins the headline of the tentpole at the paper's
//! scale: at n = 1000, s = 0.1, overlapping encode with the transfers
//! strictly beats the staged schedule on makespan for ED and CFS while
//! moving exactly the same bytes.

use proptest::prelude::*;
use sparsedist::gen::SparseRandom;
use sparsedist::multicomputer::{FaultPlan, RetryPolicy};
use sparsedist::prelude::*;

/// A small random sparse array (≤ 16×16, density ~1/5).
fn arb_dense() -> impl Strategy<Value = Dense2D> {
    (2usize..16, 2usize..16)
        .prop_flat_map(|(r, c)| {
            (
                Just(r),
                Just(c),
                proptest::collection::vec(
                    prop_oneof![4 => Just(0.0f64), 1 => 1.0f64..100.0],
                    r * c,
                ),
            )
        })
        .prop_map(|(r, c, data)| Dense2D::from_vec(r, c, data))
}

fn arb_partition(rows: usize, cols: usize) -> impl Strategy<Value = Box<dyn Partition>> {
    (2usize..5, 0usize..4).prop_map(move |(p, which)| -> Box<dyn Partition> {
        match which {
            0 => Box::new(RowBlock::new(rows, cols, p)),
            1 => Box::new(ColBlock::new(rows, cols, p)),
            2 => Box::new(RowCyclic::new(rows, cols, p)),
            _ => Box::new(Mesh2D::new(rows, cols, p, 2)),
        }
    })
}

fn arb_scheme() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Sfc),
        Just(SchemeKind::Cfs),
        Just(SchemeKind::Ed)
    ]
}

fn arb_config() -> impl Strategy<Value = SchemeConfig> {
    let arb_bool = || prop_oneof![Just(false), Just(true)];
    (
        prop_oneof![
            Just(WireFormat::V1),
            Just(WireFormat::V2),
            Just(WireFormat::V3)
        ],
        prop_oneof![
            Just(CodecChoice::Auto),
            Just(CodecChoice::Raw),
            Just(CodecChoice::Delta),
            Just(CodecChoice::Packed)
        ],
        arb_bool(),
        arb_bool(),
        prop_oneof![Just(0usize), 1usize..64],
    )
        .prop_map(
            |(wire, codec, parallel, overlap, chunk_elems)| SchemeConfig {
                wire,
                codec,
                parallel,
                overlap,
                chunk_elems,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The unified driver's state is config-invariant: any combination of
    /// wire format, parallel encode, overlap and chunking — fault-free or
    /// under a recoverable drop plan — delivers exactly the locals (and
    /// therefore the reassembled array) of the default staged run.
    #[test]
    fn every_config_delivers_the_default_runs_state(
        (a, part) in arb_dense().prop_flat_map(|a| {
            let (r, c) = (a.rows(), a.cols());
            (Just(a), arb_partition(r, c))
        }),
        scheme in arb_scheme(),
        config in arb_config(),
        faults in prop_oneof![
            2 => Just(None),
            3 => (0u64..1_000_000u64, 0.01f64..0.15).prop_map(Some),
        ],
    ) {
        let p = part.nparts();
        let baseline = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
        let want = run_scheme(scheme, &baseline, &a, part.as_ref(), CompressKind::Crs).unwrap();

        let mut machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
        if let Some((seed, drop)) = faults {
            machine = machine
                .with_faults(FaultPlan::new(seed).with_drop(drop))
                .with_retry_policy(RetryPolicy::with_retries(16));
        }
        let got =
            run_scheme_with(scheme, &machine, &a, part.as_ref(), CompressKind::Crs, config)
                .unwrap();

        prop_assert_eq!(&got.locals, &want.locals, "{} under {:?}", scheme, config);
        prop_assert_eq!(got.reassemble(part.as_ref()), a.clone());

        // Fault-free scheduling guarantees: overlap never slows the run
        // down, and chunking only ever adds messages.
        if faults.is_none() {
            if config.overlap && config.chunk_elems == 0 {
                prop_assert!(
                    got.t_makespan() <= want.t_makespan(),
                    "{} overlap worsened makespan: {} > {}",
                    scheme, got.t_makespan(), want.t_makespan()
                );
            }
            if config.wire == WireFormat::V1 && config.chunk_elems > 0 {
                let (m0, m1) = (
                    want.ledgers.iter().map(|l| l.wire().messages).sum::<u64>(),
                    got.ledgers.iter().map(|l| l.wire().messages).sum::<u64>(),
                );
                prop_assert!(m1 >= m0, "chunking lost messages: {m1} < {m0}");
            }
        }
    }
}

/// At the paper's experimental scale the overlap win is strict and the
/// wire volume untouched — the assertion backing the `pipeline_overlap`
/// bench numbers in `BENCH_wire.json`.
#[test]
fn overlap_beats_staged_at_paper_scale() {
    let n = 1000;
    let p = 16;
    let a = SparseRandom::new(n, n)
        .sparse_ratio(0.1)
        .seed(0xC0FFEE ^ n as u64)
        .generate();
    assert!(a.nnz() > 90_000, "workload density collapsed: {}", a.nnz());
    let part = RowBlock::new(n, n, p);
    let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());

    for scheme in [SchemeKind::Ed, SchemeKind::Cfs] {
        let staged = run_scheme(scheme, &machine, &a, &part, CompressKind::Crs).unwrap();
        let over = run_scheme_with(
            scheme,
            &machine,
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::overlapped(),
        )
        .unwrap();
        assert_eq!(
            over.locals, staged.locals,
            "{scheme}: overlap changed state"
        );
        let bytes = |r: &SchemeRun| r.ledgers.iter().map(|l| l.wire().bytes).sum::<u64>();
        assert_eq!(
            bytes(&over),
            bytes(&staged),
            "{scheme}: overlap changed bytes"
        );
        assert!(
            over.t_makespan() < staged.t_makespan(),
            "{scheme}: overlap did not beat staged ({} >= {})",
            over.t_makespan(),
            staged.t_makespan()
        );
    }
}

/// Overlap keeps paying under fire: with a 5% drop plan and chunked
/// streaming, the async ARQ retransmits behind the source's encode work
/// instead of serialising after it, and the makespan gain over the
/// blocking schedule under the *same* plan stays above 1.05×.
#[test]
fn overlap_gain_survives_a_five_percent_drop_plan() {
    let n = 1000;
    let p = 16;
    let a = SparseRandom::new(n, n)
        .sparse_ratio(0.1)
        .seed(0xC0FFEE ^ n as u64)
        .generate();
    let part = RowBlock::new(n, n, p);
    let machine = || {
        Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
            .with_faults(FaultPlan::new(41).with_drop(0.05))
            .with_retry_policy(RetryPolicy::with_retries(16))
    };
    let chunked = SchemeConfig {
        chunk_elems: 4096,
        ..SchemeConfig::default()
    };
    let over_chunked = SchemeConfig {
        chunk_elems: 4096,
        ..SchemeConfig::overlapped()
    };

    for scheme in [SchemeKind::Ed, SchemeKind::Cfs] {
        let staged =
            run_scheme_with(scheme, &machine(), &a, &part, CompressKind::Crs, chunked).unwrap();
        let over = run_scheme_with(
            scheme,
            &machine(),
            &a,
            &part,
            CompressKind::Crs,
            over_chunked,
        )
        .unwrap();
        assert_eq!(
            over.locals, staged.locals,
            "{scheme}: overlap changed state"
        );
        let retries = |r: &SchemeRun| r.ledgers.iter().map(|l| l.faults().retries).sum::<u64>();
        assert!(retries(&over) > 0, "{scheme}: the drop plan never fired");
        assert_eq!(
            retries(&over),
            retries(&staged),
            "{scheme}: same plan, different fate sequence"
        );
        let gain = staged.t_makespan().as_micros() / over.t_makespan().as_micros();
        assert!(
            gain > 1.05,
            "{scheme}: overlap gain under faults fell to {gain:.3}×"
        );
    }
}
