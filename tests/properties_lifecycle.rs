//! Property-based tests over the lifecycle extensions: gather,
//! redistribution, multi-source distribution, balanced partitions,
//! checkpointing.

use proptest::prelude::*;
use sparsedist::core::gather::{gather_global, GatherStrategy};
use sparsedist::core::redistribute::{redistribute, RedistStrategy};
use sparsedist::core::schemes::multi::run_ed_multi_source;
use sparsedist::gen::checkpoint;
use sparsedist::prelude::*;

/// A small random sparse array (≤ 20×20, density ~1/5).
fn arb_dense() -> impl Strategy<Value = Dense2D> {
    (2usize..20, 2usize..20)
        .prop_flat_map(|(r, c)| {
            (
                Just(r),
                Just(c),
                proptest::collection::vec(
                    prop_oneof![4 => Just(0.0f64), 1 => 1.0f64..100.0],
                    r * c,
                ),
            )
        })
        .prop_map(|(r, c, data)| Dense2D::from_vec(r, c, data))
}

fn arb_partition(rows: usize, cols: usize) -> impl Strategy<Value = Box<dyn Partition>> {
    (1usize..5, 0usize..4).prop_map(move |(p, which)| -> Box<dyn Partition> {
        match which {
            0 => Box::new(RowBlock::new(rows, cols, p)),
            1 => Box::new(ColBlock::new(rows, cols, p)),
            2 => Box::new(RowCyclic::new(rows, cols, p)),
            _ => Box::new(Mesh2D::new(rows, cols, p, 2)),
        }
    })
}

fn machine(p: usize) -> Multicomputer {
    Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gather_is_left_inverse_of_distribution(
        (a, part) in arb_dense().prop_flat_map(|a| {
            let (r, c) = (a.rows(), a.cols());
            (Just(a), arb_partition(r, c))
        }),
        kind in prop_oneof![Just(CompressKind::Crs), Just(CompressKind::Ccs)],
        strategy in prop_oneof![
            Just(GatherStrategy::Dense),
            Just(GatherStrategy::Compressed),
            Just(GatherStrategy::Encoded),
        ],
    ) {
        let m = machine(part.nparts());
        let run = run_scheme(SchemeKind::Cfs, &m, &a, part.as_ref(), kind).unwrap();
        let g = gather_global(&m, &run.locals, part.as_ref(), kind, strategy).unwrap();
        prop_assert_eq!(g.global.to_dense(), a);
    }

    #[test]
    fn redistribution_commutes_with_distribution(
        (a, from, to) in arb_dense().prop_flat_map(|a| {
            let (r, c) = (a.rows(), a.cols());
            (Just(a), arb_partition(r, c), arb_partition(r, c))
        }),
        strategy in prop_oneof![Just(RedistStrategy::Direct), Just(RedistStrategy::ViaSource)],
    ) {
        // Equal processor counts are required for redistribution.
        prop_assume!(from.nparts() == to.nparts());
        let m = machine(from.nparts());
        let owned = run_scheme(SchemeKind::Ed, &m, &a, from.as_ref(), CompressKind::Crs).unwrap().locals;
        let re = redistribute(&m, &owned, from.as_ref(), to.as_ref(), CompressKind::Crs, strategy).unwrap();
        let direct = run_scheme(SchemeKind::Ed, &m, &a, to.as_ref(), CompressKind::Crs).unwrap().locals;
        prop_assert_eq!(re.locals, direct);
    }

    #[test]
    fn multi_source_is_source_count_invariant(
        (a, part) in arb_dense().prop_flat_map(|a| {
            let (r, c) = (a.rows(), a.cols());
            (Just(a), arb_partition(r, c))
        }),
        k in 1usize..5,
    ) {
        let p = part.nparts();
        prop_assume!(k <= p);
        let m = machine(p);
        let single = run_scheme(SchemeKind::Ed, &m, &a, part.as_ref(), CompressKind::Crs).unwrap();
        let multi = run_ed_multi_source(&m, &a, part.as_ref(), k).unwrap();
        prop_assert_eq!(multi.locals, single.locals);
    }

    #[test]
    fn balanced_partitions_never_lose_nonzeros(a in arb_dense(), p in 1usize..6) {
        let contiguous = BalancedRows::contiguous(&a, p);
        let packed = BalancedRows::bin_packed(&a, p);
        for part in [&contiguous, &packed] {
            let total: usize = part.nnz_profile(&a).per_part.iter().sum();
            prop_assert_eq!(total, a.nnz());
        }
        // Bin packing is never worse-balanced than ceil blocks.
        let worst = |per: &[usize]| per.iter().copied().max().unwrap_or(0);
        let block = RowBlock::new(a.rows(), a.cols(), p);
        prop_assert!(
            worst(&packed.nnz_profile(&a).per_part)
                <= worst(&block.nnz_profile(&a).per_part)
        );
    }

    #[test]
    fn checkpoint_round_trips(
        (a, part) in arb_dense().prop_flat_map(|a| {
            let (r, c) = (a.rows(), a.cols());
            (Just(a), arb_partition(r, c))
        }),
        case in 0u64..1_000_000,
    ) {
        let m = machine(part.nparts());
        let run = run_scheme(SchemeKind::Ed, &m, &a, part.as_ref(), CompressKind::Crs).unwrap();
        let dir = std::env::temp_dir()
            .join("sparsedist_prop_ckpt")
            .join(format!("case_{case}"));
        let _ = std::fs::remove_dir_all(&dir);
        checkpoint::save(&dir, &run.locals).unwrap();
        let back = checkpoint::load(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(back, run.locals);
    }
}

/// BalancedRows from the prelude needs the explicit import path check.
use sparsedist::core::partition::BalancedRows;
