//! The paper's future work, working: distribute 3-D and 4-D sparse arrays
//! via the Extended Karnaugh Map Representation.
//!
//! A 3-D array (think: a time series of sparse interaction matrices) is
//! flattened to its EKMR(3) plane, and the ED scheme distributes the plane
//! exactly as it would any 2-D sparse array.
//!
//! ```text
//! cargo run --example ekmr_multidim
//! ```

use sparsedist::ekmr::{distribute3, distribute4, Sparse3D, Sparse4D};
use sparsedist::prelude::*;

fn main() {
    // A 3-D sparse array: 8 × 32 × 6 with a scattered diagonal-ish pattern.
    let (n1, n2, n3) = (8, 32, 6);
    let mut a = Sparse3D::new(n1, n2, n3);
    for t in 0..96 {
        a.set(t % n1, (t * 5) % n2, (t * 7) % n3, 1.0 + t as f64);
    }
    println!(
        "3-D sparse array {}x{}x{}: nnz = {}, s = {:.4}",
        n1,
        n2,
        n3,
        a.nnz(),
        a.sparse_ratio()
    );

    let ekmr = a.to_ekmr();
    println!(
        "EKMR(3) plane: {}x{} (A[i][j][k] ↦ plane[j][k·n1+i])",
        ekmr.plane().rows(),
        ekmr.plane().cols()
    );

    // Distribute the plane by rows over 4 processors with each scheme.
    let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
    let part = RowBlock::new(ekmr.plane().rows(), ekmr.plane().cols(), 4);
    for scheme in SchemeKind::ALL {
        let run = distribute3(scheme, &machine, &a, &part, CompressKind::Crs).unwrap();
        println!(
            "  {:<4} dist {:>10}  comp {:>10}  ({} local nonzeros total)",
            scheme.label(),
            run.t_distribution().to_string(),
            run.t_compression().to_string(),
            run.total_nnz()
        );
        assert_eq!(run.reassemble(&part), *ekmr.plane());
    }

    // And a 4-D array over a mesh of processors.
    let mut b = Sparse4D::new(4, 6, 5, 8);
    for t in 0..64 {
        b.set(t % 4, t % 6, t % 5, t % 8, (t + 1) as f64);
    }
    let plane = b.to_ekmr();
    println!(
        "\n4-D sparse array 4x6x5x8 → EKMR(4) plane {}x{}, nnz = {}",
        plane.plane().rows(),
        plane.plane().cols(),
        b.nnz()
    );
    let part = Mesh2D::new(plane.plane().rows(), plane.plane().cols(), 2, 2);
    let run = distribute4(SchemeKind::Ed, &machine, &b, &part, CompressKind::Crs).unwrap();
    println!(
        "  ED over 2x2 mesh: dist {}  comp {}",
        run.t_distribution(),
        run.t_compression()
    );
    assert_eq!(run.reassemble(&part), *plane.plane());
    println!("  round trip verified: distributed state reassembles the EKMR plane");
}
