//! External-data pipeline: write a MatrixMarket file, read it back,
//! distribute it over a 2-D mesh of processors with the ED scheme, and
//! compute on the result — the workflow a Harwell–Boeing-style collection
//! user would run.
//!
//! ```text
//! cargo run --example matrixmarket_pipeline
//! ```

use sparsedist::core::compress::Coo;
use sparsedist::gen::matrixmarket;
use sparsedist::gen::patterns::banded;
use sparsedist::ops::spmv::{dense_spmv, distributed_spmv};
use sparsedist::prelude::*;

fn main() {
    // Stand-in for a collection matrix: a banded 96×96 system.
    let a = banded(96, 3);
    let path = std::env::temp_dir().join("sparsedist_example.mtx");
    matrixmarket::write_file(&path, &Coo::from_dense(&a)).expect("write .mtx");
    println!("wrote {} ({} nonzeros)", path.display(), a.nnz());

    // Read it back, as a downstream consumer would.
    let coo = matrixmarket::read_file(&path).expect("read .mtx");
    let b = coo.to_dense();
    assert_eq!(a, b);
    println!(
        "read back {}x{} with s = {:.4}",
        coo.rows(),
        coo.cols(),
        coo.sparse_ratio()
    );

    // Distribute over a 2×2 mesh with the ED scheme + CCS compression
    // (Case 3.3.3: receivers convert the travelling row indices).
    let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
    let part = Mesh2D::new(96, 96, 2, 2);
    let run = run_scheme(SchemeKind::Ed, &machine, &b, &part, CompressKind::Ccs).unwrap();
    println!(
        "ED over 2x2 mesh: T_Distribution {} T_Compression {}",
        run.t_distribution(),
        run.t_compression()
    );
    for (pid, local) in run.locals.iter().enumerate() {
        let (lr, lc) = local.shape();
        println!("  P{pid}: {lr}x{lc} local, {} nonzeros", local.nnz());
    }

    // Compute distributively and verify against the dense baseline.
    let x: Vec<f64> = (0..96).map(|i| (i % 7) as f64).collect();
    let y = distributed_spmv(&machine, &run, &part, &x).unwrap();
    let want = dense_spmv(&b, &x);
    let err = y
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("distributed SpMV max error vs dense: {err:.2e}");
    assert!(err < 1e-12);

    std::fs::remove_file(&path).ok();
}
