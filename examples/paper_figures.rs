//! Reproduce the paper's worked example end to end: Figures 1–7.
//!
//! Every figure in §3 of the paper is a state of the same 10×8 sparse
//! array `A` as it flows through the SFC, CFS and ED schemes with the row
//! partition over 4 processors. This binary prints each figure from the
//! real implementation (1-based indices, as the paper renders them).
//!
//! ```text
//! cargo run --example paper_figures
//! ```

use sparsedist::core::compress::{Ccs, CompressKind, Crs};
use sparsedist::core::dense::paper_array_a;
use sparsedist::core::encode::encode_part;
use sparsedist::core::opcount::OpCounter;
use sparsedist::prelude::*;

fn main() {
    let a = paper_array_a();
    let part = RowBlock::new(10, 8, 4);

    println!(
        "Figure 1: sparse array A ({}x{}, {} nonzeros)",
        a.rows(),
        a.cols(),
        a.nnz()
    );
    print!("{a}");

    println!("\nFigure 2: row partition over 4 processors");
    for pid in 0..4 {
        let (r0, _) = part.to_global(pid, 0, 0);
        let (lr, lc) = part.local_shape(pid);
        println!("  P{pid}: global rows {}..{} ({lr}x{lc})", r0 + 1, r0 + lr);
    }

    println!("\nFigure 3: local sparse arrays received by each processor (SFC)");
    for pid in 0..4 {
        println!("  P{pid}:");
        let local = part.extract_dense(&a, pid);
        for line in local.to_string().lines() {
            println!("    {line}");
        }
    }

    println!("\nFigure 4: CRS compression of each local array");
    for pid in 0..4 {
        let local = part.extract_dense(&a, pid);
        let crs = Crs::from_dense(&local, &mut OpCounter::new());
        println!(
            "  P{pid}: RO {:?}  CO {:?}  VL {:?}",
            crs.ro_paper(),
            crs.co_paper(),
            crs.vl()
        );
    }

    println!("\nFigure 5: CFS with row partition + CCS (global indices at the source)");
    for pid in 0..4 {
        let ccs = Ccs::from_part_global(&a, &part, pid, &mut OpCounter::new());
        println!(
            "  P{pid} packed: RO {:?}  CO {:?} (global rows)  VL {:?}",
            ccs.cp_paper(),
            ccs.ri_paper(),
            ccs.vl()
        );
    }
    println!("  After unpacking, P1 subtracts 3 from each CO value (Case 3.2.2):");
    let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
    let run = run_scheme(SchemeKind::Cfs, &machine, &a, &part, CompressKind::Ccs).unwrap();
    let p1 = run.locals[1].as_ccs();
    println!(
        "  P1 local:  RO {:?}  CO {:?} (local rows)   VL {:?}",
        p1.cp_paper(),
        p1.ri_paper(),
        p1.vl()
    );

    println!("\nFigure 6/7: ED special buffers B (row partition, CCS format)");
    for pid in 0..4 {
        let buf = encode_part(&a, &part, pid, CompressKind::Ccs, &mut OpCounter::new());
        let mut cursor = buf.cursor();
        let mut rendered = Vec::new();
        for _ in 0..8 {
            let r = cursor.read_u64();
            rendered.push(format!("R={r}"));
            for _ in 0..r {
                let c = cursor.read_u64() + 1; // 1-based like the paper
                let v = cursor.read_f64();
                rendered.push(format!("(C={c},V={v})"));
            }
        }
        println!("  P{pid} B: {}", rendered.join(" "));
    }

    println!("\nFigure 7(d): P1 decodes its buffer (Case 3.3.2, subtract 3)");
    let run = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Ccs).unwrap();
    let p1 = run.locals[1].as_ccs();
    println!(
        "  P1: RO {:?}  CO {:?}  VL {:?}",
        p1.cp_paper(),
        p1.ri_paper(),
        p1.vl()
    );

    // Sanity: every scheme reconstructs A exactly.
    for scheme in SchemeKind::ALL {
        let run = run_scheme(scheme, &machine, &a, &part, CompressKind::Crs).unwrap();
        assert_eq!(run.reassemble(&part), a);
    }
    println!("\nAll schemes reassemble the original array exactly.");
}
