//! Finite-element-style workload: distribute a 5-point Laplacian system
//! and run Jacobi iterations on the distributed compressed arrays.
//!
//! The paper's introduction motivates sparse distribution with
//! finite-element methods and climate modeling; this example is that
//! pipeline end to end: build the `k² × k²` Poisson matrix, pick the
//! scheme with the cheapest setup, distribute, then solve `A·x = b` with
//! the library's Jacobi and conjugate-gradient solvers, whose matrix-
//! vector products all run on the distributed compressed arrays.
//!
//! ```text
//! cargo run --release --example stencil_jacobi
//! ```

use sparsedist::gen::patterns::five_point_laplacian;
use sparsedist::ops::solve::{conjugate_gradient, jacobi, Stop};
use sparsedist::prelude::*;

fn main() {
    let k = 24; // 24×24 grid → 576×576 system
    let a = five_point_laplacian(k);
    let n = a.rows();
    println!(
        "5-point Laplacian on a {k}x{k} grid: {n}x{n} system, nnz = {}, s = {:.4}",
        a.nnz(),
        a.sparse_ratio()
    );

    let p = 4;
    let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
    let part = RowBlock::new(n, n, p);

    // Setup-cost shootout: which scheme gets the matrix onto the machine
    // fastest? (At s ≈ 0.0085 the compressed schemes win by a mile.)
    println!("\nsetup cost (distribution + compression):");
    let mut best = (SchemeKind::Sfc, f64::INFINITY);
    for scheme in SchemeKind::ALL {
        let run = run_scheme(scheme, &machine, &a, &part, CompressKind::Crs).unwrap();
        let total = run.t_total().as_millis();
        println!("  {:<4} {:>10.3} ms", scheme.label(), total);
        if total < best.1 {
            best = (scheme, total);
        }
    }
    println!("  → {} wins setup at this sparsity", best.0.label());

    // Distribute with the winner and solve A·x = b two ways: Jacobi and
    // conjugate gradient, both driving the distributed SpMV.
    let run = run_scheme(best.0, &machine, &a, &part, CompressKind::Crs).unwrap();
    let b = vec![1.0; n];
    let diag: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();

    let ja = jacobi(&machine, &run, &part, &diag, &b, 1e-6, 10_000).unwrap();
    println!(
        "\nJacobi:             {:?}, residual {:.2e}",
        ja.stop, ja.residual
    );
    let cg = conjugate_gradient(&machine, &run, &part, &b, 1e-10, 1_000).unwrap();
    println!(
        "conjugate gradient: {:?}, residual {:.2e}",
        cg.stop, cg.residual
    );

    // CG should crush Jacobi on iteration count for this SPD system.
    let (Stop::Converged(ji), Stop::Converged(ci)) = (ja.stop, cg.stop) else {
        panic!("both solvers should converge");
    };
    println!("iteration ratio: Jacobi {} vs CG {}", ji, ci);
    assert!(ci < ji);

    // Spot-check CG's answer against a direct dense residual.
    let y = sparsedist::ops::spmv::dense_spmv(&a, &cg.x);
    let err = y
        .iter()
        .zip(&b)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("dense-verified residual: {err:.2e}");
    assert!(err < 1e-6);
}
