//! Quickstart: distribute a sparse array with each of the three schemes
//! and compare where the time goes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sparsedist::gen::SparseRandom;
use sparsedist::prelude::*;

fn main() {
    // A 400×400 sparse array with the paper's sparse ratio of 0.1.
    let n = 400;
    let a = SparseRandom::new(n, n).sparse_ratio(0.1).seed(7).generate();
    println!(
        "global array: {n}x{n}, nnz = {}, s = {:.3}",
        a.nnz(),
        a.sparse_ratio()
    );

    // Four simulated processors with the paper's IBM SP2-calibrated costs.
    let p = 4;
    let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
    let part = RowBlock::new(n, n, p);

    println!("\nrow partition, CRS compression, p = {p}:");
    println!(
        "{:<8}{:>18}{:>18}{:>14}",
        "scheme", "T_Distribution", "T_Compression", "total"
    );
    for scheme in SchemeKind::ALL {
        let run = run_scheme(scheme, &machine, &a, &part, CompressKind::Crs).unwrap();
        // Every scheme must leave identical distributed state behind.
        assert_eq!(run.reassemble(&part), a);
        println!(
            "{:<8}{:>18}{:>18}{:>14}",
            scheme.label(),
            run.t_distribution().to_string(),
            run.t_compression().to_string(),
            run.t_total().to_string()
        );
    }

    // The analytic model predicts the same numbers without running anything.
    let inp = CostInput::uniform(n, p, 0.1);
    let pred = predict(
        SchemeKind::Ed,
        PartitionMethod::Row,
        CompressKind::Crs,
        &inp,
        &MachineModel::ibm_sp2(),
    );
    println!(
        "\nclosed-form prediction for ED: dist {} comp {}",
        pred.t_distribution, pred.t_compression
    );

    // After distribution, compute on the compressed local arrays.
    let run = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Crs).unwrap();
    let x = vec![1.0; n];
    let y = sparsedist::ops::spmv::distributed_spmv(&machine, &run, &part, &x).unwrap();
    let row_sums: f64 = y.iter().sum();
    println!("distributed SpMV: sum(A·1) = {row_sums:.3}");
}
