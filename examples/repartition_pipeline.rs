//! The full data lifecycle on the simulated multicomputer:
//!
//! 1. distribute a sparse system row-wise with the ED scheme (fast setup),
//! 2. compute on it (distributed SpMV),
//! 3. **redistribute** to a 2-D mesh for a mesh-favouring phase,
//! 4. compute again,
//! 5. **gather** the array back to the source with the encoded strategy.
//!
//! ```text
//! cargo run --release --example repartition_pipeline
//! ```

use sparsedist::core::gather::{gather_global, GatherStrategy};
use sparsedist::core::redistribute::{redistribute, RedistStrategy};
use sparsedist::gen::SparseRandom;
use sparsedist::ops::spmv::{dense_spmv, distributed_spmv};
use sparsedist::prelude::*;

fn main() {
    let n = 240;
    let p = 16;
    let a = SparseRandom::new(n, n)
        .sparse_ratio(0.1)
        .seed(42)
        .generate();
    let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
    println!("{n}x{n} sparse array, nnz = {}, {p} processors\n", a.nnz());

    // 1. Distribute row-wise with ED.
    let rows = RowBlock::new(n, n, p);
    let dist = run_scheme(SchemeKind::Ed, &machine, &a, &rows, CompressKind::Crs).unwrap();
    println!(
        "1. ED distribution (row):      dist {} comp {}",
        dist.t_distribution(),
        dist.t_compression()
    );

    // 2. Compute under the row partition.
    let x = vec![1.0; n];
    let y1 = distributed_spmv(&machine, &dist, &rows, &x).unwrap();
    println!(
        "2. distributed SpMV:           checksum {:.3}",
        y1.iter().sum::<f64>()
    );

    // 3. Redistribute to a 4×4 mesh without touching the source.
    let mesh = Mesh2D::new(n, n, 4, 4);
    let redist = redistribute(
        &machine,
        &dist.locals,
        &rows,
        &mesh,
        CompressKind::Crs,
        RedistStrategy::Direct,
    )
    .unwrap();
    println!(
        "3. redistribution row→mesh:    busy max {}",
        redist.t_total()
    );

    // 4. Compute under the mesh partition; the answer must not change.
    let fake_run = SchemeRun {
        scheme: SchemeKind::Ed,
        compress_kind: CompressKind::Crs,
        source: 0,
        ledgers: redist.ledgers.clone(),
        locals: redist.locals.clone(),
        owners: (0..p).collect(),
    };
    let y2 = distributed_spmv(&machine, &fake_run, &mesh, &x).unwrap();
    let drift = y1
        .iter()
        .zip(&y2)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("4. SpMV after repartition:     max drift {drift:.2e}");
    assert!(drift < 1e-12);

    // 5. Gather back to the source with the encoded (ED-mirror) strategy.
    let g = gather_global(
        &machine,
        &redist.locals,
        &mesh,
        CompressKind::Crs,
        GatherStrategy::Encoded,
    )
    .unwrap();
    println!("5. encoded gather to source:   busy {}", g.t_gather());
    assert_eq!(g.global.to_dense(), a);
    println!("\nround trip verified: gathered array equals the original");

    // Cross-check the computation against a dense baseline.
    let want = dense_spmv(&a, &x);
    let err = y2
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("dense-verified SpMV error: {err:.2e}");
}
