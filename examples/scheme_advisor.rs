//! Scheme advisor: use the paper's analytic model to pick a distribution
//! scheme for *your* machine and workload, then verify the pick by
//! simulation.
//!
//! Sweeps the sparse ratio and the network/CPU cost ratio, prints which
//! scheme the closed forms of Tables 1–2 recommend at every point, and
//! confirms the recommendation against instrumented runs on a sample of
//! the grid — the Remark 5 crossover made visible.
//!
//! ```text
//! cargo run --release --example scheme_advisor
//! ```

use sparsedist::gen::SparseRandom;
use sparsedist::prelude::*;

fn recommend(inp: &CostInput, m: &MachineModel) -> SchemeKind {
    SchemeKind::ALL
        .into_iter()
        .min_by(|&x, &y| {
            let cx = predict(x, PartitionMethod::Row, CompressKind::Crs, inp, m).t_total();
            let cy = predict(y, PartitionMethod::Row, CompressKind::Crs, inp, m).t_total();
            cx.partial_cmp(&cy).expect("costs are finite")
        })
        .expect("three candidate schemes")
}

fn main() {
    let n = 400;
    let p = 4;
    let ratios = [0.25, 0.5, 1.0, 1.2, 1.625, 2.0, 4.0];
    let sparsities = [0.01, 0.05, 0.1, 0.2, 0.3, 0.4];

    println!("Best scheme by analytic model (row partition, CRS, n={n}, p={p}):");
    print!("{:>8}", "s \\ r");
    for r in ratios {
        print!("{r:>8}");
    }
    println!();
    for s in sparsities {
        print!("{s:>8}");
        for r in ratios {
            let m = MachineModel::new(40.0, 0.1 * r, 0.1);
            let inp = CostInput::uniform(n, p, s);
            print!("{:>8}", recommend(&inp, &m).label());
        }
        println!();
    }

    // Verify the analytic winner against simulation on a grid sample.
    println!("\nverifying against instrumented simulation:");
    let mut checked = 0;
    let mut agreed = 0;
    for &s in &sparsities {
        for &r in &[0.25, 1.2, 4.0] {
            let m = MachineModel::new(40.0, 0.1 * r, 0.1);
            let a = SparseRandom::new(n, n).sparse_ratio(s).seed(99).generate();
            let part = RowBlock::new(n, n, p);
            let machine = Multicomputer::virtual_machine(p, m);
            let measured_best = SchemeKind::ALL
                .into_iter()
                .min_by(|&x, &y| {
                    let cx = run_scheme(x, &machine, &a, &part, CompressKind::Crs)
                        .unwrap()
                        .t_total();
                    let cy = run_scheme(y, &machine, &a, &part, CompressKind::Crs)
                        .unwrap()
                        .t_total();
                    cx.partial_cmp(&cy).expect("finite")
                })
                .expect("three schemes");
            let predicted_best = recommend(&CostInput::uniform(n, p, s), &m);
            checked += 1;
            if measured_best == predicted_best {
                agreed += 1;
            } else {
                println!(
                    "  s={s} ratio={r}: model says {} but simulation says {}",
                    predicted_best.label(),
                    measured_best.label()
                );
            }
        }
    }
    println!("  model and simulation agree on {agreed}/{checked} grid points");
}
