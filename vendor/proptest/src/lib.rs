//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps the same macro/trait surface — `proptest!`,
//! `Strategy` with `prop_map`/`prop_flat_map`, `Just`, range and tuple
//! strategies, `prop_oneof!`, `proptest::collection::vec`, and the
//! `prop_assert*`/`prop_assume!` macros — backed by deterministic seeded
//! random sampling. Failing inputs are not shrunk; the panic message
//! carries the test name and case index so a failure is reproducible by
//! rerunning the (deterministic) test.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of fixed length `len`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The commonly imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Assert inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Weighted or unweighted choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($w0:expr => $s0:expr $(, $w:expr => $s:expr)* $(,)?) => {
        $crate::strategy::Union::of($w0 as u32, $s0)
            $(.or($w as u32, $s))*
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)` body
/// runs for `ProptestConfig::cases` deterministically sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items!(($cfg) $($items)*);
    };
    ($($items:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default())
            $($items)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__cfg.cases {
                let __run_one = |__rng: &mut $crate::test_runner::TestRng| {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::sample(&($strat), __rng);
                    )+
                    $body
                };
                __run_one(&mut __rng);
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn sampling_is_deterministic_per_name() {
        let strat = (1usize..10, -1.0f64..1.0);
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..32 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let strat = prop_oneof![4 => Just(0u8), 1 => Just(1u8)];
        let mut rng = TestRng::for_test("weights");
        let ones: usize = (0..5000).map(|_| strat.sample(&mut rng) as usize).sum();
        // Expect ~1000 ones out of 5000; allow a generous band.
        assert!((500..1500).contains(&ones), "ones = {ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_tests((a, b) in (1usize..5, 5usize..9), v in
            crate::collection::vec(0.0f64..1.0, 7)) {
            prop_assume!(a != 100);
            prop_assert!(a < b);
            prop_assert_eq!(v.len(), 7);
        }
    }
}
