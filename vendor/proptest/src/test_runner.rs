//! Runner configuration and the deterministic RNG behind sampling.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::ops::Range;

/// How many cases each property runs (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG: seeded from the test's name so every run
/// of the suite explores the identical input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG whose stream is fixed by `test_name`.
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-spread seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.random_range(0..bound)
    }

    /// Uniform draw from a `usize` range.
    pub fn range_usize(&mut self, r: Range<usize>) -> usize {
        self.inner.random_range(r)
    }

    /// Uniform draw from a `u64` range.
    pub fn range_u64(&mut self, r: Range<u64>) -> u64 {
        self.inner.random_range(r)
    }

    /// Uniform draw from an `f64` range.
    pub fn range_f64(&mut self, r: Range<f64>) -> f64 {
        self.inner.random_range(r)
    }

    /// Raw 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
