//! Value-generation strategies: the sampled counterpart of proptest's
//! `Strategy` tree (no shrinking).

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for producing arbitrary values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Weighted choice between boxed strategies; built by `prop_oneof!`.
///
/// Construction is a chain (`Union::of(w, s).or(w2, s2)...`) rather than a
/// `Vec` literal so the first arm pins `T` for type inference before any
/// `Box<dyn Strategy>` coercion happens.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Start a union with its first weighted arm.
    pub fn of<S: Strategy<Value = T> + 'static>(weight: u32, strat: S) -> Self {
        Union {
            arms: vec![(weight, Box::new(strat))],
            total: weight as u64,
        }
    }

    /// Add a further weighted arm.
    pub fn or<S: Strategy<Value = T> + 'static>(mut self, weight: u32, strat: S) -> Self {
        self.arms.push((weight, Box::new(strat)));
        self.total += weight as u64;
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(
            self.total > 0,
            "prop_oneof! needs at least one positive weight"
        );
        let mut roll = rng.below(self.total);
        for (w, strat) in &self.arms {
            if roll < *w as u64 {
                return strat.sample(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("roll exceeded total weight")
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.range_usize(self.clone())
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.range_u64(self.clone())
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut TestRng) -> u32 {
        rng.range_u64(self.start as u64..self.end as u64) as u32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.range_f64(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
