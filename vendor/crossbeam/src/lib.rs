//! Offline stand-in for the subset of `crossbeam` used by this workspace.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim exposes `crossbeam::channel::{unbounded, Sender,
//! Receiver}` with the same semantics (MPSC is all the engine needs: every
//! channel here has exactly one logical producer per edge) implemented over
//! `std::sync::mpsc`.

/// Multi-producer channels with the `crossbeam-channel` surface.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with no message.
        Timeout,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `msg`, failing only if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Drain into an iterator, blocking between messages until senders
        /// disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_clone() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn try_recv_empty_then_disconnected() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
