//! Offline stand-in for the subset of `rand` used by this workspace.
//!
//! Deterministic seeded generation is all the workload generators need:
//! `StdRng::seed_from_u64`, `random_range` over integer and float ranges,
//! and `random::<f64>()`. The generator is xoshiro256++ seeded through
//! splitmix64 — the standard construction — so streams are high quality
//! and stable across platforms and releases of this shim.

use std::ops::{Range, RangeInclusive};

/// Core RNG trait: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from small seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// A uniform sample of `T` over its natural domain (`f64` in `[0,1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// Types that can be drawn uniformly over a natural domain.
pub trait Standard {
    /// Draw one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draw one sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the multiply-shift map exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return ((v as u128 * bound as u128) >> 64) as u64;
        }
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        self.start + uniform_below(rng, span) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo) as u64 + 1;
        if span == 0 {
            // Full usize domain on 64-bit targets.
            return rng.next_u64() as usize;
        }
        lo + uniform_below(rng, span) as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_below(rng, self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.random_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
            let u = rng.random::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
