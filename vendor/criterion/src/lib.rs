//! Offline stand-in for the subset of `criterion` used by this workspace.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps the bench sources compiling and runnable: each
//! `bench_function`/`bench_with_input` does a short warm-up, then a fixed
//! measurement window, and prints mean time per iteration (plus element
//! throughput when set). No statistics, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("crs_from_dense", 200)` → `crs_from_dense/200`.
    pub fn new<S: Into<String>, P: fmt::Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Bare parameter-only id (`from_parameter`).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Work-per-iteration declaration used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// True when the binary was invoked as `bench -- --test` (real criterion's
/// smoke mode): run every routine exactly once with no warm-up, so CI can
/// check the benches still execute without paying the measurement windows.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Filled in by `iter`: (total elapsed, iterations).
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine`, first warming up, then measuring for the window.
    /// Under `--test` the routine runs once, untimed-in-spirit (a single
    /// measured iteration), so smoke runs finish in milliseconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if test_mode() {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.measured = Some((start.elapsed(), 1));
            return;
        }
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let deadline = start + self.measurement;
        let mut iters: u64 = 0;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

/// A named set of related benchmarks sharing loop settings.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim's loop is time-bounded.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declare per-iteration work for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            measured: None,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            measured: None,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        match b.measured {
            Some((elapsed, iters)) if iters > 0 => {
                let per = elapsed.as_secs_f64() / iters as f64;
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) => {
                        format!("  {:.3e} elem/s", n as f64 / per)
                    }
                    Some(Throughput::Bytes(n)) => {
                        format!("  {:.3e} B/s", n as f64 / per)
                    }
                    None => String::new(),
                };
                println!(
                    "{}/{}: {:>12.3} us/iter ({} iters){}",
                    self.name,
                    id,
                    per * 1e6,
                    iters,
                    rate
                );
            }
            _ => println!("{}/{}: no measurement", self.name, id),
        }
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(300),
            throughput: None,
        }
    }
}

/// Group benchmark functions under one callable symbol.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        g.bench_function("trivial", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
