//! The pluggable codec stack: one [`Codec`] per wire format.
//!
//! Schemes no longer know byte layouts. They collect the logical streams
//! of a message — a monotone pointer, sorted per-segment index runs,
//! values — and hand them to the [`Codec`] their [`WirePolicy`] selects:
//!
//! 1. [`Codec::plan`] chooses the message's negotiation byte `desc` from
//!    what the sender already knows (index bound, the streams themselves,
//!    and for v3's `auto` mode the α-β [`MachineModel`]);
//! 2. [`Codec::begin_message`] writes the self-describing header;
//! 3. `encode_indices`/`encode_values` (columnar triples, CFS) or
//!    `encode_pairs` (count-prefixed segments, ED) lay down the payload.
//!
//! The receiver calls [`Codec::open_message`] on the configured format,
//! which validates the header and returns a [`MsgHead`] naming the codec
//! that actually produced the stream — this is where mixed-version
//! negotiation lands: a v3-configured receiver accepts a v2 stream by
//! getting back the v2 codec, while a v2 receiver rejects v3 magic with a
//! typed [`CompressError::WireHeader`].
//!
//! Invariants every codec upholds:
//!
//! * **Byte identity for v1/v2**: the streams [`V1Raw`] and [`V2Delta`]
//!   produce are bit-identical to the pre-refactor layouts (goldens and
//!   fault corpora keep validating).
//! * **Element transparency**: a message's [`PackBuffer::elem_count`] is
//!   the same under every codec, so `T_Data` and every other virtual-time
//!   charge is format-independent. Codecs move bytes, never ops.
//! * **No panics on malformed input**: decode paths return typed errors
//!   and bound every allocation by what the buffer can actually hold.

use super::v3::V3Packed;
use super::varint::{IndexRunReader, IndexRunWriter};
use super::{
    effective_format, negotiate, read_count, read_header, read_monotone_run, write_header,
    UnpackedTriple, WireFormat, FLAG_DELTA,
};
use crate::compress::CompressError;
use crate::error::SparsedistError;
use sparsedist_multicomputer::pack::{PackBuffer, UnpackCursor, UnpackError};
use sparsedist_multicomputer::MachineModel;

/// Which v3 index/value encodings a scheme run lets the sender use.
///
/// v1 and v2 have exactly one layout each, so the choice only matters
/// under [`WireFormat::V3`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CodecChoice {
    /// Price each stream's candidates against the α-β model and take the
    /// cheapest — the Remark-5 crossover as a per-message runtime
    /// decision.
    Auto,
    /// Raw `u64` indices and raw `f64` values (v1's layout behind a v3
    /// header).
    Raw,
    /// v2's delta-varint index runs, raw values.
    Delta,
    /// Bit-packed index runs and byte-transposed value planes — the
    /// maximum-shrink layout.
    #[default]
    Packed,
}

impl CodecChoice {
    /// Lower-case label for CLI and table output.
    pub fn label(self) -> &'static str {
        match self {
            CodecChoice::Auto => "auto",
            CodecChoice::Raw => "raw",
            CodecChoice::Delta => "delta",
            CodecChoice::Packed => "packed",
        }
    }
}

impl std::fmt::Display for CodecChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything a sender needs to put a message on the wire: the format,
/// the codec choice within it, and the machine model that prices the
/// `auto` negotiation.
#[derive(Debug, Clone, Copy)]
pub struct WirePolicy {
    /// The wire format this side speaks.
    pub format: WireFormat,
    /// The v3 codec selection mode.
    pub choice: CodecChoice,
    /// α-β coefficients for the cost-model negotiator.
    pub model: MachineModel,
}

impl WirePolicy {
    /// A policy for `format` with the default codec choice and the
    /// paper's IBM SP2 coefficients.
    pub fn of(format: WireFormat) -> Self {
        WirePolicy {
            format,
            choice: CodecChoice::default(),
            model: MachineModel::ibm_sp2(),
        }
    }

    /// A fully explicit policy.
    pub fn new(format: WireFormat, choice: CodecChoice, model: MachineModel) -> Self {
        WirePolicy {
            format,
            choice,
            model,
        }
    }

    /// The policy this sender uses towards a peer that speaks at most
    /// `peer_max`: same choices, format capped to what the peer decodes.
    pub fn capped(self, peer_max: WireFormat) -> Self {
        WirePolicy {
            format: effective_format(self.format, peer_max),
            ..self
        }
    }
}

impl Default for WirePolicy {
    fn default() -> Self {
        WirePolicy::of(WireFormat::default())
    }
}

/// A validated message header: the negotiation byte and the codec that
/// wrote the stream (which, under mixed-version negotiation, may be an
/// older format than the receiver's configured one).
pub struct MsgHead {
    /// The negotiation byte (v2 flags, or the v3 descriptor).
    pub desc: u8,
    /// The codec whose decode functions understand the payload.
    pub codec: &'static dyn Codec,
}

/// One wire format's byte layout, over arena-backed [`PackBuffer`]s.
///
/// The index side always travels as a `(pointer, indices)` pair: the
/// monotone CRS/CCS pointer (segment boundaries) and the per-segment
/// sorted index runs. `encode_pairs`/`decode_pairs` carry the same
/// logical content in the ED schemes' count-prefixed segment layout
/// (`pointer.len() - 1` count fields instead of `pointer.len()` pointer
/// entries, preserving the ED element count of `segments + 2·nnz`).
pub trait Codec: Sync {
    /// The format this codec implements.
    fn format(&self) -> WireFormat;

    /// Choose the message's negotiation byte. `index_bound` is the
    /// exclusive bound on travelling indices (the global inner
    /// dimension); the streams let v3's `auto` mode price candidate
    /// encodings exactly.
    fn plan(
        &self,
        index_bound: usize,
        pointer: &[usize],
        indices: &[usize],
        values: &[f64],
        policy: &WirePolicy,
    ) -> u8;

    /// Write the self-describing header (nothing for v1). Framing bytes
    /// only: the buffer's element count is unchanged.
    fn begin_message(&self, buf: &mut PackBuffer, desc: u8);

    /// Validate the header and name the codec that wrote the stream.
    fn open_message(&self, cursor: &mut UnpackCursor<'_>) -> Result<MsgHead, CompressError>;

    /// Append the pointer and per-segment index runs.
    fn encode_indices(&self, buf: &mut PackBuffer, pointer: &[usize], indices: &[usize], desc: u8);

    /// Read back a `(pointer, indices)` pair for `nsegments` segments.
    fn decode_indices(
        &self,
        cursor: &mut UnpackCursor<'_>,
        nsegments: usize,
        desc: u8,
    ) -> Result<(Vec<usize>, Vec<usize>), SparsedistError>;

    /// Append the value stream.
    fn encode_values(&self, buf: &mut PackBuffer, values: &[f64], desc: u8);

    /// Read back `n` values.
    fn decode_values(
        &self,
        cursor: &mut UnpackCursor<'_>,
        n: usize,
        desc: u8,
    ) -> Result<Vec<f64>, SparsedistError>;

    /// Append the ED segment layout: per segment a count field, then the
    /// segment's `(index, value)` content.
    fn encode_pairs(
        &self,
        buf: &mut PackBuffer,
        pointer: &[usize],
        indices: &[usize],
        values: &[f64],
        desc: u8,
    );

    /// Read back a message written by [`Codec::encode_pairs`] for
    /// `nsegments` segments, as an `(pointer, indices, values)` triple.
    fn decode_pairs(
        &self,
        cursor: &mut UnpackCursor<'_>,
        nsegments: usize,
        desc: u8,
    ) -> Result<UnpackedTriple, SparsedistError>;
}

/// The v1 codec: raw little-endian `u64`/`f64` fields, no header —
/// byte-identical to the seed repo's streams.
pub struct V1Raw;

/// The v2 codec: 3-byte header, negotiated `IDX32`/`DELTA` index
/// encodings, raw values — byte-identical to the pre-refactor v2.
pub struct V2Delta;

/// The singleton codec instances [`codec_for`] hands out.
pub static V1_RAW: V1Raw = V1Raw;
/// See [`V1_RAW`].
pub static V2_DELTA: V2Delta = V2Delta;
/// See [`V1_RAW`].
pub static V3_PACKED: V3Packed = V3Packed;

/// The codec implementing `format`.
pub fn codec_for(format: WireFormat) -> &'static dyn Codec {
    match format {
        WireFormat::V1 => &V1_RAW,
        WireFormat::V2 => &V2_DELTA,
        WireFormat::V3 => &V3_PACKED,
    }
}

fn oob(cursor: &UnpackCursor<'_>) -> UnpackError {
    UnpackError {
        at: cursor.position(),
        remaining: cursor.remaining(),
    }
}

/// Reject an element count whose minimal encoding cannot fit the bytes
/// left, before allocating for it. `min_bytes_per` is the smallest
/// possible wire footprint of one element under the active encoding.
pub(super) fn guard_count(
    cursor: &UnpackCursor<'_>,
    n: usize,
    min_bytes_per: usize,
) -> Result<(), UnpackError> {
    match n.checked_mul(min_bytes_per) {
        Some(need) if need <= cursor.remaining() => Ok(()),
        _ => Err(oob(cursor)),
    }
}

impl Codec for V1Raw {
    fn format(&self) -> WireFormat {
        WireFormat::V1
    }

    fn plan(&self, _: usize, _: &[usize], _: &[usize], _: &[f64], _: &WirePolicy) -> u8 {
        0
    }

    fn begin_message(&self, _buf: &mut PackBuffer, _desc: u8) {}

    fn open_message(&self, _cursor: &mut UnpackCursor<'_>) -> Result<MsgHead, CompressError> {
        Ok(MsgHead {
            desc: 0,
            codec: &V1_RAW,
        })
    }

    fn encode_indices(
        &self,
        buf: &mut PackBuffer,
        pointer: &[usize],
        indices: &[usize],
        _desc: u8,
    ) {
        buf.push_usize_slice(pointer);
        buf.push_usize_slice(indices);
    }

    fn decode_indices(
        &self,
        cursor: &mut UnpackCursor<'_>,
        nsegments: usize,
        _desc: u8,
    ) -> Result<(Vec<usize>, Vec<usize>), SparsedistError> {
        let pointer = cursor.try_read_usize_vec(nsegments + 1)?;
        let nnz = pointer.last().copied().unwrap_or(0);
        guard_count(cursor, nnz, 8)?;
        let indices = cursor.try_read_usize_vec(nnz)?;
        Ok((pointer, indices))
    }

    fn encode_values(&self, buf: &mut PackBuffer, values: &[f64], _desc: u8) {
        buf.push_f64_slice(values);
    }

    fn decode_values(
        &self,
        cursor: &mut UnpackCursor<'_>,
        n: usize,
        _desc: u8,
    ) -> Result<Vec<f64>, SparsedistError> {
        guard_count(cursor, n, 8)?;
        Ok(cursor.try_read_f64_vec(n)?)
    }

    fn encode_pairs(
        &self,
        buf: &mut PackBuffer,
        pointer: &[usize],
        indices: &[usize],
        values: &[f64],
        _desc: u8,
    ) {
        for seg in 0..pointer.len().saturating_sub(1) {
            buf.push_u64((pointer[seg + 1] - pointer[seg]) as u64);
            for k in pointer[seg]..pointer[seg + 1] {
                buf.push_u64(indices[k] as u64);
                buf.push_f64(values[k]);
            }
        }
    }

    fn decode_pairs(
        &self,
        cursor: &mut UnpackCursor<'_>,
        nsegments: usize,
        _desc: u8,
    ) -> Result<UnpackedTriple, SparsedistError> {
        decode_counted_pairs(cursor, nsegments, 0)
    }
}

impl Codec for V2Delta {
    fn format(&self) -> WireFormat {
        WireFormat::V2
    }

    fn plan(
        &self,
        index_bound: usize,
        pointer: &[usize],
        _indices: &[usize],
        _values: &[f64],
        _policy: &WirePolicy,
    ) -> u8 {
        let total = pointer.last().copied().unwrap_or(0);
        negotiate(index_bound.max(total))
    }

    fn begin_message(&self, buf: &mut PackBuffer, desc: u8) {
        write_header(buf, desc);
    }

    fn open_message(&self, cursor: &mut UnpackCursor<'_>) -> Result<MsgHead, CompressError> {
        let flags = read_header(cursor)?;
        Ok(MsgHead {
            desc: flags,
            codec: &V2_DELTA,
        })
    }

    fn encode_indices(&self, buf: &mut PackBuffer, pointer: &[usize], indices: &[usize], desc: u8) {
        super::push_monotone_run(buf, pointer, desc);
        let mut run = IndexRunWriter::new(desc);
        for seg in 0..pointer.len().saturating_sub(1) {
            run.reset();
            for &idx in &indices[pointer[seg]..pointer[seg + 1]] {
                run.push(buf, idx);
            }
        }
    }

    fn decode_indices(
        &self,
        cursor: &mut UnpackCursor<'_>,
        nsegments: usize,
        desc: u8,
    ) -> Result<(Vec<usize>, Vec<usize>), SparsedistError> {
        let pointer = read_monotone_run(cursor, nsegments + 1, desc)?;
        let nnz = pointer.last().copied().unwrap_or(0);
        // Delta varints cost ≥ 1 byte per index; fixed widths cost 4 or 8.
        let min_per = if desc & FLAG_DELTA != 0 {
            1
        } else if desc & super::FLAG_IDX32 != 0 {
            4
        } else {
            8
        };
        guard_count(cursor, nnz, min_per)?;
        let mut indices = Vec::with_capacity(nnz);
        let mut run = IndexRunReader::new(desc);
        for seg in 0..nsegments {
            run.reset();
            for _ in pointer[seg]..pointer[seg + 1] {
                indices.push(run.next(cursor)?);
            }
        }
        Ok((pointer, indices))
    }

    fn encode_values(&self, buf: &mut PackBuffer, values: &[f64], _desc: u8) {
        buf.push_f64_slice(values);
    }

    fn decode_values(
        &self,
        cursor: &mut UnpackCursor<'_>,
        n: usize,
        _desc: u8,
    ) -> Result<Vec<f64>, SparsedistError> {
        guard_count(cursor, n, 8)?;
        Ok(cursor.try_read_f64_vec(n)?)
    }

    fn encode_pairs(
        &self,
        buf: &mut PackBuffer,
        pointer: &[usize],
        indices: &[usize],
        values: &[f64],
        desc: u8,
    ) {
        let mut run = IndexRunWriter::new(desc);
        for seg in 0..pointer.len().saturating_sub(1) {
            super::push_count(buf, pointer[seg + 1] - pointer[seg], desc);
            run.reset();
            for k in pointer[seg]..pointer[seg + 1] {
                run.push(buf, indices[k]);
                buf.push_f64(values[k]);
            }
        }
    }

    fn decode_pairs(
        &self,
        cursor: &mut UnpackCursor<'_>,
        nsegments: usize,
        desc: u8,
    ) -> Result<UnpackedTriple, SparsedistError> {
        decode_counted_pairs(cursor, nsegments, desc)
    }
}

/// Shared v1/v2 decode of the count-prefixed ED segment layout. The
/// error mapping preserves the pre-refactor contract: a failed count
/// read is a [`CompressError::PointerLength`], a failed pair read a
/// [`CompressError::LengthMismatch`].
fn decode_counted_pairs(
    cursor: &mut UnpackCursor<'_>,
    nsegments: usize,
    flags: u8,
) -> Result<UnpackedTriple, SparsedistError> {
    let mut run = IndexRunReader::new(flags);
    let mut pointer = Vec::with_capacity(nsegments + 1);
    pointer.push(0usize);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for seg in 0..nsegments {
        let count = read_count(cursor, flags).map_err(|_| CompressError::PointerLength {
            expected: nsegments + 1,
            actual: seg + 1,
        })?;
        let total = pointer[seg]
            .checked_add(count)
            .ok_or(CompressError::Codec {
                reason: "segment counts overflow",
            })?;
        pointer.push(total);
        run.reset();
        for _ in 0..count {
            let idx = run
                .next(cursor)
                .map_err(|_| CompressError::LengthMismatch {
                    pointer_total: total,
                    indices: indices.len(),
                    values: values.len(),
                })?;
            indices.push(idx);
            let v = cursor
                .try_read_f64()
                .map_err(|_| CompressError::LengthMismatch {
                    pointer_total: total,
                    indices: indices.len(),
                    values: values.len(),
                })?;
            values.push(v);
        }
    }
    Ok((pointer, indices, values))
}

/// Per-stream byte footprint of one message under one policy, raw vs
/// encoded — the numbers behind the CLI's `--streams` report and the
/// README bytes/element table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamBytes {
    /// Pointer + index stream at 8 bytes per element.
    pub index_raw: usize,
    /// Pointer + index stream as the codec encodes it.
    pub index_encoded: usize,
    /// Value stream at 8 bytes per element.
    pub value_raw: usize,
    /// Value stream as the codec encodes it.
    pub value_encoded: usize,
}

impl StreamBytes {
    /// Sum another message's streams into this tally.
    pub fn add(&mut self, other: StreamBytes) {
        self.index_raw += other.index_raw;
        self.index_encoded += other.index_encoded;
        self.value_raw += other.value_raw;
        self.value_encoded += other.value_encoded;
    }
}

/// Measure the per-stream bytes of one `(pointer, indices, values)`
/// message under `policy`, encoding each stream in columnar form. Header
/// bytes are not counted (they are per-message framing, not stream
/// payload).
pub fn measure_streams(
    index_bound: usize,
    pointer: &[usize],
    indices: &[usize],
    values: &[f64],
    policy: &WirePolicy,
) -> StreamBytes {
    let codec = codec_for(policy.format);
    let desc = codec.plan(index_bound, pointer, indices, values, policy);
    let mut ib = PackBuffer::new();
    codec.encode_indices(&mut ib, pointer, indices, desc);
    let mut vb = PackBuffer::new();
    codec.encode_values(&mut vb, values, desc);
    StreamBytes {
        index_raw: 8 * (pointer.len() + indices.len()),
        index_encoded: ib.byte_len(),
        value_raw: 8 * values.len(),
        value_encoded: vb.byte_len(),
    }
}
