//! The v3 wire format: negotiated per-stream compression.
//!
//! A v3 message opens with `[b'S', b'3', desc]` where `desc` is the
//! **negotiation byte** the sender chose per message:
//!
//! | bits  | meaning                                                |
//! |-------|--------------------------------------------------------|
//! | `0-1` | index codec: `00` raw `u64`, `01` per-segment delta varints (v2's run encoding), `10` bit-packed runs |
//! | `2`   | values travel as 8 byte-transposed planes instead of raw `f64` |
//! | `3-7` | reserved, must be zero                                 |
//!
//! The pointer stream is *always* a varint-delta monotone run — it is
//! tiny and monotone by construction, so there is nothing to negotiate.
//!
//! **Bit-packed index runs** ([`IDX_PACKED`]) split the travelling
//! indices into two streams, each packed by [`super::bitpack`]:
//! the zigzag deltas of each non-empty segment's *first* index (segment
//! starts drift slowly in either direction across a CRS part), and the
//! strictly-positive within-segment deltas minus one (dense runs pack to
//! near zero bits). Stream lengths are derivable from the pointer, so no
//! extra framing is needed.
//!
//! **Byte-transposed value planes** ([`VAL_PLANES`]) regroup the `n`
//! values' little-endian bytes into 8 planes of `n` bytes. Each plane is
//! tagged and encoded independently as whichever of raw / dictionary /
//! RLE is smallest — exponent and high-mantissa planes of realistic data
//! collapse to a handful of distinct bytes, while low-mantissa noise
//! planes stay raw. Bit-exactness is preserved: the transpose is a
//! permutation of the original bytes.
//!
//! Which encodings the sender actually uses is the [`CodecChoice`]: the
//! default `packed` forces maximum shrink, while `auto` prices every
//! candidate against the α-β [`MachineModel`] — bytes cost
//! `t_data / 8` each (the model charges `T_Data` per 8-byte element) and
//! encode work costs `t_op` per estimated operation — making the paper's
//! Remark-5 compress-or-not crossover a per-message runtime decision.
//!
//! Like every codec, v3 moves **bytes, never ops**: a message's logical
//! element count is identical under every `desc`, so all virtual-time
//! phase totals are format-independent.

use super::bitpack::{packed_size, read_packed, write_packed};
use super::codec::{guard_count, Codec, CodecChoice, MsgHead, WirePolicy, V2_DELTA, V3_PACKED};
use super::varint::{unzigzag, varint_len, zigzag, IndexRunReader, IndexRunWriter};
use super::{take_header, UnpackedTriple, WireFormat, FLAG_DELTA, FLAG_MASK, MAGIC};
use crate::compress::CompressError;
use crate::error::SparsedistError;
use sparsedist_multicomputer::pack::{PackBuffer, UnpackCursor};

/// Magic bytes opening every v3 message.
pub const MAGIC_V3: [u8; 2] = [b'S', b'3'];

/// Index codec: raw little-endian `u64` per index.
pub const IDX_RAW: u8 = 0b00;
/// Index codec: per-segment delta varints (v2's run encoding).
pub const IDX_DELTA: u8 = 0b01;
/// Index codec: bit-packed first/within delta streams.
pub const IDX_PACKED: u8 = 0b10;
/// Mask of the index-codec bits (`0b11` itself is invalid).
pub const IDX_MASK: u8 = 0b11;
/// Values travel as 8 byte-transposed planes.
pub const VAL_PLANES: u8 = 0b100;
/// All descriptor bits a v3 header may carry.
pub const DESC_MASK: u8 = IDX_MASK | VAL_PLANES;

/// Value-plane tag: `n` raw bytes follow.
const PLANE_RAW: u8 = 0;
/// Value-plane tag: dictionary size, dictionary, bit-packed codes.
const PLANE_DICT: u8 = 1;
/// Value-plane tag: varint run count, then `(varint len, byte)` runs.
const PLANE_RLE: u8 = 2;

fn codec_err(reason: &'static str) -> CompressError {
    CompressError::Codec { reason }
}

/// The v3 codec. See the module docs for the byte layout.
pub struct V3Packed;

impl Codec for V3Packed {
    fn format(&self) -> WireFormat {
        WireFormat::V3
    }

    fn plan(
        &self,
        _index_bound: usize,
        pointer: &[usize],
        indices: &[usize],
        values: &[f64],
        policy: &WirePolicy,
    ) -> u8 {
        match policy.choice {
            CodecChoice::Raw => IDX_RAW,
            CodecChoice::Delta => IDX_DELTA,
            CodecChoice::Packed => IDX_PACKED | VAL_PLANES,
            CodecChoice::Auto => auto_desc(pointer, indices, values, policy),
        }
    }

    fn begin_message(&self, buf: &mut PackBuffer, desc: u8) {
        debug_assert_eq!(desc & !DESC_MASK, 0, "unknown v3 descriptor bits");
        debug_assert_ne!(desc & IDX_MASK, IDX_MASK, "invalid v3 index codec");
        buf.push_raw(&[MAGIC_V3[0], MAGIC_V3[1], desc]);
    }

    fn open_message(&self, cursor: &mut UnpackCursor<'_>) -> Result<MsgHead, CompressError> {
        let (found, complete) = take_header(cursor);
        if !complete {
            return Err(CompressError::WireHeader { found });
        }
        if found[0] == MAGIC_V3[0] && found[1] == MAGIC_V3[1] {
            let desc = found[2];
            if desc & !DESC_MASK != 0 || desc & IDX_MASK == IDX_MASK {
                return Err(CompressError::WireHeader { found });
            }
            return Ok(MsgHead {
                desc,
                codec: &V3_PACKED,
            });
        }
        // Mixed-version negotiation: a v3-capable receiver still decodes a
        // v2 stream from an older sender.
        if found[0] == MAGIC[0] && found[1] == MAGIC[1] && found[2] & !FLAG_MASK == 0 {
            return Ok(MsgHead {
                desc: found[2],
                codec: &V2_DELTA,
            });
        }
        Err(CompressError::WireHeader { found })
    }

    fn encode_indices(&self, buf: &mut PackBuffer, pointer: &[usize], indices: &[usize], desc: u8) {
        super::push_monotone_run(buf, pointer, FLAG_DELTA);
        encode_index_stream(buf, pointer, indices, desc);
    }

    fn decode_indices(
        &self,
        cursor: &mut UnpackCursor<'_>,
        nsegments: usize,
        desc: u8,
    ) -> Result<(Vec<usize>, Vec<usize>), SparsedistError> {
        guard_count(cursor, nsegments + 1, 1)?;
        let mut pointer = Vec::with_capacity(nsegments + 1);
        let mut prev = 0usize;
        for i in 0..nsegments + 1 {
            let d = cursor.try_read_varint()? as usize;
            prev = if i == 0 {
                d
            } else {
                prev.checked_add(d)
                    .ok_or(codec_err("pointer run overflows"))?
            };
            pointer.push(prev);
        }
        if pointer[0] != 0 {
            return Err(CompressError::PointerStart.into());
        }
        let indices = decode_index_stream(cursor, &pointer, desc)?;
        Ok((pointer, indices))
    }

    fn encode_values(&self, buf: &mut PackBuffer, values: &[f64], desc: u8) {
        if values.is_empty() {
            return;
        }
        if desc & VAL_PLANES == 0 {
            buf.push_f64_slice(values);
            return;
        }
        let mut bytes = Vec::new();
        for p in 0..8 {
            let pb = plane_bytes(values, p);
            let (plan, _) = plan_plane(&pb);
            write_plane(&mut bytes, &pb, plan);
        }
        buf.push_chunk(&bytes, values.len() as u64);
    }

    fn decode_values(
        &self,
        cursor: &mut UnpackCursor<'_>,
        n: usize,
        desc: u8,
    ) -> Result<Vec<f64>, SparsedistError> {
        if n == 0 {
            return Ok(Vec::new());
        }
        if desc & VAL_PLANES == 0 {
            guard_count(cursor, n, 8)?;
            return Ok(cursor.try_read_f64_vec(n)?);
        }
        let mut planes = Vec::with_capacity(8);
        for _ in 0..8 {
            planes.push(decode_plane(cursor, n)?);
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut b = [0u8; 8];
            for (p, plane) in planes.iter().enumerate() {
                b[p] = plane[i];
            }
            out.push(f64::from_le_bytes(b));
        }
        Ok(out)
    }

    fn encode_pairs(
        &self,
        buf: &mut PackBuffer,
        pointer: &[usize],
        indices: &[usize],
        values: &[f64],
        desc: u8,
    ) {
        // The pointer tail as varint deltas is exactly the per-segment
        // count stream — `nsegments` varints, `nsegments` elements,
        // matching v1/v2's one count field per segment.
        for seg in 0..pointer.len().saturating_sub(1) {
            buf.push_varint((pointer[seg + 1] - pointer[seg]) as u64);
        }
        encode_index_stream(buf, pointer, indices, desc);
        self.encode_values(buf, values, desc);
    }

    fn decode_pairs(
        &self,
        cursor: &mut UnpackCursor<'_>,
        nsegments: usize,
        desc: u8,
    ) -> Result<UnpackedTriple, SparsedistError> {
        guard_count(cursor, nsegments, 1)?;
        let mut pointer = Vec::with_capacity(nsegments + 1);
        pointer.push(0usize);
        let mut total = 0usize;
        for seg in 0..nsegments {
            let count = cursor
                .try_read_varint()
                .map_err(|_| CompressError::PointerLength {
                    expected: nsegments + 1,
                    actual: seg + 1,
                })? as usize;
            total = total
                .checked_add(count)
                .ok_or(codec_err("segment counts overflow"))?;
            pointer.push(total);
        }
        let indices = decode_index_stream(cursor, &pointer, desc)?;
        let values = self.decode_values(cursor, total, desc)?;
        Ok((pointer, indices, values))
    }
}

/// Append the travelling-index stream for `desc`'s index codec (the
/// pointer is written separately by the caller). Always credits exactly
/// `indices.len()` logical elements.
fn encode_index_stream(buf: &mut PackBuffer, pointer: &[usize], indices: &[usize], desc: u8) {
    match desc & IDX_MASK {
        IDX_DELTA => {
            let mut run = IndexRunWriter::new(FLAG_DELTA);
            for seg in 0..pointer.len().saturating_sub(1) {
                run.reset();
                for &idx in &indices[pointer[seg]..pointer[seg + 1]] {
                    run.push(buf, idx);
                }
            }
        }
        IDX_PACKED => {
            let (firsts, within) = packed_streams(pointer, indices);
            let mut bytes = Vec::new();
            write_packed(&mut bytes, &firsts);
            write_packed(&mut bytes, &within);
            buf.push_chunk(&bytes, indices.len() as u64);
        }
        _ => buf.push_usize_slice(indices),
    }
}

/// Read back the stream written by [`encode_index_stream`], using the
/// (already decoded, monotone) pointer for segment structure.
fn decode_index_stream(
    cursor: &mut UnpackCursor<'_>,
    pointer: &[usize],
    desc: u8,
) -> Result<Vec<usize>, SparsedistError> {
    let nsegments = pointer.len().saturating_sub(1);
    let nnz = pointer.last().copied().unwrap_or(0);
    for i in 1..pointer.len() {
        if pointer[i] < pointer[i - 1] {
            return Err(CompressError::PointerNotMonotone { at: i }.into());
        }
    }
    match desc & IDX_MASK {
        IDX_DELTA => {
            guard_count(cursor, nnz, 1)?;
            let mut indices = Vec::with_capacity(nnz);
            let mut run = IndexRunReader::new(FLAG_DELTA);
            for seg in 0..nsegments {
                run.reset();
                for _ in pointer[seg]..pointer[seg + 1] {
                    indices.push(run.next(cursor)?);
                }
            }
            Ok(indices)
        }
        IDX_PACKED => {
            let nonempty = (0..nsegments)
                .filter(|&s| pointer[s + 1] > pointer[s])
                .count();
            let firsts = read_packed(cursor, nonempty)?;
            let within = read_packed(cursor, nnz - nonempty)?;
            let mut indices = Vec::with_capacity(nnz);
            let (mut fi, mut wi) = (0usize, 0usize);
            let mut prev_first = 0i64;
            for seg in 0..nsegments {
                let count = pointer[seg + 1] - pointer[seg];
                if count == 0 {
                    continue;
                }
                prev_first = prev_first.wrapping_add(unzigzag(firsts[fi]));
                fi += 1;
                let first = usize::try_from(prev_first)
                    .map_err(|_| codec_err("negative index after zigzag delta"))?;
                indices.push(first);
                let mut prev = first;
                for _ in 1..count {
                    prev = prev.wrapping_add(within[wi] as usize).wrapping_add(1);
                    wi += 1;
                    indices.push(prev);
                }
            }
            Ok(indices)
        }
        _ => {
            guard_count(cursor, nnz, 8)?;
            Ok(cursor.try_read_usize_vec(nnz)?)
        }
    }
}

/// The two bit-packable streams behind [`IDX_PACKED`]: zigzag deltas of
/// each non-empty segment's first index, and within-segment deltas minus
/// one.
fn packed_streams(pointer: &[usize], indices: &[usize]) -> (Vec<u64>, Vec<u64>) {
    let mut firsts = Vec::new();
    let mut within = Vec::new();
    let mut prev_first = 0i64;
    for seg in 0..pointer.len().saturating_sub(1) {
        let (lo, hi) = (pointer[seg], pointer[seg + 1]);
        if lo == hi {
            continue;
        }
        let first = indices[lo] as i64;
        firsts.push(zigzag(first - prev_first));
        prev_first = first;
        for k in lo + 1..hi {
            debug_assert!(indices[k] > indices[k - 1], "index run is not sorted");
            within.push((indices[k] - indices[k - 1] - 1) as u64);
        }
    }
    (firsts, within)
}

/// One little-endian byte plane of the value stream.
fn plane_bytes(values: &[f64], p: usize) -> Vec<u8> {
    values.iter().map(|v| v.to_le_bytes()[p]).collect()
}

/// The ascending dictionary of a plane, if it has at most 16 distinct
/// bytes.
fn dict_of(bytes: &[u8]) -> Option<Vec<u8>> {
    let mut seen = [false; 256];
    let mut dict = Vec::new();
    for &b in bytes {
        if !seen[b as usize] {
            seen[b as usize] = true;
            dict.push(b);
            if dict.len() > 16 {
                return None;
            }
        }
    }
    dict.sort_unstable();
    Some(dict)
}

/// Code width (bits) for a dictionary of `d` entries.
fn code_width(d: usize) -> u32 {
    match d {
        0..=1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        _ => 4,
    }
}

/// Maximal equal-byte runs of a plane.
fn runs_of(bytes: &[u8]) -> Vec<(u64, u8)> {
    let mut runs: Vec<(u64, u8)> = Vec::new();
    for &b in bytes {
        match runs.last_mut() {
            Some((len, last)) if *last == b => *len += 1,
            _ => runs.push((1, b)),
        }
    }
    runs
}

/// How a plane will be encoded, chosen by [`plan_plane`].
enum PlanePlan {
    Raw,
    Dict(Vec<u8>),
    Rle(Vec<(u64, u8)>),
}

/// Pick the smallest encoding for a plane and return it with its exact
/// byte cost (including the tag byte). Ties break dictionary < RLE < raw
/// so the choice — and therefore the stream — is deterministic.
fn plan_plane(bytes: &[u8]) -> (PlanePlan, usize) {
    let n = bytes.len();
    let mut best_cost = 1 + n;
    let mut best = PlanePlan::Raw;
    let runs = runs_of(bytes);
    let rle_cost = 1
        + varint_len(runs.len() as u64)
        + runs
            .iter()
            .map(|&(len, _)| varint_len(len) + 1)
            .sum::<usize>();
    if rle_cost <= best_cost {
        best_cost = rle_cost;
        best = PlanePlan::Rle(runs);
    }
    if let Some(dict) = dict_of(bytes) {
        let k = code_width(dict.len()) as usize;
        let dict_cost = 2 + dict.len() + (n * k).div_ceil(8);
        if dict_cost <= best_cost {
            best_cost = dict_cost;
            best = PlanePlan::Dict(dict);
        }
    }
    (best, best_cost)
}

/// Append a LEB128 varint to a plain byte vector (the plane streams are
/// assembled outside any [`PackBuffer`]).
fn push_varint_vec(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Write one plane under its chosen plan.
fn write_plane(out: &mut Vec<u8>, bytes: &[u8], plan: PlanePlan) {
    match plan {
        PlanePlan::Raw => {
            out.push(PLANE_RAW);
            out.extend_from_slice(bytes);
        }
        PlanePlan::Dict(dict) => {
            out.push(PLANE_DICT);
            out.push(dict.len() as u8);
            out.extend_from_slice(&dict);
            let k = code_width(dict.len());
            if k > 0 {
                let mut table = [0u8; 256];
                for (c, &b) in dict.iter().enumerate() {
                    table[b as usize] = c as u8;
                }
                let codes: Vec<u64> = bytes.iter().map(|&b| table[b as usize] as u64).collect();
                super::bitpack::write_bits(out, &codes, k);
            }
        }
        PlanePlan::Rle(runs) => {
            out.push(PLANE_RLE);
            push_varint_vec(out, runs.len() as u64);
            for (len, b) in runs {
                push_varint_vec(out, len);
                out.push(b);
            }
        }
    }
}

/// Read back one plane of `n` bytes.
fn decode_plane(cursor: &mut UnpackCursor<'_>, n: usize) -> Result<Vec<u8>, SparsedistError> {
    let tag = cursor.try_read_raw(1)?[0];
    match tag {
        PLANE_RAW => {
            guard_count(cursor, n, 1)?;
            Ok(cursor.try_read_raw(n)?.to_vec())
        }
        PLANE_DICT => {
            let d = cursor.try_read_raw(1)?[0] as usize;
            if !(1..=16).contains(&d) {
                return Err(codec_err("value-plane dictionary size out of range").into());
            }
            let dict = cursor.try_read_raw(d)?.to_vec();
            let k = code_width(d);
            let nbytes = n
                .checked_mul(k as usize)
                .ok_or(codec_err("value-plane code stream overflows"))?
                .div_ceil(8);
            let code_bytes = cursor.try_read_raw(nbytes)?;
            let codes = super::bitpack::read_bits(code_bytes, n, k);
            let mut out = Vec::with_capacity(n);
            for c in codes {
                let c = c as usize;
                if c >= d {
                    return Err(codec_err("value-plane dictionary code out of range").into());
                }
                out.push(dict[c]);
            }
            Ok(out)
        }
        PLANE_RLE => {
            let nruns = cursor.try_read_varint()? as usize;
            guard_count(cursor, nruns, 2)?;
            let mut out = Vec::new();
            for _ in 0..nruns {
                let len = cursor.try_read_varint()? as usize;
                if len == 0 {
                    return Err(codec_err("value-plane RLE run of length zero").into());
                }
                let b = cursor.try_read_raw(1)?[0];
                if len > n - out.len() {
                    return Err(codec_err("value-plane RLE runs exceed the value count").into());
                }
                out.extend(std::iter::repeat(b).take(len));
            }
            if out.len() != n {
                return Err(codec_err("value-plane RLE runs fall short of the value count").into());
            }
            Ok(out)
        }
        _ => Err(codec_err("unknown value-plane tag").into()),
    }
}

/// Exact byte cost of the [`IDX_DELTA`] encoding of the index stream.
fn delta_index_bytes(pointer: &[usize], indices: &[usize]) -> usize {
    let mut total = 0;
    for seg in 0..pointer.len().saturating_sub(1) {
        let mut prev = 0u64;
        let mut fresh = true;
        for &idx in &indices[pointer[seg]..pointer[seg + 1]] {
            let v = idx as u64;
            total += varint_len(if fresh { v } else { v - prev });
            prev = v;
            fresh = false;
        }
    }
    total
}

/// The `auto` negotiator: price every candidate encoding of each stream
/// against the α-β model and keep the cheapest. A byte on the wire costs
/// `t_data / 8` (the model charges `T_Data` per 8-byte element); encode
/// work is estimated at `nnz / 4` ops for bit-packing an index stream
/// and one op per value for the plane transpose, while the raw and
/// delta paths ride the existing encode loops at no extra charge. This
/// is Remark 5's compress-or-not crossover decided per message at
/// runtime.
fn auto_desc(pointer: &[usize], indices: &[usize], values: &[f64], policy: &WirePolicy) -> u8 {
    let byte_t = policy.model.t_data / 8.0;
    let t_op = policy.model.t_op;

    let nnz = indices.len();
    let raw_bytes = 8 * nnz;
    let delta_bytes = delta_index_bytes(pointer, indices);
    let (firsts, within) = packed_streams(pointer, indices);
    let packed_bytes = packed_size(&firsts) + packed_size(&within);
    let cheap_bytes = delta_bytes.min(raw_bytes);
    let packed_cost = packed_bytes as f64 * byte_t + (nnz as f64 / 4.0) * t_op;
    let idx = if packed_cost < cheap_bytes as f64 * byte_t {
        IDX_PACKED
    } else if delta_bytes <= raw_bytes {
        IDX_DELTA
    } else {
        IDX_RAW
    };

    let n = values.len();
    let planes_bytes: usize = (0..8).map(|p| plan_plane(&plane_bytes(values, p)).1).sum();
    let planes_cost = planes_bytes as f64 * byte_t + n as f64 * t_op;
    let val = if n > 0 && planes_cost < (8 * n) as f64 * byte_t {
        VAL_PLANES
    } else {
        0
    };

    idx | val
}

#[cfg(test)]
mod tests {
    use super::super::codec::codec_for;
    use super::*;
    use sparsedist_multicomputer::MachineModel;

    fn fig7_triple() -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        (
            vec![0, 2, 2, 5],
            vec![1, 6, 0, 3, 7],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
    }

    fn roundtrip_triple(desc: u8) {
        let (ro, co, vl) = fig7_triple();
        let mut b = PackBuffer::new();
        V3_PACKED.begin_message(&mut b, desc);
        V3_PACKED.encode_indices(&mut b, &ro, &co, desc);
        V3_PACKED.encode_values(&mut b, &vl, desc);
        assert_eq!(
            b.elem_count(),
            (ro.len() + 2 * vl.len()) as u64,
            "desc {desc:#05b}: element count must be format-independent"
        );
        let mut c = b.cursor();
        let head = V3_PACKED.open_message(&mut c).unwrap();
        assert_eq!(head.desc, desc);
        let (ro2, co2) = head
            .codec
            .decode_indices(&mut c, ro.len() - 1, desc)
            .unwrap();
        let vl2 = head.codec.decode_values(&mut c, vl.len(), desc).unwrap();
        assert!(c.is_exhausted(), "desc {desc:#05b}");
        assert_eq!((ro2, co2, vl2), (ro, co, vl), "desc {desc:#05b}");
    }

    #[test]
    fn triple_round_trips_under_every_descriptor() {
        for idx in [IDX_RAW, IDX_DELTA, IDX_PACKED] {
            for val in [0, VAL_PLANES] {
                roundtrip_triple(idx | val);
            }
        }
    }

    #[test]
    fn pairs_round_trip_with_ed_element_count() {
        let (ro, co, vl) = fig7_triple();
        for idx in [IDX_RAW, IDX_DELTA, IDX_PACKED] {
            let desc = idx | VAL_PLANES;
            let mut b = PackBuffer::new();
            V3_PACKED.begin_message(&mut b, desc);
            V3_PACKED.encode_pairs(&mut b, &ro, &co, &vl, desc);
            // ED element count: one count per segment + 2·nnz.
            assert_eq!(b.elem_count(), (ro.len() - 1 + 2 * vl.len()) as u64);
            let mut c = b.cursor();
            let head = V3_PACKED.open_message(&mut c).unwrap();
            let (ro2, co2, vl2) = head.codec.decode_pairs(&mut c, ro.len() - 1, desc).unwrap();
            assert!(c.is_exhausted());
            assert_eq!((ro2, co2, vl2), (ro.clone(), co.clone(), vl.clone()));
        }
    }

    #[test]
    fn empty_segments_and_empty_messages_round_trip() {
        for (ro, co) in [
            (vec![0usize, 0, 0, 0], vec![]),
            (vec![0usize], vec![]),
            (vec![0usize, 0, 3, 3, 4], vec![7, 8, 9, 2]),
        ] {
            let vl: Vec<f64> = co.iter().map(|&i| i as f64).collect();
            for idx in [IDX_RAW, IDX_DELTA, IDX_PACKED] {
                let desc = idx | VAL_PLANES;
                let mut b = PackBuffer::new();
                V3_PACKED.begin_message(&mut b, desc);
                V3_PACKED.encode_indices(&mut b, &ro, &co, desc);
                V3_PACKED.encode_values(&mut b, &vl, desc);
                let mut c = b.cursor();
                let head = V3_PACKED.open_message(&mut c).unwrap();
                let (ro2, co2) = head
                    .codec
                    .decode_indices(&mut c, ro.len() - 1, desc)
                    .unwrap();
                let vl2 = head.codec.decode_values(&mut c, vl.len(), desc).unwrap();
                assert_eq!((ro2, co2, vl2), (ro.clone(), co.clone(), vl.clone()));
            }
        }
    }

    #[test]
    fn packed_descriptor_shrinks_a_dense_run() {
        // A dense row: 500 consecutive indices, constant-ish values.
        let pointer = vec![0usize, 500];
        let indices: Vec<usize> = (100..600).collect();
        let values: Vec<f64> = (0..500).map(|i| 1.0 + (i % 16) as f64 / 16.0).collect();
        let mut packed = PackBuffer::new();
        let desc = IDX_PACKED | VAL_PLANES;
        V3_PACKED.begin_message(&mut packed, desc);
        V3_PACKED.encode_indices(&mut packed, &pointer, &indices, desc);
        V3_PACKED.encode_values(&mut packed, &values, desc);

        let mut raw = PackBuffer::new();
        V3_PACKED.begin_message(&mut raw, IDX_RAW);
        V3_PACKED.encode_indices(&mut raw, &pointer, &indices, IDX_RAW);
        V3_PACKED.encode_values(&mut raw, &values, IDX_RAW);

        assert_eq!(packed.elem_count(), raw.elem_count());
        // Consecutive indices pack to ~0 bits; 16 distinct values leave
        // at most two meaningful mantissa planes.
        assert!(
            packed.byte_len() * 4 < raw.byte_len(),
            "packed {} vs raw {}",
            packed.byte_len(),
            raw.byte_len()
        );
    }

    #[test]
    fn v3_receiver_accepts_v2_streams() {
        let (ro, co, vl) = fig7_triple();
        let mut b = PackBuffer::new();
        super::super::pack_triple_into(&mut b, &ro, &co, &vl, 8, &WirePolicy::of(WireFormat::V2));
        let mut c = b.cursor();
        let head = V3_PACKED.open_message(&mut c).unwrap();
        assert_eq!(head.codec.format(), WireFormat::V2);
        let (ro2, co2) = head
            .codec
            .decode_indices(&mut c, ro.len() - 1, head.desc)
            .unwrap();
        let vl2 = head
            .codec
            .decode_values(&mut c, vl.len(), head.desc)
            .unwrap();
        assert_eq!((ro2, co2, vl2), (ro, co, vl));
    }

    #[test]
    fn malformed_v3_streams_error_without_panicking() {
        let (ro, co, vl) = fig7_triple();
        let desc = IDX_PACKED | VAL_PLANES;
        let mut b = PackBuffer::new();
        V3_PACKED.begin_message(&mut b, desc);
        V3_PACKED.encode_indices(&mut b, &ro, &co, desc);
        V3_PACKED.encode_values(&mut b, &vl, desc);
        let bytes = b.as_bytes();
        // Truncations at every interesting boundary.
        for cut in 0..bytes.len() {
            let mut t = PackBuffer::new();
            t.push_raw(&bytes[..cut]);
            let mut c = t.cursor();
            let r = V3_PACKED.open_message(&mut c).and_then(|head| {
                let (p, _) = head
                    .codec
                    .decode_indices(&mut c, ro.len() - 1, head.desc)
                    .map_err(|_| CompressError::Codec { reason: "idx" })?;
                head.codec
                    .decode_values(&mut c, p.last().copied().unwrap_or(0), head.desc)
                    .map_err(|_| CompressError::Codec { reason: "val" })?;
                Ok(())
            });
            assert!(r.is_err(), "cut at {cut} of {}", bytes.len());
        }
        // Reserved descriptor bits and the invalid index codec.
        for bad in [0b1000u8, 0b11] {
            let mut t = PackBuffer::new();
            t.push_raw(&[b'S', b'3', bad]);
            assert!(V3_PACKED.open_message(&mut t.cursor()).is_err(), "{bad:#b}");
        }
        // Wrong magic entirely.
        let mut t = PackBuffer::new();
        t.push_raw(&[b'X', b'3', 0]);
        assert!(V3_PACKED.open_message(&mut t.cursor()).is_err());
    }

    #[test]
    fn malformed_value_planes_are_typed_errors() {
        fn try_decode(payload: &[u8], n: usize) -> Result<Vec<f64>, SparsedistError> {
            let mut b = PackBuffer::new();
            b.push_raw(payload);
            let mut c = b.cursor();
            V3_PACKED.decode_values(&mut c, n, VAL_PLANES)
        }
        // Unknown plane tag.
        assert!(try_decode(&[9], 1).is_err());
        // Dictionary size 0 and 17 are out of range.
        assert!(try_decode(&[PLANE_DICT, 0], 1).is_err());
        assert!(try_decode(&[PLANE_DICT, 17], 1).is_err());
        // RLE run of length zero.
        assert!(try_decode(&[PLANE_RLE, 1, 0, 42], 1).is_err());
        // RLE runs overshooting the value count.
        assert!(try_decode(&[PLANE_RLE, 1, 9, 42], 1).is_err());
        // RLE runs falling short.
        assert!(try_decode(&[PLANE_RLE, 1, 1, 42], 3).is_err());
    }

    #[test]
    fn auto_negotiation_follows_the_machine_model() {
        // n=1000-ish realistic shape: sorted sparse indices, values in [1, 2).
        let nnz = 400;
        let pointer: Vec<usize> = (0..=100).map(|i| i * nnz / 100).collect();
        let indices: Vec<usize> = (0..nnz).map(|i| (i % 4) * 250 + i / 4).collect();
        let values: Vec<f64> = (0..nnz).map(|i| 1.0 + (i % 64) as f64 / 64.0).collect();
        let auto = |model: MachineModel| {
            let policy = WirePolicy::new(WireFormat::V3, CodecChoice::Auto, model);
            V3_PACKED.plan(1000, &pointer, &indices, &values, &policy)
        };
        // A network-bound machine pays dearly per byte: compress hard.
        assert_eq!(auto(MachineModel::network_bound()), IDX_PACKED | VAL_PLANES);
        // A compute-bound machine keeps the free delta varints but skips
        // the op-charged transforms.
        assert_eq!(auto(MachineModel::compute_bound()), IDX_DELTA);
        // The decision actually flips between models — Remark 5 at runtime.
        assert_ne!(
            auto(MachineModel::network_bound()),
            auto(MachineModel::compute_bound())
        );
    }

    #[test]
    fn plane_encodings_pick_the_exact_minimum() {
        // Constant plane: RLE (3 bytes) beats dict (4) and raw (n+1).
        let (_, cost) = plan_plane(&[7u8; 100]);
        assert_eq!(cost, 3);
        // Two alternating bytes: dict with 1-bit codes.
        let alt: Vec<u8> = (0..100).map(|i| if i % 2 == 0 { 3 } else { 9 }).collect();
        let (plan, cost) = plan_plane(&alt);
        assert!(matches!(plan, PlanePlan::Dict(_)));
        assert_eq!(cost, 2 + 2 + 100usize.div_ceil(8));
        // High-entropy plane: raw.
        let noise: Vec<u8> = (0..=255u8).collect();
        let (plan, cost) = plan_plane(&noise);
        assert!(matches!(plan, PlanePlan::Raw));
        assert_eq!(cost, 257);
        // Empty plane: raw tag only.
        let (_, cost) = plan_plane(&[]);
        assert_eq!(cost, 1);
    }

    #[test]
    fn codec_for_returns_v3() {
        assert_eq!(codec_for(WireFormat::V3).format(), WireFormat::V3);
    }
}
