//! Varint and zigzag primitives plus the streaming index-run writer and
//! reader shared by the v2 and v3 codecs.
//!
//! LEB128 encoding itself lives in the pack layer
//! ([`PackBuffer::push_varint`] / `UnpackCursor::try_read_varint`); this
//! module adds the size accounting the v3 negotiator needs
//! ([`varint_len`]), the signed-to-unsigned fold for deltas that may go
//! backwards ([`zigzag`]/[`unzigzag`]), and the segment-resetting run
//! writer/reader that v2 streams travelling indices through.

use super::{FLAG_DELTA, FLAG_IDX32};
use sparsedist_multicomputer::pack::{PackBuffer, UnpackCursor, UnpackError};

/// Bytes a LEB128 varint encoding of `v` occupies (1..=10).
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    let bits = 64 - v.leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Fold a signed delta into an unsigned value with small magnitudes
/// staying small: `0, -1, 1, -2, 2, …` map to `0, 1, 2, 3, 4, …`.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Streaming writer for sorted index runs that reset at segment
/// boundaries (the travelling `CO` indices of one CRS row / CCS column,
/// or one ED segment's `C_ij` run).
///
/// Under `DELTA` the first index after a [`IndexRunWriter::reset`] is
/// written absolute and the rest as deltas from their predecessor;
/// without `DELTA` each index is a fixed-width field.
#[derive(Debug, Clone)]
pub struct IndexRunWriter {
    flags: u8,
    prev: u64,
    fresh: bool,
}

impl IndexRunWriter {
    /// A writer for one message's negotiated flags, positioned at a
    /// segment boundary.
    pub fn new(flags: u8) -> Self {
        IndexRunWriter {
            flags,
            prev: 0,
            fresh: true,
        }
    }

    /// Mark a segment boundary: the next index is written absolute.
    pub fn reset(&mut self) {
        self.prev = 0;
        self.fresh = true;
    }

    /// Append one index of the current segment's sorted run.
    pub fn push(&mut self, buf: &mut PackBuffer, v: usize) {
        let v = v as u64;
        if self.flags & FLAG_DELTA != 0 {
            debug_assert!(self.fresh || v >= self.prev, "index run is not sorted");
            buf.push_varint(if self.fresh { v } else { v - self.prev });
            self.prev = v;
            self.fresh = false;
        } else if self.flags & FLAG_IDX32 != 0 {
            buf.push_u32(v as u32);
        } else {
            buf.push_u64(v);
        }
    }
}

/// Streaming reader matching [`IndexRunWriter`], with the same
/// segment-boundary [`IndexRunReader::reset`] protocol.
#[derive(Debug, Clone)]
pub struct IndexRunReader {
    flags: u8,
    prev: u64,
    fresh: bool,
}

impl IndexRunReader {
    /// A reader for the flags recovered from the message header.
    pub fn new(flags: u8) -> Self {
        IndexRunReader {
            flags,
            prev: 0,
            fresh: true,
        }
    }

    /// Mark a segment boundary: the next index read is absolute.
    pub fn reset(&mut self) {
        self.prev = 0;
        self.fresh = true;
    }

    /// Read one index of the current segment's run.
    pub fn next(&mut self, cursor: &mut UnpackCursor<'_>) -> Result<usize, UnpackError> {
        if self.flags & FLAG_DELTA != 0 {
            let d = cursor.try_read_varint()?;
            self.prev = if self.fresh {
                d
            } else {
                self.prev.wrapping_add(d)
            };
            self.fresh = false;
            Ok(self.prev as usize)
        } else if self.flags & FLAG_IDX32 != 0 {
            cursor.try_read_u32().map(|v| v as usize)
        } else {
            cursor.try_read_u64().map(|v| v as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_len_matches_packed_bytes() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut b = PackBuffer::new();
            b.push_varint(v);
            assert_eq!(b.byte_len(), varint_len(v), "v={v}");
        }
    }

    #[test]
    fn zigzag_round_trips_and_keeps_small_magnitudes_small() {
        for v in [0i64, -1, 1, -2, 2, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v, "v={v}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }
}
