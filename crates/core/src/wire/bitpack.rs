//! LSB-first bit packing in fixed blocks, the v3 index transport.
//!
//! A packed stream carries `u64` values in blocks of up to [`BLOCK`]
//! values. Each block opens with one width byte `w` (the bit width of the
//! block's largest value, `0..=64`), followed by `ceil(len·w / 8)` payload
//! bytes holding the block's values packed LSB-first. A block of all-zero
//! values therefore costs exactly one byte — the common case for the
//! dense-run deltas the v3 codec feeds through here.
//!
//! The reader validates the width byte and bounds every payload read, so
//! truncated or corrupt streams surface as [`UnpackError`]s, never panics
//! or unbounded allocations: a stream of `n` values needs at least
//! `ceil(n / BLOCK)` bytes, which caps `n` before any allocation.

use sparsedist_multicomputer::pack::{UnpackCursor, UnpackError};

/// Values per block (one width byte each).
pub const BLOCK: usize = 128;

/// Bits needed to represent `v` (0 for `v == 0`).
pub fn bits_for(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Bytes [`write_packed`] would append for `vals`.
pub fn packed_size(vals: &[u64]) -> usize {
    vals.chunks(BLOCK)
        .map(|b| {
            let w = b.iter().copied().map(bits_for).max().unwrap_or(0) as usize;
            1 + (b.len() * w).div_ceil(8)
        })
        .sum()
}

/// Append the packed encoding of `vals` to `out`.
pub fn write_packed(out: &mut Vec<u8>, vals: &[u64]) {
    for b in vals.chunks(BLOCK) {
        let w = b.iter().copied().map(bits_for).max().unwrap_or(0);
        out.push(w as u8);
        write_bits(out, b, w);
    }
}

/// Append `vals` packed at a fixed `width` bits each, LSB-first (no block
/// structure, no width byte — the caller records the width).
pub fn write_bits(out: &mut Vec<u8>, vals: &[u64], width: u32) {
    if width == 0 {
        return;
    }
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    for &v in vals {
        acc |= (v as u128) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push(acc as u8);
    }
}

/// Decode `n` values packed at a fixed `width` from `bytes` (which must
/// hold at least `ceil(n·width / 8)` bytes; missing bytes read as zero).
pub fn read_bits(bytes: &[u8], n: usize, width: u32) -> Vec<u64> {
    if width == 0 {
        return vec![0; n];
    }
    let mut out = Vec::with_capacity(n);
    let mut iter = bytes.iter();
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    for _ in 0..n {
        while nbits < width {
            acc |= (iter.next().copied().unwrap_or(0) as u128) << nbits;
            nbits += 8;
        }
        out.push((acc as u64) & mask);
        acc >>= width;
        nbits -= width;
    }
    out
}

fn oob(cursor: &UnpackCursor<'_>) -> UnpackError {
    UnpackError {
        at: cursor.position(),
        remaining: cursor.remaining(),
    }
}

/// Read back `n` values written by [`write_packed`].
///
/// Fails with [`UnpackError`] on truncation, a width byte above 64, or a
/// count `n` the remaining bytes cannot possibly hold.
pub fn read_packed(cursor: &mut UnpackCursor<'_>, n: usize) -> Result<Vec<u64>, UnpackError> {
    // Every block costs at least its width byte: reject a count that
    // outruns the buffer before allocating for it.
    if n.div_ceil(BLOCK) > cursor.remaining() {
        return Err(oob(cursor));
    }
    let mut out = Vec::with_capacity(n);
    let mut left = n;
    while left > 0 {
        let len = left.min(BLOCK);
        let w = cursor.try_read_raw(1)?[0] as u32;
        if w > 64 {
            return Err(oob(cursor));
        }
        let nbytes = (len * w as usize).div_ceil(8);
        let bytes = cursor.try_read_raw(nbytes)?;
        out.extend(read_bits(bytes, len, w));
        left -= len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsedist_multicomputer::pack::PackBuffer;

    fn roundtrip(vals: &[u64]) {
        let mut bytes = Vec::new();
        write_packed(&mut bytes, vals);
        assert_eq!(bytes.len(), packed_size(vals));
        let mut buf = PackBuffer::new();
        buf.push_raw(&bytes);
        let mut c = buf.cursor();
        assert_eq!(read_packed(&mut c, vals.len()).unwrap(), vals);
        assert!(c.is_exhausted());
    }

    #[test]
    fn round_trips_across_widths_and_block_boundaries() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[0; 500]);
        roundtrip(&[1, 0, 1, 1, 0]);
        roundtrip(&(0..1000u64).collect::<Vec<_>>());
        roundtrip(&[u64::MAX, 0, 1, u64::MAX]);
        roundtrip(&(0..129).map(|i| i * 37 % 1000).collect::<Vec<_>>());
    }

    #[test]
    fn all_zero_blocks_cost_one_byte_each() {
        assert_eq!(packed_size(&[0; 128]), 1);
        assert_eq!(packed_size(&[0; 256]), 2);
        // A 7-bit block: 1 width byte + ceil(128·7/8) payload.
        assert_eq!(packed_size(&[100; 128]), 1 + 112);
    }

    #[test]
    fn truncated_or_corrupt_streams_error_without_panicking() {
        let mut bytes = Vec::new();
        write_packed(&mut bytes, &(0..300u64).collect::<Vec<_>>());
        for cut in [0, 1, 5, bytes.len() - 1] {
            let mut buf = PackBuffer::new();
            buf.push_raw(&bytes[..cut]);
            assert!(read_packed(&mut buf.cursor(), 300).is_err(), "cut {cut}");
        }
        // Width byte above 64.
        let mut buf = PackBuffer::new();
        buf.push_raw(&[65, 0, 0, 0]);
        assert!(read_packed(&mut buf.cursor(), 1).is_err());
        // Count that cannot fit the remaining bytes is rejected up front.
        let mut buf = PackBuffer::new();
        buf.push_raw(&[0]);
        assert!(read_packed(&mut buf.cursor(), usize::MAX).is_err());
    }
}
