//! Wire formats for compressed-array messages: a pluggable codec stack.
//!
//! The paper's schemes put `(RO, CO, VL)` triples (CFS) and encoded
//! buffers `B` (ED) on the wire. This family implements three layouts
//! behind one [`Codec`] trait, chosen per run by [`WireFormat`] and per
//! message by each codec's negotiation byte:
//!
//! * **v1** ([`codec::V1Raw`]) — the seed layout: every index a
//!   little-endian `u64`, every value a little-endian `f64`, no header.
//!   Byte-identical to the original repo's streams.
//! * **v2** ([`codec::V2Delta`]) — a 3-byte header `[b'S', b'2', flags]`
//!   ([`FLAG_IDX32`] narrows fixed-width fields to `u32`, [`FLAG_DELTA`]
//!   delta-varints sorted index runs), raw `f64` values. Byte-identical
//!   to the pre-refactor v2.
//! * **v3** ([`v3::V3Packed`]) — `[b'S', b'3', desc]` where `desc`
//!   selects per stream between raw, delta-varint, and bit-packed index
//!   runs, and optionally byte-transposed value planes; the selection is
//!   forced by [`codec::CodecChoice`] or priced per message against the
//!   α-β machine model (`auto`).
//!
//! Module layout: [`varint`] holds zigzag and the segment-resetting run
//! writer/reader, [`bitpack`] the fixed-block bit packer, [`codec`] the
//! trait plus the v1/v2 impls and the negotiation policy, [`v3`] the new
//! format. This `mod.rs` keeps the shared header/field helpers and the
//! scheme-facing entry points [`pack_triple_into`] / [`unpack_triple`]
//! and [`pack_values_into`] / [`unpack_values`].
//!
//! Two invariants hold across the whole family:
//!
//! * **Element transparency.** Header and framing bytes are never logical
//!   elements, and every codec credits the same element count for the
//!   same message — the paper charges `T_Data` per element, an element is
//!   an element however many bytes encode it, and therefore every
//!   virtual-time phase total is format-independent. Only bytes-on-wire
//!   (and host encode time) change.
//! * **Version-min negotiation.** A sender caps its format at what the
//!   peer decodes ([`effective_format`]); a v3-capable receiver also
//!   accepts v2 streams directly (see [`Codec::open_message`]), so mixed
//!   fleets degrade to the newest common format instead of failing.

pub mod bitpack;
pub mod codec;
pub mod v3;
pub mod varint;

pub use codec::{
    codec_for, measure_streams, Codec, CodecChoice, MsgHead, StreamBytes, V1Raw, V2Delta,
    WirePolicy, V1_RAW, V2_DELTA, V3_PACKED,
};
pub use v3::V3Packed;
pub use varint::{IndexRunReader, IndexRunWriter};

use crate::compress::CompressError;
use crate::error::SparsedistError;
use sparsedist_multicomputer::pack::{PackBuffer, PatchError, UnpackCursor, UnpackError};

/// Magic bytes opening every v2 message.
pub const MAGIC: [u8; 2] = [b'S', b'2'];

/// Total header length in bytes (magic + negotiation byte).
pub const HEADER_LEN: usize = 3;

/// Fixed-width index fields are 4-byte `u32` instead of 8-byte `u64`.
pub const FLAG_IDX32: u8 = 0b01;

/// Sorted index runs are LEB128 varint deltas (reset per segment).
pub const FLAG_DELTA: u8 = 0b10;

/// All flag bits a v2 header may carry.
pub const FLAG_MASK: u8 = FLAG_IDX32 | FLAG_DELTA;

/// Which wire layout a scheme run puts on the interconnect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum WireFormat {
    /// The seed layout: plain `u64`/`f64`, 8 bytes per element, no
    /// header. Kept as default so existing byte-exact behaviour (and the
    /// fault-injection corpus built on it) is untouched.
    #[default]
    V1,
    /// Compact layout: 3-byte header, then `IDX32`/`DELTA`-encoded index
    /// fields as negotiated per message.
    V2,
    /// Per-stream compression: bit-packed index runs and byte-transposed
    /// value planes behind a self-describing descriptor byte, selected
    /// per message by policy or by the α-β cost model.
    V3,
}

impl WireFormat {
    /// Lower-case label for table output.
    pub fn label(self) -> &'static str {
        match self {
            WireFormat::V1 => "v1",
            WireFormat::V2 => "v2",
            WireFormat::V3 => "v3",
        }
    }

    /// Protocol version number, ordered so newer formats compare higher.
    pub fn version(self) -> u8 {
        match self {
            WireFormat::V1 => 1,
            WireFormat::V2 => 2,
            WireFormat::V3 => 3,
        }
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The format a sender actually uses towards a peer: its own preference
/// capped at the newest format the peer decodes (version-min fallback).
pub fn effective_format(local: WireFormat, peer_max: WireFormat) -> WireFormat {
    if local.version() <= peer_max.version() {
        local
    } else {
        peer_max
    }
}

/// Negotiate v2 flags for a message whose largest fixed-width field
/// (index, count or pointer total) is `max_field`.
///
/// `DELTA` is always on — every index run the schemes transmit is sorted
/// by CRS/CCS construction. `IDX32` is on when `max_field` fits a `u32`,
/// which covers any array with dimensions and nonzero count below 2³².
pub fn negotiate(max_field: usize) -> u8 {
    let mut flags = FLAG_DELTA;
    if max_field <= u32::MAX as usize {
        flags |= FLAG_IDX32;
    }
    flags
}

/// Consume up to one header's worth of bytes, zero-padded, plus whether
/// a full header was present. Shared by the v2 and v3 header readers so
/// short buffers report the same zero-padded `found` bytes.
pub(crate) fn take_header(cursor: &mut UnpackCursor<'_>) -> ([u8; HEADER_LEN], bool) {
    let mut found = [0u8; HEADER_LEN];
    let n = cursor.remaining().min(HEADER_LEN);
    if let Ok(bytes) = cursor.try_read_raw(n) {
        found[..n].copy_from_slice(bytes);
    }
    (found, n == HEADER_LEN)
}

/// Append a v2 header carrying `flags`. Framing bytes only: the buffer's
/// element count is unchanged.
pub fn write_header(buf: &mut PackBuffer, flags: u8) {
    debug_assert_eq!(
        flags & !FLAG_MASK,
        0,
        "unknown wire flag bits: {flags:#04x}"
    );
    buf.push_raw(&[MAGIC[0], MAGIC[1], flags]);
}

/// Read and validate a v2 header, returning its flags.
///
/// Fails with [`CompressError::WireHeader`] on wrong magic, unknown flag
/// bits, or a buffer too short to hold a header (the found bytes are
/// reported zero-padded in that case).
pub fn read_header(cursor: &mut UnpackCursor<'_>) -> Result<u8, CompressError> {
    let (found, complete) = take_header(cursor);
    if !complete || found[0] != MAGIC[0] || found[1] != MAGIC[1] || found[2] & !FLAG_MASK != 0 {
        return Err(CompressError::WireHeader { found });
    }
    Ok(found[2])
}

/// Append one count/index field at the fixed width the flags select.
pub fn push_count(buf: &mut PackBuffer, v: usize, flags: u8) {
    if flags & FLAG_IDX32 != 0 {
        debug_assert!(
            v <= u32::MAX as usize,
            "IDX32 negotiated but field {v} overflows u32"
        );
        buf.push_u32(v as u32);
    } else {
        buf.push_u64(v as u64);
    }
}

/// Read one count/index field at the fixed width the flags select.
pub fn read_count(cursor: &mut UnpackCursor<'_>, flags: u8) -> Result<usize, UnpackError> {
    if flags & FLAG_IDX32 != 0 {
        cursor.try_read_u32().map(|v| v as usize)
    } else {
        cursor.try_read_u64().map(|v| v as usize)
    }
}

/// Append a placeholder count field and return its byte offset for a
/// later [`patch_count`] — the flag-aware analogue of
/// [`PackBuffer::push_u64_placeholder`], for encoders that must write a
/// count before the segment's content is known.
pub fn push_count_placeholder(buf: &mut PackBuffer, flags: u8) -> usize {
    if flags & FLAG_IDX32 != 0 {
        buf.push_u32_placeholder()
    } else {
        buf.push_u64_placeholder()
    }
}

/// Overwrite the placeholder at `at` (from [`push_count_placeholder`],
/// with the same flags) with `v`.
pub fn patch_count(buf: &mut PackBuffer, at: usize, v: usize, flags: u8) -> Result<(), PatchError> {
    if flags & FLAG_IDX32 != 0 {
        debug_assert!(
            v <= u32::MAX as usize,
            "IDX32 negotiated but field {v} overflows u32"
        );
        buf.patch_u32(at, v as u32)
    } else {
        buf.patch_u64(at, v as u64)
    }
}

/// Append a non-decreasing run (a CRS/CCS pointer array) under the
/// negotiated flags: varint deltas when `DELTA` is set (first value
/// absolute), otherwise fixed-width fields.
pub fn push_monotone_run(buf: &mut PackBuffer, vs: &[usize], flags: u8) {
    if flags & FLAG_DELTA != 0 {
        let mut prev = 0u64;
        for (i, &v) in vs.iter().enumerate() {
            let v = v as u64;
            debug_assert!(i == 0 || v >= prev, "run is not monotone at position {i}");
            buf.push_varint(if i == 0 { v } else { v - prev });
            prev = v;
        }
    } else if flags & FLAG_IDX32 != 0 {
        for &v in vs {
            debug_assert!(v <= u32::MAX as usize);
            buf.push_u32(v as u32);
        }
    } else {
        buf.push_usize_slice(vs);
    }
}

/// Read back `n` fields written by [`push_monotone_run`] with the same
/// flags. Corrupt varints that would overflow the running sum wrap
/// rather than panic; structural validation is the caller's layer.
pub fn read_monotone_run(
    cursor: &mut UnpackCursor<'_>,
    n: usize,
    flags: u8,
) -> Result<Vec<usize>, UnpackError> {
    codec::guard_count(cursor, n, if flags & FLAG_DELTA != 0 { 1 } else { 4 })?;
    let mut out = Vec::with_capacity(n);
    if flags & FLAG_DELTA != 0 {
        let mut prev = 0u64;
        for i in 0..n {
            let d = cursor.try_read_varint()?;
            prev = if i == 0 { d } else { prev.wrapping_add(d) };
            out.push(prev as usize);
        }
    } else {
        for _ in 0..n {
            out.push(read_count(cursor, flags)?);
        }
    }
    Ok(out)
}

/// A decoded `(pointer, indices, values)` compressed triple, as carried
/// by the CFS wire message.
pub type UnpackedTriple = (Vec<usize>, Vec<usize>, Vec<f64>);

/// Pack a `(pointer, indices, values)` compressed triple — the CFS wire
/// message — into `buf` under `policy`.
///
/// The policy's codec plans the message's negotiation byte (from
/// `index_bound`, the exclusive bound on travelling indices, and the
/// streams themselves), writes its header, then the pointer + index
/// streams and the value stream. Every format appends exactly
/// `pointer.len() + 2 * nnz` logical elements, so `T_Data` charges are
/// format-independent.
pub fn pack_triple_into(
    buf: &mut PackBuffer,
    pointer: &[usize],
    indices: &[usize],
    values: &[f64],
    index_bound: usize,
    policy: &WirePolicy,
) {
    debug_assert_eq!(indices.len(), values.len());
    let codec = codec_for(policy.format);
    let desc = codec.plan(index_bound, pointer, indices, values, policy);
    codec.begin_message(buf, desc);
    codec.encode_indices(buf, pointer, indices, desc);
    codec.encode_values(buf, values, desc);
}

/// Unpack a triple written by [`pack_triple_into`] for an array with
/// `nsegments` outer segments. Returns `(pointer, indices, values)`.
///
/// `format` is the *receiver's* format; the header names the codec that
/// actually wrote the stream (an older sender's format under
/// mixed-version negotiation). The cursor must be exhausted afterwards
/// by the caller if trailing bytes are an error at its layer (scheme
/// unpackers check this).
pub fn unpack_triple(
    cursor: &mut UnpackCursor<'_>,
    nsegments: usize,
    format: WireFormat,
) -> Result<UnpackedTriple, SparsedistError> {
    let head = codec_for(format).open_message(cursor)?;
    let (pointer, indices) = head.codec.decode_indices(cursor, nsegments, head.desc)?;
    let nnz = pointer.last().copied().unwrap_or(0);
    let values = head.codec.decode_values(cursor, nnz, head.desc)?;
    Ok((pointer, indices, values))
}

/// Pack a bare value stream (the SFC wire message — dense local rows,
/// no index side) into `buf` under `policy`.
pub fn pack_values_into(buf: &mut PackBuffer, values: &[f64], policy: &WirePolicy) {
    let codec = codec_for(policy.format);
    let desc = codec.plan(0, &[], &[], values, policy);
    codec.begin_message(buf, desc);
    codec.encode_values(buf, values, desc);
}

/// Unpack `n` values written by [`pack_values_into`].
pub fn unpack_values(
    cursor: &mut UnpackCursor<'_>,
    n: usize,
    format: WireFormat,
) -> Result<Vec<f64>, SparsedistError> {
    let head = codec_for(format).open_message(cursor)?;
    head.codec.decode_values(cursor, n, head.desc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig7_triple() -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        // CRS of the paper's Figure 2 array restricted to one part:
        // 3 segments, 5 nonzeros, sorted indices within each segment.
        (
            vec![0, 2, 2, 5],
            vec![1, 6, 0, 3, 7],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
    }

    #[test]
    fn negotiate_picks_flags_from_field_bound() {
        assert_eq!(negotiate(0), FLAG_DELTA | FLAG_IDX32);
        assert_eq!(negotiate(u32::MAX as usize), FLAG_DELTA | FLAG_IDX32);
        assert_eq!(negotiate(u32::MAX as usize + 1), FLAG_DELTA);
    }

    #[test]
    fn header_round_trip_and_rejection() {
        let mut b = PackBuffer::new();
        write_header(&mut b, FLAG_DELTA | FLAG_IDX32);
        assert_eq!(b.elem_count(), 0, "header bytes are framing, not elements");
        assert_eq!(b.byte_len(), HEADER_LEN);
        assert_eq!(
            read_header(&mut b.cursor()).unwrap(),
            FLAG_DELTA | FLAG_IDX32
        );

        // Wrong magic.
        let mut bad = PackBuffer::new();
        bad.push_raw(&[b'X', b'2', 0]);
        assert_eq!(
            read_header(&mut bad.cursor()),
            Err(CompressError::WireHeader {
                found: [b'X', b'2', 0]
            })
        );
        // Unknown flag bits.
        let mut bad = PackBuffer::new();
        bad.push_raw(&[b'S', b'2', 0b100]);
        assert!(read_header(&mut bad.cursor()).is_err());
        // Too short: found bytes reported zero-padded.
        let mut short = PackBuffer::new();
        short.push_raw(b"S");
        assert_eq!(
            read_header(&mut short.cursor()),
            Err(CompressError::WireHeader {
                found: [b'S', 0, 0]
            })
        );
    }

    #[test]
    fn v2_reader_rejects_v3_magic() {
        // A v2-only receiver must not misread a v3 stream: the magic
        // differs in the version byte and is reported back typed.
        let mut b = PackBuffer::new();
        b.push_raw(&[b'S', b'3', 0b110]);
        assert_eq!(
            read_header(&mut b.cursor()),
            Err(CompressError::WireHeader {
                found: [b'S', b'3', 0b110]
            })
        );
        assert!(codec_for(WireFormat::V2)
            .open_message(&mut b.cursor())
            .is_err());
    }

    #[test]
    fn count_fields_follow_idx32() {
        for flags in [0, FLAG_IDX32] {
            let mut b = PackBuffer::new();
            push_count(&mut b, 7, flags);
            let slot = push_count_placeholder(&mut b, flags);
            patch_count(&mut b, slot, 99, flags).unwrap();
            let width = if flags & FLAG_IDX32 != 0 { 4 } else { 8 };
            assert_eq!(b.byte_len(), 2 * width);
            assert_eq!(b.elem_count(), 2);
            let mut c = b.cursor();
            assert_eq!(read_count(&mut c, flags).unwrap(), 7);
            assert_eq!(read_count(&mut c, flags).unwrap(), 99);
        }
    }

    #[test]
    fn monotone_run_round_trips_under_every_flag_combo() {
        let run = vec![0usize, 0, 3, 3, 10, 150, 16_500];
        for flags in [0, FLAG_IDX32, FLAG_DELTA, FLAG_DELTA | FLAG_IDX32] {
            let mut b = PackBuffer::new();
            push_monotone_run(&mut b, &run, flags);
            assert_eq!(b.elem_count(), run.len() as u64, "flags {flags:#04x}");
            let got = read_monotone_run(&mut b.cursor(), run.len(), flags).unwrap();
            assert_eq!(got, run, "flags {flags:#04x}");
        }
        // Delta encoding of small steps is ~1 byte per field.
        let mut b = PackBuffer::new();
        push_monotone_run(&mut b, &run, FLAG_DELTA);
        assert!(
            b.byte_len() <= 9,
            "7 small deltas should take ≤9 bytes, got {}",
            b.byte_len()
        );
    }

    #[test]
    fn index_runs_reset_at_segment_boundaries() {
        // Two sorted segments; the second starts below where the first
        // ended, which only decodes correctly if reset() re-arms the
        // absolute encoding.
        let segs: [&[usize]; 2] = [&[5, 6, 900], &[2, 4]];
        for flags in [0, FLAG_IDX32, FLAG_DELTA, FLAG_DELTA | FLAG_IDX32] {
            let mut b = PackBuffer::new();
            let mut w = IndexRunWriter::new(flags);
            for seg in segs {
                w.reset();
                for &v in seg {
                    w.push(&mut b, v);
                }
            }
            let mut c = b.cursor();
            let mut r = IndexRunReader::new(flags);
            for seg in segs {
                r.reset();
                for &v in seg {
                    assert_eq!(r.next(&mut c).unwrap(), v, "flags {flags:#04x}");
                }
            }
            assert!(c.is_exhausted());
        }
    }

    #[test]
    fn triple_round_trips_in_every_format() {
        let (ro, co, vl) = fig7_triple();
        for format in [WireFormat::V1, WireFormat::V2, WireFormat::V3] {
            let mut b = PackBuffer::new();
            pack_triple_into(&mut b, &ro, &co, &vl, 8, &WirePolicy::of(format));
            assert_eq!(
                b.elem_count(),
                (ro.len() + 2 * vl.len()) as u64,
                "element count must be format-independent ({format})"
            );
            let mut c = b.cursor();
            let (ro2, co2, vl2) = unpack_triple(&mut c, ro.len() - 1, format).unwrap();
            assert!(c.is_exhausted(), "{format}");
            assert_eq!(
                (ro2, co2, vl2),
                (ro.clone(), co.clone(), vl.clone()),
                "{format}"
            );
        }
    }

    #[test]
    fn v2_triple_is_smaller_and_v1_matches_seed_layout() {
        let (ro, co, vl) = fig7_triple();
        let mut v1 = PackBuffer::new();
        pack_triple_into(&mut v1, &ro, &co, &vl, 8, &WirePolicy::of(WireFormat::V1));
        // Seed layout: every element is 8 LE bytes in RO, CO, VL order.
        let mut seed = PackBuffer::new();
        seed.push_usize_slice(&ro);
        seed.push_usize_slice(&co);
        seed.push_f64_slice(&vl);
        assert_eq!(v1, seed);

        let mut v2 = PackBuffer::new();
        pack_triple_into(&mut v2, &ro, &co, &vl, 8, &WirePolicy::of(WireFormat::V2));
        assert!(
            v2.byte_len() < v1.byte_len(),
            "v2 ({}) must be smaller than v1 ({})",
            v2.byte_len(),
            v1.byte_len()
        );
        // Values dominate: 5 f64s = 40 bytes; header 3 + 4 pointer deltas
        // + 5 single-byte index varints = 12.
        assert_eq!(v2.byte_len(), 3 + 4 + 5 + 40);
    }

    #[test]
    fn capped_policy_is_byte_identical_to_the_peer_format() {
        // A v3 sender talking to a v2-capable peer produces exactly the
        // stream a native v2 sender would.
        let (ro, co, vl) = fig7_triple();
        let v3_capped = WirePolicy::of(WireFormat::V3).capped(WireFormat::V2);
        assert_eq!(v3_capped.format, WireFormat::V2);
        let mut capped = PackBuffer::new();
        pack_triple_into(&mut capped, &ro, &co, &vl, 8, &v3_capped);
        let mut native = PackBuffer::new();
        pack_triple_into(
            &mut native,
            &ro,
            &co,
            &vl,
            8,
            &WirePolicy::of(WireFormat::V2),
        );
        assert_eq!(capped, native);
        // And the other direction never upgrades.
        assert_eq!(
            effective_format(WireFormat::V1, WireFormat::V3),
            WireFormat::V1
        );
        assert_eq!(
            effective_format(WireFormat::V3, WireFormat::V1),
            WireFormat::V1
        );
        assert_eq!(
            effective_format(WireFormat::V3, WireFormat::V3),
            WireFormat::V3
        );
    }

    #[test]
    fn value_streams_round_trip_in_every_format() {
        let values: Vec<f64> = (0..40).map(|i| (i % 7) as f64 * 0.5).collect();
        for format in [WireFormat::V1, WireFormat::V2, WireFormat::V3] {
            let mut b = PackBuffer::new();
            pack_values_into(&mut b, &values, &WirePolicy::of(format));
            assert_eq!(b.elem_count(), values.len() as u64, "{format}");
            let mut c = b.cursor();
            let got = unpack_values(&mut c, values.len(), format).unwrap();
            assert!(c.is_exhausted(), "{format}");
            assert_eq!(got, values, "{format}");
        }
    }

    #[test]
    fn truncated_v2_stream_is_an_error_not_a_panic() {
        let (ro, co, vl) = fig7_triple();
        let mut b = PackBuffer::new();
        pack_triple_into(&mut b, &ro, &co, &vl, 8, &WirePolicy::of(WireFormat::V2));
        let bytes = b.as_bytes();
        for cut in [0, 1, 2, 5, bytes.len() - 1] {
            let mut t = PackBuffer::new();
            t.push_raw(&bytes[..cut]);
            assert!(
                unpack_triple(&mut t.cursor(), ro.len() - 1, WireFormat::V2).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn wire_format_labels() {
        assert_eq!(WireFormat::default(), WireFormat::V1);
        assert_eq!(WireFormat::V1.to_string(), "v1");
        assert_eq!(WireFormat::V2.label(), "v2");
        assert_eq!(WireFormat::V3.label(), "v3");
        assert!(WireFormat::V2.version() < WireFormat::V3.version());
    }
}
