//! The workspace error hierarchy.
//!
//! Scheme drivers ([`crate::schemes::run_scheme`] and friends) run SPMD
//! closures whose communication can now fail — the simulated multicomputer
//! injects faults, peers can be declared dead, and retry budgets run out.
//! Everything those paths can hit funnels into [`SparsedistError`] so
//! callers (the CLI, examples, tests) see one `Result` type instead of a
//! panic.

use crate::compress::CompressError;
use sparsedist_multicomputer::engine::CommError;
use sparsedist_multicomputer::pack::{PatchError, UnpackError};
use std::fmt;

/// Any failure a distribution, gather or redistribution run can report.
#[derive(Debug, Clone, PartialEq)]
pub enum SparsedistError {
    /// A communication failure from the simulated interconnect (retries
    /// exhausted, dead peer, early-exit peer).
    Comm(CommError),
    /// A received stream failed structural validation (CRS/CCS/ED
    /// invariants).
    Compress(CompressError),
    /// A received buffer was shorter than its own framing describes.
    Unpack(UnpackError),
    /// A pack-buffer back-patch landed outside the buffer (ED encoder).
    Patch(PatchError),
    /// The scheme's source rank is dead under the fault plan — there is no
    /// surviving copy of the global array to distribute from.
    SourceDead {
        /// The dead source rank.
        rank: usize,
    },
    /// Mid-stream recovery failed: a destination died and no surviving
    /// rank remains to re-home its parts onto.
    NoSurvivors {
        /// The part that could not be re-homed.
        part: usize,
    },
    /// The requested machine size exceeds what any engine backend can
    /// schedule — above the event loop's ceiling there is no backend to
    /// fall back to, so the request is rejected up front instead of
    /// failing inside the scheduler (or, worse, at the OS thread limit).
    MachineTooLarge {
        /// The requested processor count.
        procs: usize,
        /// The largest machine any engine supports.
        max: usize,
    },
    /// A host filesystem operation failed (trace export, ledger dumps).
    /// Carries the path and the rendered `io::Error` — `std::io::Error` is
    /// neither `Clone` nor `PartialEq`, which this enum requires.
    Io {
        /// The path the operation touched.
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
}

impl SparsedistError {
    /// Wrap an `io::Error` from an operation on `path`.
    pub fn io(path: impl Into<String>, err: std::io::Error) -> Self {
        SparsedistError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for SparsedistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparsedistError::Comm(e) => write!(f, "communication failed: {e}"),
            SparsedistError::Compress(e) => write!(f, "invalid compressed stream: {e}"),
            SparsedistError::Unpack(e) => write!(f, "malformed buffer: {e}"),
            SparsedistError::Patch(e) => write!(f, "encode back-patch failed: {e}"),
            SparsedistError::SourceDead { rank } => {
                write!(f, "source rank {rank} is dead; nothing can be distributed")
            }
            SparsedistError::NoSurvivors { part } => {
                write!(f, "no surviving rank left to re-home part {part} onto")
            }
            SparsedistError::MachineTooLarge { procs, max } => {
                write!(
                    f,
                    "--procs {procs} exceeds the largest supported machine ({max} ranks)"
                )
            }
            SparsedistError::Io { path, message } => {
                write!(f, "{path}: {message}")
            }
        }
    }
}

impl std::error::Error for SparsedistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparsedistError::Comm(e) => Some(e),
            SparsedistError::Compress(e) => Some(e),
            SparsedistError::Unpack(e) => Some(e),
            SparsedistError::Patch(e) => Some(e),
            SparsedistError::SourceDead { .. } => None,
            SparsedistError::NoSurvivors { .. } => None,
            SparsedistError::MachineTooLarge { .. } => None,
            SparsedistError::Io { .. } => None,
        }
    }
}

impl From<CommError> for SparsedistError {
    fn from(e: CommError) -> Self {
        SparsedistError::Comm(e)
    }
}

impl From<CompressError> for SparsedistError {
    fn from(e: CompressError) -> Self {
        SparsedistError::Compress(e)
    }
}

impl From<UnpackError> for SparsedistError {
    fn from(e: UnpackError) -> Self {
        SparsedistError::Unpack(e)
    }
}

impl From<PatchError> for SparsedistError {
    fn from(e: PatchError) -> Self {
        SparsedistError::Patch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_the_inner_story() {
        let e = SparsedistError::from(CommError::PeerDead { rank: 3 });
        assert!(e.to_string().contains("rank 3 is dead"), "{e}");
        let e = SparsedistError::SourceDead { rank: 0 };
        assert!(e.to_string().contains("source rank 0"), "{e}");
        let e = SparsedistError::MachineTooLarge {
            procs: 200_000,
            max: 131_072,
        };
        assert!(e.to_string().contains("--procs 200000"), "{e}");
        assert!(e.to_string().contains("131072"), "{e}");
    }

    #[test]
    fn io_variant_carries_path_and_message() {
        let e = SparsedistError::io(
            "/tmp/trace.json",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        assert!(e.to_string().contains("/tmp/trace.json"), "{e}");
        assert!(e.to_string().contains("denied"), "{e}");
        assert_eq!(e.clone(), e);
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = SparsedistError::from(CommError::Disconnected { peer: 1 });
        assert!(e.source().is_some());
        assert!(SparsedistError::SourceDead { rank: 0 }.source().is_none());
    }
}
