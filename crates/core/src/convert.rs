//! Index conversion at the receiver — the paper's Cases 3.2.1–3.2.3 (CFS)
//! and 3.3.1–3.3.3 (ED).
//!
//! In the CFS and ED schemes the source compresses/encodes **global**
//! indices (it reads straight out of the global array). Whether a receiver
//! must convert them to local indices depends only on which index kind
//! travels and whether the partition splits that dimension:
//!
//! | partition | CRS (column indices travel) | CCS (row indices travel) |
//! |---|---|---|
//! | row    | Case x.1 — none            | Case x.2 — subtract row base |
//! | column | Case x.2′ — subtract col base | Case x.1′ — none |
//! | mesh   | Case x.3 — subtract col base | Case x.3′ — subtract row base |
//! | cyclic | general mapping            | general mapping |
//!
//! For the block partitions the conversion is the paper's "subtract `N`"
//! (the bases accumulate over preceding processors); cyclic partitions need
//! the general `global → local` mapping, charged at the same one operation
//! per converted index.

use crate::compress::CompressKind;
use crate::opcount::OpCounter;
use crate::partition::Partition;

/// Which conversion a `(partition, compression)` pair requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConversionCase {
    /// The travelling indices are already local (paper Cases 3.2.1/3.3.1).
    None,
    /// Convert travelling **column** indices via
    /// [`Partition::col_to_local`] (Cases 3.2.2′/3.2.3/3.3.2′/3.3.3 and the
    /// cyclic generalisation).
    ConvertCols,
    /// Convert travelling **row** indices via [`Partition::row_to_local`]
    /// (Cases 3.2.2/3.3.2 and mesh/cyclic variants).
    ConvertRows,
}

/// Determine the conversion a receiver must perform.
pub fn conversion_case(part: &dyn Partition, kind: CompressKind) -> ConversionCase {
    match kind {
        CompressKind::Crs if part.splits_cols() => ConversionCase::ConvertCols,
        CompressKind::Ccs if part.splits_rows() => ConversionCase::ConvertRows,
        _ => ConversionCase::None,
    }
}

/// The paper's case number for a scheme family (`"3.2"` for CFS, `"3.3"`
/// for ED) on one of the three block partitions; `None` for partitions the
/// paper does not enumerate (cyclic).
pub fn paper_case_label(family: &str, partition_name: &str, kind: CompressKind) -> Option<String> {
    let case = match (partition_name, kind) {
        ("row", CompressKind::Crs) | ("column", CompressKind::Ccs) => "1",
        ("row", CompressKind::Ccs) | ("column", CompressKind::Crs) => "2",
        ("mesh", _) => "3",
        _ => return None,
    };
    Some(format!("Case {family}.{case}"))
}

/// A receiver-side converter for the travelling indices of part `pid`.
///
/// Bundles the case decision so the scheme drivers convert (and charge one
/// op) only when the paper says a conversion happens.
pub struct IndexConverter<'a> {
    part: &'a dyn Partition,
    pid: usize,
    case: ConversionCase,
}

impl<'a> IndexConverter<'a> {
    /// Build the converter for `pid` under the given compression method.
    pub fn new(part: &'a dyn Partition, pid: usize, kind: CompressKind) -> Self {
        IndexConverter {
            part,
            pid,
            case: conversion_case(part, kind),
        }
    }

    /// The case in force.
    pub fn case(&self) -> ConversionCase {
        self.case
    }

    /// Convert one travelling index to a local index, charging one
    /// operation iff a conversion is actually performed.
    #[inline]
    pub fn to_local(&self, travelling: usize, ops: &mut OpCounter) -> usize {
        match self.case {
            ConversionCase::None => travelling,
            ConversionCase::ConvertCols => {
                ops.tick();
                self.part.col_to_local(self.pid, travelling)
            }
            ConversionCase::ConvertRows => {
                ops.tick();
                self.part.row_to_local(self.pid, travelling)
            }
        }
    }

    /// The local bound the converted indices must respect: the local
    /// column count for CRS streams, the local row count for CCS streams —
    /// or the global bound when no conversion happens along that dimension.
    pub fn local_index_bound(&self, kind: CompressKind) -> usize {
        let (lrows, lcols) = self.part.local_shape(self.pid);
        let (grows, gcols) = self.part.global_shape();
        match kind {
            CompressKind::Crs => {
                if self.part.splits_cols() {
                    lcols
                } else {
                    gcols
                }
            }
            CompressKind::Ccs => {
                if self.part.splits_rows() {
                    lrows
                } else {
                    grows
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{ColBlock, ColCyclic, Mesh2D, RowBlock, RowCyclic};

    #[test]
    fn case_table_matches_paper() {
        let row = RowBlock::new(8, 8, 4);
        let col = ColBlock::new(8, 8, 4);
        let mesh = Mesh2D::new(8, 8, 2, 2);
        // Case 3.2.1 / 3.3.1: row+CRS, column+CCS → no conversion.
        assert_eq!(
            conversion_case(&row, CompressKind::Crs),
            ConversionCase::None
        );
        assert_eq!(
            conversion_case(&col, CompressKind::Ccs),
            ConversionCase::None
        );
        // Case 3.2.2 / 3.3.2: row+CCS subtracts rows; column+CRS subtracts
        // columns.
        assert_eq!(
            conversion_case(&row, CompressKind::Ccs),
            ConversionCase::ConvertRows
        );
        assert_eq!(
            conversion_case(&col, CompressKind::Crs),
            ConversionCase::ConvertCols
        );
        // Case 3.2.3 / 3.3.3: mesh converts both ways depending on method.
        assert_eq!(
            conversion_case(&mesh, CompressKind::Crs),
            ConversionCase::ConvertCols
        );
        assert_eq!(
            conversion_case(&mesh, CompressKind::Ccs),
            ConversionCase::ConvertRows
        );
    }

    #[test]
    fn single_processor_never_converts() {
        let row = RowBlock::new(8, 8, 1);
        assert_eq!(
            conversion_case(&row, CompressKind::Ccs),
            ConversionCase::None
        );
    }

    #[test]
    fn paper_case_labels() {
        assert_eq!(
            paper_case_label("3.2", "row", CompressKind::Crs).as_deref(),
            Some("Case 3.2.1")
        );
        assert_eq!(
            paper_case_label("3.3", "row", CompressKind::Ccs).as_deref(),
            Some("Case 3.3.2")
        );
        assert_eq!(
            paper_case_label("3.2", "mesh", CompressKind::Ccs).as_deref(),
            Some("Case 3.2.3")
        );
        assert_eq!(
            paper_case_label("3.2", "row-cyclic", CompressKind::Crs),
            None
        );
    }

    #[test]
    fn paper_example_case_322_subtract_three() {
        // §3.2's worked example: row partition of the 10×8 array, CCS, P1.
        // P1 owns global rows 3..6; the paper says "subtract 3".
        let part = RowBlock::new(10, 8, 4);
        let conv = IndexConverter::new(&part, 1, CompressKind::Ccs);
        let mut ops = OpCounter::new();
        assert_eq!(conv.to_local(3, &mut ops), 0);
        assert_eq!(conv.to_local(5, &mut ops), 2);
        assert_eq!(ops.get(), 2); // each conversion charged one op
    }

    #[test]
    fn no_conversion_charges_nothing() {
        let part = RowBlock::new(10, 8, 4);
        let conv = IndexConverter::new(&part, 1, CompressKind::Crs);
        let mut ops = OpCounter::new();
        assert_eq!(conv.to_local(6, &mut ops), 6);
        assert_eq!(ops.get(), 0);
    }

    #[test]
    fn mesh_conversion_uses_grid_bases() {
        // 8×8 over a 2×2 grid; P_{1,1} (rank 3) owns rows 4..8, cols 4..8.
        let part = Mesh2D::new(8, 8, 2, 2);
        let mut ops = OpCounter::new();
        let crs = IndexConverter::new(&part, 3, CompressKind::Crs);
        assert_eq!(crs.to_local(5, &mut ops), 1); // column 5 → local col 1
        let ccs = IndexConverter::new(&part, 3, CompressKind::Ccs);
        assert_eq!(ccs.to_local(7, &mut ops), 3); // row 7 → local row 3
    }

    #[test]
    fn cyclic_general_mapping() {
        let part = RowCyclic::new(10, 8, 4);
        let conv = IndexConverter::new(&part, 2, CompressKind::Ccs);
        let mut ops = OpCounter::new();
        // Global row 6 lives on processor 2 as local row 6/4 = 1.
        assert_eq!(conv.to_local(6, &mut ops), 1);
        let colpart = ColCyclic::new(8, 9, 3);
        let conv = IndexConverter::new(&colpart, 1, CompressKind::Crs);
        assert_eq!(conv.to_local(7, &mut ops), 2);
    }

    #[test]
    fn local_index_bounds() {
        let part = RowBlock::new(10, 8, 4);
        let crs = IndexConverter::new(&part, 0, CompressKind::Crs);
        assert_eq!(crs.local_index_bound(CompressKind::Crs), 8); // global cols
        let ccs = IndexConverter::new(&part, 0, CompressKind::Ccs);
        assert_eq!(ccs.local_index_bound(CompressKind::Ccs), 3); // local rows
        let mesh = Mesh2D::new(8, 8, 2, 2);
        let m = IndexConverter::new(&mesh, 3, CompressKind::Crs);
        assert_eq!(m.local_index_bound(CompressKind::Crs), 4);
    }
}
