//! Closed-form cost models for the lifecycle extensions (gather,
//! redistribution, multi-source ED), in the same `T_Startup`/`T_Data`/
//! `T_Operation` vocabulary as the paper's Tables 1–2.
//!
//! Like [`super::predict`], these are validated against instrumented runs
//! in this module's tests — near-exactly on divisible sizes, because the
//! schemes charge counted operations, not formulas.

use super::CostInput;
use crate::gather::GatherStrategy;

use sparsedist_multicomputer::{MachineModel, VirtualTime};

/// Predicted source-side busy time of a gather (`GatherRun::t_gather`):
/// the source's own pack + send + everyone's unpacking and the final
/// global compression, all of which land on rank 0's clock.
///
/// Row partition, CRS locals (the configuration the validation tests pin).
pub fn predict_gather_row_crs(
    strategy: GatherStrategy,
    inp: &CostInput,
    m: &MachineModel,
) -> VirtualTime {
    let n = inp.n as f64;
    let p = inp.p as f64;
    let s = inp.s;
    let nnz = s * n * n;
    let np = (inp.n.div_ceil(inp.p)) as f64;
    // Rank 0's own send (its message to itself) and pack.
    let (own_pack, own_wire) = match strategy {
        // Expand its local dense (np·n ops), ship np·n elements.
        GatherStrategy::Dense => (np * n, np * n),
        // Pack pointer + indices + values: (np+1) + 2·nnz/p each.
        GatherStrategy::Compressed => (np + 1.0 + 2.0 * nnz / p, np + 1.0 + 2.0 * nnz / p),
        // Counts + pairs: np + 2·nnz/p.
        GatherStrategy::Encoded => (np + 2.0 * nnz / p, np + 2.0 * nnz / p),
    };
    // Rank 0 unpacks all p messages into triplets.
    let unpack = match strategy {
        // Scan n² received cells, 2 extra ops per nonzero found.
        GatherStrategy::Dense => n * n + 2.0 * nnz,
        // Pointers (n + p) + indices/values (2·nnz) + placement (nnz).
        GatherStrategy::Compressed => (n + p) + 2.0 * nnz + nnz,
        // Counts (n) + pairs (2·nnz) + placement (nnz).
        GatherStrategy::Encoded => n + 2.0 * nnz + nnz,
    };
    // Build the global CRS from triplets by counting sort:
    // count (nnz) + prefix (n+1) + place (nnz) + within-row order (nnz).
    let build = 3.0 * nnz + n + 1.0;
    VirtualTime::from_micros(
        m.t_startup + own_wire * m.t_data + (own_pack + unpack + build) * m.t_op,
    )
}

/// Predicted per-rank maximum busy time of a Direct redistribution of a
/// uniformly sparse array (`RedistRun::t_total`), row → any partition.
///
/// Every rank: buckets its `nnz/p` triplets (2 ops each), packs them
/// (3 ops each), sends `p` messages carrying `1 + 3·nnz/p` elements
/// total, unpacks its incoming `nnz/p` triplets (3 ops each), converts
/// them to local coordinates (2 ops each) and counting-sorts them
/// (3·nnz/p + segs + 2 ops).
pub fn predict_redistribute_direct(
    inp: &CostInput,
    out_segs: usize,
    m: &MachineModel,
) -> VirtualTime {
    let n = inp.n as f64;
    let p = inp.p as f64;
    let nnz_p = inp.s * n * n / p; // per-rank nonzeros (uniform)
    let bucket = 2.0 * nnz_p;
    let pack = 3.0 * nnz_p;
    let wire = p * m.t_startup + (p + 3.0 * nnz_p) * m.t_data;
    let unpack = 3.0 * nnz_p;
    let build = 2.0 * nnz_p + 3.0 * nnz_p + out_segs as f64 + 2.0;
    VirtualTime::from_micros(wire + (bucket + pack + unpack + build) * m.t_op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::CompressKind;
    use crate::gather::gather_global;
    use crate::partition::{Mesh2D, RowBlock};
    use crate::redistribute::{redistribute, RedistStrategy};
    use crate::schemes::{run_scheme, SchemeKind};
    use sparsedist_multicomputer::Multicomputer;

    /// Deterministic uniform-ish array with an exact nonzero count.
    fn uniform(n: usize, nnz: usize) -> crate::dense::Dense2D {
        let mut a = crate::dense::Dense2D::zeros(n, n);
        let mut placed = 0;
        let mut t = 0usize;
        while placed < nnz {
            let (r, c) = ((t * 7 + t / n) % n, (t * 13 + 3) % n);
            if a.get(r, c) == 0.0 {
                a.set(r, c, 1.0 + t as f64);
                placed += 1;
            }
            t += 1;
        }
        a
    }

    #[test]
    fn gather_predictions_track_measurement() {
        let n = 80;
        let p = 4;
        let a = uniform(n, n * n / 10);
        let part = RowBlock::new(n, n, p);
        let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
        let run = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Crs).unwrap();
        let inp = CostInput::uniform(n, p, a.sparse_ratio());
        for strategy in [
            GatherStrategy::Dense,
            GatherStrategy::Compressed,
            GatherStrategy::Encoded,
        ] {
            let g =
                gather_global(&machine, &run.locals, &part, CompressKind::Crs, strategy).unwrap();
            let meas = g.t_gather().as_micros();
            let pred = predict_gather_row_crs(strategy, &inp, &MachineModel::ibm_sp2()).as_micros();
            let err = (pred - meas).abs() / meas;
            // Per-part nonzero fluctuation shifts rank 0's own slice by a
            // few percent; the model captures the rest.
            assert!(
                err < 0.05,
                "{strategy:?}: pred {pred} meas {meas} err {err}"
            );
        }
    }

    #[test]
    fn gather_ordering_predicted_and_measured_agree() {
        let inp = CostInput::uniform(400, 8, 0.1);
        let m = MachineModel::ibm_sp2();
        let dense = predict_gather_row_crs(GatherStrategy::Dense, &inp, &m);
        let comp = predict_gather_row_crs(GatherStrategy::Compressed, &inp, &m);
        let enc = predict_gather_row_crs(GatherStrategy::Encoded, &inp, &m);
        assert!(enc < comp, "encoded {enc} !< compressed {comp}");
        assert!(comp < dense, "compressed {comp} !< dense {dense}");
    }

    #[test]
    fn redistribute_prediction_tracks_measurement() {
        let n = 80;
        let p = 4;
        let a = uniform(n, n * n / 10);
        let from = RowBlock::new(n, n, p);
        let to = Mesh2D::new(n, n, 2, 2);
        let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
        let owned = run_scheme(SchemeKind::Ed, &machine, &a, &from, CompressKind::Crs)
            .unwrap()
            .locals;
        let run = redistribute(
            &machine,
            &owned,
            &from,
            &to,
            CompressKind::Crs,
            RedistStrategy::Direct,
        )
        .unwrap();
        let inp = CostInput::uniform(n, p, a.sparse_ratio());
        // Target mesh part: 40 rows → 40 CRS segments.
        let pred = predict_redistribute_direct(&inp, 40, &MachineModel::ibm_sp2()).as_micros();
        let meas = run.t_total().as_micros();
        let err = (pred - meas).abs() / meas;
        // The uniform model ignores per-rank imbalance in the actual
        // placement; allow a looser band.
        assert!(err < 0.15, "pred {pred} meas {meas} err {err}");
    }
}
