//! The paper's Remarks 1–5 as executable predicates.
//!
//! Each function returns whether the paper's stated condition holds for a
//! given sparse ratio and machine model; the crossover tests and the
//! `remarks_sweep` bench check the predicates against both the closed-form
//! model and instrumented scheme runs.

use sparsedist_multicomputer::MachineModel;

/// Remark 2 condition: the CFS scheme's distribution time beats SFC's
/// (row partition) iff `T_Data > (2s / (1 − 2s)) · T_Operation`.
pub fn remark2_cfs_dist_beats_sfc(s: f64, m: &MachineModel) -> bool {
    assert!(s < 0.5, "the condition is stated for s < 0.5");
    m.t_data > (2.0 * s / (1.0 - 2.0 * s)) * m.t_op
}

/// Remark 5, row partition: the ED scheme beats SFC overall iff
/// `T_Data > ((1 + 3s) / (1 − 2s)) · T_Operation`.
pub fn remark5_row_ed_beats_sfc(s: f64, m: &MachineModel) -> bool {
    assert!(s < 0.5, "the condition is stated for s < 0.5");
    m.t_data > ((1.0 + 3.0 * s) / (1.0 - 2.0 * s)) * m.t_op
}

/// Remark 5, row partition: the CFS scheme beats SFC overall iff
/// `T_Data > ((1 + 5s) / (1 − 2s)) · T_Operation`.
pub fn remark5_row_cfs_beats_sfc(s: f64, m: &MachineModel) -> bool {
    assert!(s < 0.5, "the condition is stated for s < 0.5");
    m.t_data > ((1.0 + 5.0 * s) / (1.0 - 2.0 * s)) * m.t_op
}

/// Remark 5, column/mesh partitions: ED beats SFC overall iff
/// `T_Data > (3s / (1 − 2s)) · T_Operation`.
pub fn remark5_colmesh_ed_beats_sfc(s: f64, m: &MachineModel) -> bool {
    assert!(s < 0.5, "the condition is stated for s < 0.5");
    m.t_data > (3.0 * s / (1.0 - 2.0 * s)) * m.t_op
}

/// Remark 5, column/mesh partitions: CFS beats SFC overall iff
/// `T_Data > (5s / (1 − 2s)) · T_Operation`.
pub fn remark5_colmesh_cfs_beats_sfc(s: f64, m: &MachineModel) -> bool {
    assert!(s < 0.5, "the condition is stated for s < 0.5");
    m.t_data > (5.0 * s / (1.0 - 2.0 * s)) * m.t_op
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::CompressKind::Crs;
    use crate::cost::{predict, CostInput, PartitionMethod};
    use crate::schemes::SchemeKind::{Cfs, Ed, Sfc};

    fn model(ratio: f64) -> MachineModel {
        MachineModel::new(40.0, 0.1 * ratio, 0.1)
    }

    #[test]
    fn paper_numbers_at_s_point_one() {
        // §5.1: on the SP2 (ratio ≈ 1.2) the row-partition Remark 5
        // conditions need 13/8 and 15/8 — not satisfied; Remark 2 needs
        // 1/4 — satisfied. §5.2: the column conditions 3/8 and 5/8 are
        // satisfied.
        let sp2 = MachineModel::ibm_sp2();
        assert!(remark2_cfs_dist_beats_sfc(0.1, &sp2));
        assert!(!remark5_row_ed_beats_sfc(0.1, &sp2));
        assert!(!remark5_row_cfs_beats_sfc(0.1, &sp2));
        assert!(remark5_colmesh_ed_beats_sfc(0.1, &sp2));
        assert!(remark5_colmesh_cfs_beats_sfc(0.1, &sp2));
    }

    #[test]
    fn thresholds_are_the_paper_fractions() {
        // At s = 0.1: 2s/(1-2s) = 1/4, (1+3s)/(1-2s) = 13/8,
        // (1+5s)/(1-2s) = 15/8, 3s/(1-2s) = 3/8, 5s/(1-2s) = 5/8.
        let eps = 1e-9;
        assert!(!remark2_cfs_dist_beats_sfc(0.1, &model(0.25 - eps)));
        assert!(remark2_cfs_dist_beats_sfc(0.1, &model(0.25 + 1e-6)));
        assert!(!remark5_row_ed_beats_sfc(0.1, &model(13.0 / 8.0 - 1e-6)));
        assert!(remark5_row_ed_beats_sfc(0.1, &model(13.0 / 8.0 + 1e-6)));
        assert!(!remark5_row_cfs_beats_sfc(0.1, &model(15.0 / 8.0 - 1e-6)));
        assert!(remark5_row_cfs_beats_sfc(0.1, &model(15.0 / 8.0 + 1e-6)));
        assert!(remark5_colmesh_ed_beats_sfc(0.1, &model(3.0 / 8.0 + 1e-6)));
        assert!(remark5_colmesh_cfs_beats_sfc(0.1, &model(5.0 / 8.0 + 1e-6)));
    }

    #[test]
    fn remark5_agrees_with_closed_forms_asymptotically() {
        // For large n the Remark 5 predicate must agree with a direct
        // total-cost comparison from the closed forms (the predicate drops
        // O(n) terms, so use a comfortably large n and ratios away from
        // the threshold).
        let inp = CostInput::uniform(4000, 16, 0.1);
        for ratio in [0.5, 1.0, 1.4, 1.7, 2.0, 3.0] {
            let m = model(ratio);
            let sfc = predict(Sfc, PartitionMethod::Row, Crs, &inp, &m);
            let ed = predict(Ed, PartitionMethod::Row, Crs, &inp, &m);
            let cfs = predict(Cfs, PartitionMethod::Row, Crs, &inp, &m);
            assert_eq!(
                remark5_row_ed_beats_sfc(0.1, &m),
                ed.t_total() < sfc.t_total(),
                "ED ratio {ratio}"
            );
            assert_eq!(
                remark5_row_cfs_beats_sfc(0.1, &m),
                cfs.t_total() < sfc.t_total(),
                "CFS ratio {ratio}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "s < 0.5")]
    fn dense_ratio_rejected() {
        let _ = remark2_cfs_dist_beats_sfc(0.6, &MachineModel::ibm_sp2());
    }
}
