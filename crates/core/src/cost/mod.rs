//! The paper's closed-form cost model (§4, Tables 1 and 2) and our
//! derivations for the column and mesh partitions the paper measures but —
//! "for the page limitation" — does not tabulate.
//!
//! All formulas give `T_Distribution` and `T_Compression` for an `n × n`
//! global sparse array with sparse ratio `s`, largest local sparse ratio
//! `s'`, `p` processors and a machine model `(T_Startup, T_Data,
//! T_Operation)`.
//!
//! These are *predictions*; the scheme drivers in [`crate::schemes`] charge
//! instrumented operation counts, and the test suite checks prediction
//! against measurement to a fraction of a percent on divisible sizes —
//! validating both the code and the paper's algebra.
//!
//! # Derivation sketch for the untabulated partitions
//!
//! Each formula decomposes as
//! `T_Distribution = p·T_Startup + W·T_Data + (pack + unpack')·T_Op` and
//! `T_Compression` per scheme, where
//!
//! * `W` is the wire volume in elements (dense `n²` for SFC; pointer +
//!   index + value arrays for CFS; counts + pairs for ED),
//! * `pack` is the source-side per-element packing work, `unpack'` the
//!   slowest receiver's unpacking (including index conversion where the
//!   Cases of §3.2/§3.3 require it),
//! * pointer/count array length per part is the part's row count for CRS
//!   and column count for CCS.
//!
//! For SFC on non-row partitions the dense local arrays are strided in the
//! global array, so extraction/placement costs one operation per element on
//! each side (`n²` at the source, `n²/p` at the slowest receiver); the row
//! partition ships contiguous bands at zero CPU cost (§4.1.1).

pub mod extensions;
pub mod remarks;

use crate::compress::CompressKind;
use crate::schemes::SchemeKind;
use sparsedist_multicomputer::{MachineModel, VirtualTime};

/// Problem parameters for a prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostInput {
    /// Global array dimension (the paper's arrays are `n × n`).
    pub n: usize,
    /// Number of processors.
    pub p: usize,
    /// Global sparse ratio `s`.
    pub s: f64,
    /// Largest local sparse ratio `s'`.
    pub s_max: f64,
}

impl CostInput {
    /// Input with `s' = s` (uniform sparsity, the common approximation).
    pub fn uniform(n: usize, p: usize, s: f64) -> Self {
        CostInput { n, p, s, s_max: s }
    }
}

/// A predicted cost pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeCost {
    /// Predicted `T_Distribution`.
    pub t_distribution: VirtualTime,
    /// Predicted `T_Compression`.
    pub t_compression: VirtualTime,
}

impl SchemeCost {
    /// `T_Distribution + T_Compression`.
    pub fn t_total(&self) -> VirtualTime {
        self.t_distribution + self.t_compression
    }
}

/// Which partition method a prediction is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMethod {
    /// Row partition `(Block, *)`.
    Row,
    /// Column partition `(*, Block)`.
    Column,
    /// 2-D mesh partition `(Block, Block)` on a `pr × pc` grid.
    Mesh {
        /// Grid rows.
        pr: usize,
        /// Grid columns.
        pc: usize,
    },
}

fn ceil(a: usize, b: usize) -> f64 {
    a.div_ceil(b) as f64
}

/// Predict `T_Distribution` and `T_Compression` for one scheme.
///
/// # Panics
/// Panics if a mesh method's grid does not multiply out to `inp.p`.
pub fn predict(
    scheme: SchemeKind,
    method: PartitionMethod,
    kind: CompressKind,
    inp: &CostInput,
    m: &MachineModel,
) -> SchemeCost {
    let n = inp.n as f64;
    let p = inp.p as f64;
    let (s, sm) = (inp.s, inp.s_max);
    let nnz = s * n * n; // total nonzeros
    let cells = n * n;

    // Per-part geometry: local rows/cols and the per-part pointer length's
    // segment count for each compression method.
    let (lrows, lcols) = match method {
        PartitionMethod::Row => (ceil(inp.n, inp.p), n),
        PartitionMethod::Column => (n, ceil(inp.n, inp.p)),
        PartitionMethod::Mesh { pr, pc } => {
            assert_eq!(pr * pc, inp.p, "mesh grid {pr}x{pc} != p={}", inp.p);
            (ceil(inp.n, pr), ceil(inp.n, pc))
        }
    };
    let lcells = lrows * lcols;
    let nnz_max = sm * lcells; // slowest part's nonzeros
                               // Count/pointer segments per part: rows for CRS, columns for CCS.
    let segs = match kind {
        CompressKind::Crs => lrows,
        CompressKind::Ccs => lcols,
    };
    // Does the receiver convert indices? (Cases 3.2.x / 3.3.x.)
    let converts = match (method, kind) {
        (PartitionMethod::Row, CompressKind::Crs) => false,
        (PartitionMethod::Row, CompressKind::Ccs) => true,
        (PartitionMethod::Column, CompressKind::Crs) => true,
        (PartitionMethod::Column, CompressKind::Ccs) => false,
        (PartitionMethod::Mesh { pr, .. }, CompressKind::Ccs) => pr > 1,
        (PartitionMethod::Mesh { pc, .. }, CompressKind::Crs) => pc > 1,
    };
    let conv = if converts { 1.0 } else { 0.0 };
    // SFC strided extraction cost applies to every non-row partition.
    let strided = !matches!(method, PartitionMethod::Row);

    let vt = VirtualTime::from_micros;
    match scheme {
        SchemeKind::Sfc => {
            let mut dist = p * m.t_startup + cells * m.t_data;
            if strided {
                dist += (cells + lcells) * m.t_op;
            }
            let comp = lcells * (1.0 + 3.0 * sm) * m.t_op;
            SchemeCost {
                t_distribution: vt(dist),
                t_compression: vt(comp),
            }
        }
        SchemeKind::Cfs => {
            // Wire and pack: every part's pointer array (segs + 1 entries)
            // plus CO and VL.
            let wire = 2.0 * nnz + p * (segs + 1.0);
            let pack = wire;
            let unpack = (segs + 1.0) + (2.0 + conv) * nnz_max;
            let dist = p * m.t_startup + wire * m.t_data + (pack + unpack) * m.t_op;
            let comp = cells * (1.0 + 3.0 * s) * m.t_op;
            SchemeCost {
                t_distribution: vt(dist),
                t_compression: vt(comp),
            }
        }
        SchemeKind::Ed => {
            // Wire: every part's counts (segs entries) plus the pairs.
            let wire = 2.0 * nnz + p * segs;
            let dist = p * m.t_startup + wire * m.t_data;
            let decode = 1.0 + segs + (2.0 + conv) * nnz_max;
            let comp = (cells * (1.0 + 3.0 * s) + decode) * m.t_op;
            SchemeCost {
                t_distribution: vt(dist),
                t_compression: vt(comp),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::CompressKind::{Ccs, Crs};
    use crate::schemes::SchemeKind::{Cfs, Ed, Sfc};

    fn sp2() -> MachineModel {
        MachineModel::ibm_sp2()
    }

    /// Evaluate the paper's Table 1 expressions literally, for comparison
    /// with our structured `predict`.
    fn table1_literal(scheme: SchemeKind, inp: &CostInput, m: &MachineModel) -> SchemeCost {
        let n = inp.n as f64;
        let p = inp.p as f64;
        let (s, sm) = (inp.s, inp.s_max);
        let np = (inp.n.div_ceil(inp.p)) as f64;
        let vt = VirtualTime::from_micros;
        match scheme {
            Sfc => SchemeCost {
                t_distribution: vt(p * m.t_startup + n * n * m.t_data),
                t_compression: vt(np * n * (1.0 + 3.0 * sm) * m.t_op),
            },
            Cfs => SchemeCost {
                t_distribution: vt(p * m.t_startup
                    + (2.0 * n * n * s + n + p) * m.t_data
                    + (2.0 * n * n * s + np * n * (2.0 * sm + 1.0 / n) + n + p + 1.0) * m.t_op),
                t_compression: vt(n * n * (1.0 + 3.0 * s) * m.t_op),
            },
            Ed => SchemeCost {
                t_distribution: vt(p * m.t_startup + (2.0 * n * n * s + n) * m.t_data),
                t_compression: vt(
                    (n * n * (1.0 + 3.0 * s) + np * n * (2.0 * sm + 1.0 / n) + 1.0) * m.t_op,
                ),
            },
        }
    }

    #[test]
    fn predict_matches_paper_table1_row_crs() {
        // Our structured decomposition must reproduce the paper's printed
        // Table 1 expressions exactly when p divides n.
        for &(n, p) in &[(200, 4), (400, 16), (1600, 32), (96, 8)] {
            let inp = CostInput::uniform(n, p, 0.1);
            for scheme in [Sfc, Cfs, Ed] {
                let ours = predict(scheme, PartitionMethod::Row, Crs, &inp, &sp2());
                let paper = table1_literal(scheme, &inp, &sp2());
                let d = (ours.t_distribution.as_micros() - paper.t_distribution.as_micros()).abs();
                let c = (ours.t_compression.as_micros() - paper.t_compression.as_micros()).abs();
                assert!(d < 1e-6, "{scheme:?} n={n} p={p} dist {d}");
                assert!(c < 1e-6, "{scheme:?} n={n} p={p} comp {c}");
            }
        }
    }

    #[test]
    fn predict_matches_paper_table2_row_ccs() {
        // Table 2 row+CCS: CFS wire = 2n²s + pn + p, ED wire = 2n²s + pn,
        // conversion adds one op per nonzero.
        let inp = CostInput::uniform(400, 4, 0.1);
        let m = sp2();
        let n = 400.0;
        let p = 4.0;
        let s = 0.1;
        let np = 100.0;

        let cfs = predict(Cfs, PartitionMethod::Row, Ccs, &inp, &m);
        let expect_dist = p * m.t_startup
            + (2.0 * n * n * s + p * n + p) * m.t_data
            + (2.0 * n * n * s + p * n + p + np * n * 3.0 * s + n + 1.0) * m.t_op;
        assert!((cfs.t_distribution.as_micros() - expect_dist).abs() < 1e-6);

        let ed = predict(Ed, PartitionMethod::Row, Ccs, &inp, &m);
        let expect_dist = p * m.t_startup + (2.0 * n * n * s + p * n) * m.t_data;
        assert!((ed.t_distribution.as_micros() - expect_dist).abs() < 1e-6);
        let expect_comp = (n * n * (1.0 + 3.0 * s) + np * n * 3.0 * s + n + 1.0) * m.t_op;
        assert!((ed.t_compression.as_micros() - expect_comp).abs() < 1e-6);
    }

    #[test]
    fn remark1_ed_distribution_always_fastest() {
        // Sweep s and machine ratios: ED's T_Distribution ≤ CFS's, and
        // below SFC's whenever s < 0.5.
        for s in [0.01, 0.05, 0.1, 0.2, 0.4] {
            for ratio in [0.25, 1.0, 1.2, 4.0] {
                let m = MachineModel::new(40.0, 0.1 * ratio, 0.1);
                let inp = CostInput::uniform(400, 16, s);
                for (method, kind) in [
                    (PartitionMethod::Row, Crs),
                    (PartitionMethod::Row, Ccs),
                    (PartitionMethod::Column, Crs),
                    (PartitionMethod::Mesh { pr: 4, pc: 4 }, Crs),
                ] {
                    let sfc = predict(Sfc, method, kind, &inp, &m);
                    let cfs = predict(Cfs, method, kind, &inp, &m);
                    let ed = predict(Ed, method, kind, &inp, &m);
                    assert!(
                        ed.t_distribution < cfs.t_distribution,
                        "s={s} ratio={ratio}"
                    );
                    assert!(
                        ed.t_distribution < sfc.t_distribution,
                        "s={s} ratio={ratio}"
                    );
                }
            }
        }
    }

    #[test]
    fn remark3_compression_ordering() {
        let inp = CostInput::uniform(400, 16, 0.1);
        let m = sp2();
        for (method, kind) in [
            (PartitionMethod::Row, Crs),
            (PartitionMethod::Column, Ccs),
            (PartitionMethod::Mesh { pr: 4, pc: 4 }, Crs),
        ] {
            let sfc = predict(Sfc, method, kind, &inp, &m);
            let cfs = predict(Cfs, method, kind, &inp, &m);
            let ed = predict(Ed, method, kind, &inp, &m);
            assert!(sfc.t_compression < cfs.t_compression);
            assert!(cfs.t_compression < ed.t_compression);
        }
    }

    #[test]
    fn remark4_ed_beats_cfs_overall() {
        for s in [0.01, 0.1, 0.3] {
            for ratio in [0.25, 1.2, 8.0] {
                let m = MachineModel::new(40.0, 0.1 * ratio, 0.1);
                let inp = CostInput::uniform(800, 16, s);
                for method in [
                    PartitionMethod::Row,
                    PartitionMethod::Column,
                    PartitionMethod::Mesh { pr: 4, pc: 4 },
                ] {
                    for kind in [Crs, Ccs] {
                        let cfs = predict(Cfs, method, kind, &inp, &m);
                        let ed = predict(Ed, method, kind, &inp, &m);
                        assert!(ed.t_total() < cfs.t_total(), "s={s} ratio={ratio}");
                    }
                }
            }
        }
    }

    #[test]
    fn paper_section5_overall_winners() {
        // §5.1: on the SP2 (ratio 1.2, s = 0.1) SFC wins *overall* under
        // the row partition; §5.2/5.3: CFS and ED win under column and
        // mesh partitions.
        let m = sp2();
        let inp = CostInput::uniform(2000, 4, 0.1);

        let row = PartitionMethod::Row;
        let sfc = predict(Sfc, row, Crs, &inp, &m);
        let cfs = predict(Cfs, row, Crs, &inp, &m);
        let ed = predict(Ed, row, Crs, &inp, &m);
        assert!(sfc.t_total() < cfs.t_total());
        assert!(sfc.t_total() < ed.t_total());

        for method in [
            PartitionMethod::Column,
            PartitionMethod::Mesh { pr: 2, pc: 2 },
        ] {
            let sfc = predict(Sfc, method, Crs, &inp, &m);
            let cfs = predict(Cfs, method, Crs, &inp, &m);
            let ed = predict(Ed, method, Crs, &inp, &m);
            assert!(ed.t_total() < cfs.t_total(), "{method:?}");
            assert!(cfs.t_total() < sfc.t_total(), "{method:?}");
        }
    }

    #[test]
    #[should_panic(expected = "mesh grid")]
    fn bad_mesh_grid_panics() {
        let inp = CostInput::uniform(100, 4, 0.1);
        let _ = predict(
            Sfc,
            PartitionMethod::Mesh { pr: 3, pc: 2 },
            Crs,
            &inp,
            &sp2(),
        );
    }
}
