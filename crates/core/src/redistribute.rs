//! Sparse array **redistribution**: moving an already-distributed sparse
//! array from one partition to another without ever materialising it
//! densely.
//!
//! The paper's related work (Bandera & Zapata, *Sparse Matrix Block-Cyclic
//! Redistribution*, IPPS 1999) motivates this operation: a program phase
//! change (say row-partitioned assembly followed by mesh-partitioned
//! solves) requires re-owning every nonzero. Two strategies are provided:
//!
//! * [`RedistStrategy::Direct`] — every processor buckets its nonzeros by
//!   their new owner and the machine does a compressed all-to-all
//!   (`p²` messages, each nonzero crosses the wire once);
//! * [`RedistStrategy::ViaSource`] — every processor ships its nonzeros to
//!   rank 0, which forwards each bucket to its new owner (`2p` messages,
//!   each nonzero crosses the wire twice, and the hub serialises).
//!
//! The trade-off is the classic startup-vs-volume crossover: for small
//! arrays `ViaSource`'s `2p` startups beat `Direct`'s `p²`; as `nnz`
//! grows, `Direct`'s halved volume wins. The `ablation_redistribution`
//! bench measures the crossover.
//!
//! Triplets travel as `(global_row, global_col, value)` — 3 elements per
//! nonzero — and receivers rebuild CRS/CCS by counting sort, charged per
//! element like every other kernel in this crate.

use crate::compress::{Ccs, CompressKind, Crs, LocalCompressed};
use crate::error::SparsedistError;
use crate::opcount::OpCounter;
use crate::partition::Partition;
use crate::schemes::{alive_ranks_of, assign_owners, collect_parts};
use sparsedist_multicomputer::pack::UnpackError;
use sparsedist_multicomputer::{Multicomputer, PackBuffer, Phase, PhaseLedger, VirtualTime};

/// How the nonzeros are routed to their new owners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedistStrategy {
    /// Compressed all-to-all: `p²` messages, volume `3·nnz`.
    Direct,
    /// Hub at rank 0: `2p` messages, volume `6·nnz`, hub-serialised.
    ViaSource,
}

/// Result of a redistribution: new local arrays plus per-rank ledgers.
#[derive(Debug, Clone)]
pub struct RedistRun {
    /// Which strategy ran.
    pub strategy: RedistStrategy,
    /// Per-rank phase ledgers.
    pub ledgers: Vec<PhaseLedger>,
    /// The re-owned compressed local arrays, indexed by rank.
    pub locals: Vec<LocalCompressed>,
}

impl RedistRun {
    /// The slowest processor's busy time (redistribution has no single
    /// source, so the paper's source-centric split does not apply).
    pub fn t_total(&self) -> VirtualTime {
        self.ledgers
            .iter()
            .map(|l| l.busy_total())
            .fold(VirtualTime::ZERO, VirtualTime::max)
    }

    /// Total nonzeros after redistribution.
    pub fn total_nnz(&self) -> usize {
        self.locals.iter().map(|l| l.nnz()).sum()
    }
}

/// Pack one triplet bucket: `count, (gr, gc, v)…`.
fn pack_bucket(trips: &[(usize, usize, f64)], ops: &mut OpCounter) -> PackBuffer {
    let mut buf = PackBuffer::with_capacity(1 + trips.len() * 3);
    buf.push_u64(trips.len() as u64);
    for &(r, c, v) in trips {
        buf.push_u64(r as u64);
        buf.push_u64(c as u64);
        buf.push_f64(v);
        ops.add(3);
    }
    buf
}

/// Unpack a triplet bucket.
fn unpack_bucket(
    buf: &PackBuffer,
    ops: &mut OpCounter,
) -> Result<Vec<(usize, usize, f64)>, UnpackError> {
    let mut cursor = buf.cursor();
    let n = cursor.try_read_usize()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let r = cursor.try_read_usize()?;
        let c = cursor.try_read_usize()?;
        let v = cursor.try_read_f64()?;
        ops.add(3);
        out.push((r, c, v));
    }
    if !cursor.is_exhausted() {
        // Longer than its own header describes: a framing mismatch.
        return Err(UnpackError {
            at: (1 + 3 * n) * 8,
            remaining: cursor.remaining(),
        });
    }
    Ok(out)
}

/// Walk a local compressed array and bucket its nonzeros by new owner
/// (triplets carry **global** coordinates).
fn bucket_by_new_owner(
    me: usize,
    local: &LocalCompressed,
    from: &dyn Partition,
    to: &dyn Partition,
    p: usize,
    ops: &mut OpCounter,
) -> Vec<Vec<(usize, usize, f64)>> {
    let mut buckets: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); p];
    let mut push = |lr: usize, lc: usize, v: f64, ops: &mut OpCounter| {
        let (gr, gc) = from.to_global(me, lr, lc);
        let dest = to.owner_of(gr, gc);
        ops.add(2); // index mapping + ownership
        buckets[dest].push((gr, gc, v));
    };
    match local {
        LocalCompressed::Crs(a) => {
            for (lr, lc, v) in a.iter() {
                push(lr, lc, v, ops);
            }
        }
        LocalCompressed::Ccs(a) => {
            for (lr, lc, v) in a.iter() {
                push(lr, lc, v, ops);
            }
        }
    }
    buckets
}

/// Build a compressed local array from unsorted destination-local
/// triplets by counting sort, charging one op per element touched.
fn build_local(
    me: usize,
    mut trips: Vec<(usize, usize, f64)>,
    to: &dyn Partition,
    kind: CompressKind,
    ops: &mut OpCounter,
) -> LocalCompressed {
    let (lrows, lcols) = to.local_shape(me);
    // Convert to local coordinates.
    for t in trips.iter_mut() {
        let (_, lr, lc) = to.to_local(t.0, t.1);
        *t = (lr, lc, t.2);
        ops.add(2);
    }
    match kind {
        CompressKind::Crs => LocalCompressed::Crs(Crs::from_triplets(lrows, lcols, &trips, ops)),
        CompressKind::Ccs => LocalCompressed::Ccs(Ccs::from_triplets(lrows, lcols, &trips, ops)),
    }
}

/// Redistribute `locals` (owned under `from`) to the partition `to`.
///
/// Both partitions must describe the same global shape and the same
/// processor count as the machine.
///
/// ```
/// use sparsedist_core::dense::paper_array_a;
/// use sparsedist_core::partition::{Mesh2D, RowBlock};
/// use sparsedist_core::compress::CompressKind;
/// use sparsedist_core::redistribute::{redistribute, RedistStrategy};
/// use sparsedist_core::schemes::{run_scheme, SchemeKind};
/// use sparsedist_multicomputer::{MachineModel, Multicomputer};
///
/// let a = paper_array_a();
/// let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
/// let rows = RowBlock::new(10, 8, 4);
/// let mesh = Mesh2D::new(10, 8, 2, 2);
/// let owned = run_scheme(SchemeKind::Ed, &machine, &a, &rows, CompressKind::Crs)
///     .unwrap()
///     .locals;
/// let run = redistribute(&machine, &owned, &rows, &mesh, CompressKind::Crs,
///                        RedistStrategy::Direct).unwrap();
/// // Same state as if the array had been distributed under the mesh directly.
/// let direct = run_scheme(SchemeKind::Ed, &machine, &a, &mesh, CompressKind::Crs).unwrap();
/// assert_eq!(run.locals, direct.locals);
/// ```
///
/// # Errors
/// Communication and validation failures surface as [`SparsedistError`].
/// Dead ranks degrade gracefully: parts are re-owned among the survivors
/// under [`assign_owners`] on both the `from` and `to` sides, and the
/// `ViaSource` hub moves to the lowest alive rank.
///
/// # Panics
/// Panics on shape or processor-count mismatches.
pub fn redistribute(
    machine: &Multicomputer,
    locals: &[LocalCompressed],
    from: &dyn Partition,
    to: &dyn Partition,
    kind: CompressKind,
    strategy: RedistStrategy,
) -> Result<RedistRun, SparsedistError> {
    let p = machine.nprocs();
    assert_eq!(
        from.nparts(),
        p,
        "source partition has {} parts, machine {p}",
        from.nparts()
    );
    assert_eq!(
        to.nparts(),
        p,
        "target partition has {} parts, machine {p}",
        to.nparts()
    );
    assert_eq!(
        from.global_shape(),
        to.global_shape(),
        "partitions describe different arrays"
    );
    assert_eq!(locals.len(), p, "need one local array per processor");

    let alive = alive_ranks_of(machine);
    // A fault plan that kills every rank leaves nobody to re-own parts or
    // host the hub: surface it as an error instead of panicking host-side.
    let Some(&hub) = alive.first() else {
        return Err(SparsedistError::SourceDead { rank: 0 });
    };
    let from_owners = assign_owners(from, &alive);
    let to_owners = assign_owners(to, &alive);
    let (alive_ref, from_ref, to_ref) = (&alive, &from_owners, &to_owners);

    let (results, ledgers) = machine.run_with_ledgers(
        |env| -> Result<Vec<(usize, LocalCompressed)>, SparsedistError> {
            let me = env.rank();
            env.trace_scope("redistribute");
            if env.is_rank_dead(me) {
                return Ok(Vec::new());
            }
            // Bucket every nonzero this rank holds (all its owned `from`
            // parts — exactly its own when every rank is alive) by target pid.
            let from_mine: Vec<usize> = (0..p).filter(|&pid| from_ref[pid] == me).collect();
            let buckets = env.phase(Phase::Pack, |env| {
                let mut ops = OpCounter::new();
                let mut buckets: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); p];
                for &fpid in &from_mine {
                    for (tpid, b) in bucket_by_new_owner(fpid, &locals[fpid], from, to, p, &mut ops)
                        .into_iter()
                        .enumerate()
                    {
                        buckets[tpid].extend(b);
                    }
                }
                env.charge_ops(ops.take());
                buckets
            });
            let to_mine: Vec<usize> = (0..p).filter(|&pid| to_ref[pid] == me).collect();

            let mut incoming: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); to_mine.len()];
            match strategy {
                RedistStrategy::Direct => {
                    // All-to-all: pack + send one bucket per target part, to
                    // whichever rank owns it.
                    let bufs: Vec<PackBuffer> = env.phase(Phase::Pack, |env| {
                        let mut ops = OpCounter::new();
                        let bufs = buckets.iter().map(|b| pack_bucket(b, &mut ops)).collect();
                        env.charge_ops(ops.take());
                        bufs
                    });
                    env.phase(Phase::Send, |env| -> Result<(), SparsedistError> {
                        for (tpid, buf) in bufs.into_iter().enumerate() {
                            env.send(to_ref[tpid], buf)?;
                        }
                        Ok(())
                    })?;
                    for (slot, _tpid) in to_mine.iter().enumerate() {
                        for &src in alive_ref {
                            let msg = env.recv(src)?;
                            let got = env.phase(Phase::Unpack, |env| {
                                let mut ops = OpCounter::new();
                                let got = unpack_bucket(&msg.payload, &mut ops);
                                env.charge_ops(ops.take());
                                got
                            })?;
                            incoming[slot].extend(got);
                        }
                    }
                }
                RedistStrategy::ViaSource => {
                    // Leg 1: everyone ships all triplets to the hub, tagged by
                    // destination (p buckets concatenated with headers).
                    let buf = env.phase(Phase::Pack, |env| {
                        let mut ops = OpCounter::new();
                        let mut buf = PackBuffer::new();
                        for b in &buckets {
                            let packed = pack_bucket(b, &mut ops);
                            // Concatenate: count + triplets per destination.
                            let mut cursor = packed.cursor();
                            let n = cursor.read_u64();
                            buf.push_u64(n);
                            for _ in 0..n {
                                buf.push_u64(cursor.read_u64());
                                buf.push_u64(cursor.read_u64());
                                buf.push_f64(cursor.read_f64());
                            }
                        }
                        env.charge_ops(ops.take());
                        buf
                    });
                    env.phase(Phase::Send, |env| env.send(hub, buf))?;

                    if me == hub {
                        // Hub: merge the per-destination streams and forward.
                        let mut forward: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); p];
                        let mut ops = OpCounter::new();
                        for &src in alive_ref {
                            let msg = env.recv(src)?;
                            let merge =
                                |cursor: &mut sparsedist_multicomputer::pack::UnpackCursor<'_>,
                                 forward: &mut Vec<Vec<(usize, usize, f64)>>,
                                 ops: &mut OpCounter|
                                 -> Result<(), UnpackError> {
                                    for fwd in forward.iter_mut() {
                                        let n = cursor.try_read_usize()?;
                                        for _ in 0..n {
                                            let r = cursor.try_read_usize()?;
                                            let c = cursor.try_read_usize()?;
                                            let v = cursor.try_read_f64()?;
                                            ops.add(3);
                                            fwd.push((r, c, v));
                                        }
                                    }
                                    Ok(())
                                };
                            let mut cursor = msg.payload.cursor();
                            merge(&mut cursor, &mut forward, &mut ops)?;
                        }
                        let bufs: Vec<PackBuffer> =
                            forward.iter().map(|b| pack_bucket(b, &mut ops)).collect();
                        env.phase(Phase::Unpack, |env| env.charge_ops(ops.take()));
                        env.phase(Phase::Send, |env| -> Result<(), SparsedistError> {
                            for (tpid, buf) in bufs.into_iter().enumerate() {
                                env.send(to_ref[tpid], buf)?;
                            }
                            Ok(())
                        })?;
                    }
                    // Leg 2: receive one forwarded bucket per owned target part.
                    for slot in incoming.iter_mut() {
                        let msg = env.recv(hub)?;
                        *slot = env.phase(Phase::Unpack, |env| {
                            let mut ops = OpCounter::new();
                            let got = unpack_bucket(&msg.payload, &mut ops);
                            env.charge_ops(ops.take());
                            got
                        })?;
                    }
                }
            }

            let mut out = Vec::with_capacity(to_mine.len());
            for (slot, &tpid) in to_mine.iter().enumerate() {
                let trips = std::mem::take(&mut incoming[slot]);
                let local = env.phase(Phase::Compress, |env| {
                    let mut ops = OpCounter::new();
                    let local = build_local(tpid, trips, to, kind, &mut ops);
                    env.charge_ops(ops.take());
                    local
                });
                out.push((tpid, local));
            }
            Ok(out)
        },
    );
    let new_locals = collect_parts(results, p)?;
    Ok(RedistRun {
        strategy,
        ledgers,
        locals: new_locals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;
    use crate::partition::{ColBlock, ColCyclic, Mesh2D, RowBlock, RowCyclic};
    use crate::schemes::{run_scheme, SchemeKind};
    use sparsedist_multicomputer::MachineModel;

    fn machine(p: usize) -> Multicomputer {
        Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
    }

    fn distribute(part: &dyn Partition, kind: CompressKind) -> Vec<LocalCompressed> {
        let a = paper_array_a();
        run_scheme(SchemeKind::Ed, &machine(part.nparts()), &a, part, kind)
            .unwrap()
            .locals
    }

    #[test]
    fn redistribution_equals_direct_distribution() {
        // distribute(row) → redistribute(row→X) must equal distribute(X),
        // for every target partition, kind and strategy.
        let from = RowBlock::new(10, 8, 4);
        let targets: Vec<Box<dyn Partition>> = vec![
            Box::new(ColBlock::new(10, 8, 4)),
            Box::new(Mesh2D::new(10, 8, 2, 2)),
            Box::new(RowCyclic::new(10, 8, 4)),
            Box::new(ColCyclic::new(10, 8, 4)),
        ];
        for kind in [CompressKind::Crs, CompressKind::Ccs] {
            let owned = distribute(&from, kind);
            for to in &targets {
                let want = distribute(to.as_ref(), kind);
                for strategy in [RedistStrategy::Direct, RedistStrategy::ViaSource] {
                    let run = redistribute(&machine(4), &owned, &from, to.as_ref(), kind, strategy)
                        .unwrap();
                    assert_eq!(run.locals, want, "{kind} {:?} to {}", strategy, to.name());
                    assert_eq!(run.total_nnz(), 16);
                }
            }
        }
    }

    #[test]
    fn identity_redistribution_is_stable() {
        let part = RowBlock::new(10, 8, 4);
        let owned = distribute(&part, CompressKind::Crs);
        let run = redistribute(
            &machine(4),
            &owned,
            &part,
            &part,
            CompressKind::Crs,
            RedistStrategy::Direct,
        )
        .unwrap();
        assert_eq!(run.locals, owned);
    }

    #[test]
    fn via_source_ships_twice_the_volume() {
        let from = RowBlock::new(10, 8, 4);
        let to = Mesh2D::new(10, 8, 2, 2);
        let owned = distribute(&from, CompressKind::Crs);
        let direct = redistribute(
            &machine(4),
            &owned,
            &from,
            &to,
            CompressKind::Crs,
            RedistStrategy::Direct,
        )
        .unwrap();
        let hub = redistribute(
            &machine(4),
            &owned,
            &from,
            &to,
            CompressKind::Crs,
            RedistStrategy::ViaSource,
        )
        .unwrap();
        let send = |r: &RedistRun| -> f64 {
            r.ledgers
                .iter()
                .map(|l| l.get(Phase::Send).as_micros())
                .sum()
        };
        // Direct: 16 messages (p²); ViaSource: 8 (p to hub + p from hub)
        // but every nonzero crosses twice, so more data volume. With tiny
        // payloads the startup term dominates and ViaSource sends less
        // total time; with the per-element part isolated the hub resends
        // everything. Just pin the structural facts:
        let direct_sends = send(&direct);
        let hub_sends = send(&hub);
        // p² startups vs 2p startups on a 16-nonzero array: Direct pays more.
        assert!(
            direct_sends > hub_sends,
            "direct {direct_sends} hub {hub_sends}"
        );
        // But the hub's own send ledger (forwarding everything) exceeds any
        // single direct rank's.
        let max_direct_rank = direct
            .ledgers
            .iter()
            .map(|l| l.get(Phase::Send).as_micros())
            .fold(0.0f64, f64::max);
        assert!(hub.ledgers[0].get(Phase::Send).as_micros() > max_direct_rank * 0.99);
    }

    #[test]
    fn empty_array_redistributes() {
        let from = RowBlock::new(12, 12, 4);
        let to = Mesh2D::new(12, 12, 2, 2);
        let a = crate::dense::Dense2D::zeros(12, 12);
        let owned = run_scheme(SchemeKind::Cfs, &machine(4), &a, &from, CompressKind::Crs)
            .unwrap()
            .locals;
        let run = redistribute(
            &machine(4),
            &owned,
            &from,
            &to,
            CompressKind::Crs,
            RedistStrategy::Direct,
        )
        .unwrap();
        assert_eq!(run.total_nnz(), 0);
        for (pid, l) in run.locals.iter().enumerate() {
            assert_eq!(l.shape(), to.local_shape(pid));
        }
    }

    #[test]
    fn kind_change_during_redistribution() {
        // Owned as CRS under rows, re-owned as CCS under columns.
        let from = RowBlock::new(10, 8, 4);
        let to = ColBlock::new(10, 8, 4);
        let owned = distribute(&from, CompressKind::Crs);
        let run = redistribute(
            &machine(4),
            &owned,
            &from,
            &to,
            CompressKind::Ccs,
            RedistStrategy::Direct,
        )
        .unwrap();
        let want = distribute(&to, CompressKind::Ccs);
        assert_eq!(run.locals, want);
    }

    #[test]
    #[should_panic(expected = "different arrays")]
    fn mismatched_shapes_rejected() {
        let from = RowBlock::new(10, 8, 4);
        let to = RowBlock::new(8, 10, 4);
        let owned = distribute(&from, CompressKind::Crs);
        let _ = redistribute(
            &machine(4),
            &owned,
            &from,
            &to,
            CompressKind::Crs,
            RedistStrategy::Direct,
        );
    }
}
