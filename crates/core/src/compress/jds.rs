//! Jagged Diagonal Storage (JDS).
//!
//! The *Templates* book's format for vector machines: rows are permuted by
//! decreasing nonzero count and the compressed rows are read off in
//! columns ("jagged diagonals"), so an SpMV streams long unit-stride
//! vectors — exactly what the SIMD machines of the paper's related work
//! (Ziantz et al.) wanted.

use super::Crs;
use crate::dense::Dense2D;
use crate::opcount::OpCounter;

/// A sparse array in jagged diagonal storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Jds {
    rows: usize,
    cols: usize,
    /// `perm[k]` = original row index of the `k`-th longest row.
    perm: Vec<usize>,
    /// Start of each jagged diagonal in `col_ind`/`values`
    /// (`njd + 1` entries).
    jd_ptr: Vec<usize>,
    /// Column indices, jagged-diagonal-major.
    col_ind: Vec<usize>,
    /// Values, aligned with `col_ind`.
    values: Vec<f64>,
}

impl Jds {
    /// Build from a CRS array: one op per nonzero moved plus one per row
    /// for the permutation sort bookkeeping.
    pub fn from_crs(a: &Crs, ops: &mut OpCounter) -> Jds {
        let rows = a.rows();
        // Permutation: rows by decreasing nnz (stable for determinism).
        let mut perm: Vec<usize> = (0..rows).collect();
        perm.sort_by_key(|&r| std::cmp::Reverse(a.row_nnz(r)));
        ops.add(rows as u64);

        let njd = perm.first().map_or(0, |&r| a.row_nnz(r));
        let mut jd_ptr = Vec::with_capacity(njd + 1);
        let mut col_ind = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        jd_ptr.push(0);
        for d in 0..njd {
            for &r in &perm {
                if a.row_nnz(r) > d {
                    col_ind.push(a.row_cols(r)[d]);
                    values.push(a.row_vals(r)[d]);
                    ops.add(2);
                } else {
                    // Rows are sorted by length: nothing longer follows.
                    break;
                }
            }
            jd_ptr.push(col_ind.len());
        }
        Jds {
            rows,
            cols: a.cols(),
            perm,
            jd_ptr,
            col_ind,
            values,
        }
    }

    /// Build straight from a dense array (CRS as an intermediate).
    pub fn from_dense(a: &Dense2D, ops: &mut OpCounter) -> Jds {
        let crs = Crs::from_dense(a, ops);
        Jds::from_crs(&crs, ops)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of jagged diagonals (= the longest row's nnz).
    pub fn njd(&self) -> usize {
        self.jd_ptr.len().saturating_sub(1)
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row permutation (position → original row).
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Jagged diagonal `d` as `(col_ind, values)` slices; entry `k`
    /// belongs to original row `perm[k]`.
    pub fn diag(&self, d: usize) -> (&[usize], &[f64]) {
        let lo = self.jd_ptr[d];
        let hi = self.jd_ptr[d + 1];
        (&self.col_ind[lo..hi], &self.values[lo..hi])
    }

    /// Expand to a dense array.
    pub fn to_dense(&self) -> Dense2D {
        let mut out = Dense2D::zeros(self.rows, self.cols);
        for d in 0..self.njd() {
            let (cols, vals) = self.diag(d);
            for (k, (&c, &v)) in cols.iter().zip(vals).enumerate() {
                out.set(self.perm[k], c, v);
            }
        }
        out
    }

    /// `y = A·x`, streaming the jagged diagonals.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols,
            "x length {} != cols {}",
            x.len(),
            self.cols
        );
        let mut y_perm = vec![0.0; self.rows];
        for d in 0..self.njd() {
            let (cols, vals) = self.diag(d);
            for (k, (&c, &v)) in cols.iter().zip(vals).enumerate() {
                y_perm[k] += v * x[c];
            }
        }
        // Un-permute.
        let mut y = vec![0.0; self.rows];
        for (k, &r) in self.perm.iter().enumerate() {
            y[r] = y_perm[k];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;

    #[test]
    fn round_trip_paper_array() {
        let a = paper_array_a();
        let jds = Jds::from_dense(&a, &mut OpCounter::new());
        assert_eq!(jds.to_dense(), a);
        assert_eq!(jds.nnz(), 16);
        // Longest rows have 3 nonzeros (rows 8 and 9).
        assert_eq!(jds.njd(), 3);
        assert!(jds.perm()[0] == 8 || jds.perm()[0] == 9);
    }

    #[test]
    fn first_diagonal_is_longest() {
        let a = paper_array_a();
        let jds = Jds::from_dense(&a, &mut OpCounter::new());
        // Diagonal 0 has one entry per non-empty row (10 rows, all
        // non-empty), later diagonals shrink.
        let d0 = jds.diag(0).0.len();
        let d1 = jds.diag(1).0.len();
        let d2 = jds.diag(2).0.len();
        assert_eq!(d0, 10);
        assert!(d0 >= d1 && d1 >= d2);
        assert_eq!(d0 + d1 + d2, 16);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = paper_array_a();
        let jds = Jds::from_dense(&a, &mut OpCounter::new());
        let x: Vec<f64> = (1..=8).map(|v| v as f64).collect();
        let want: Vec<f64> = (0..10)
            .map(|r| (0..8).map(|c| a.get(r, c) * x[c]).sum())
            .collect();
        assert_eq!(jds.spmv(&x), want);
    }

    #[test]
    fn empty_and_uniform_rows() {
        let z = Dense2D::zeros(3, 4);
        let jds = Jds::from_dense(&z, &mut OpCounter::new());
        assert_eq!(jds.njd(), 0);
        assert_eq!(jds.to_dense(), z);

        let mut u = Dense2D::zeros(3, 4);
        for r in 0..3 {
            u.set(r, r, 1.0);
            u.set(r, 3, 2.0);
        }
        let jds = Jds::from_dense(&u, &mut OpCounter::new());
        assert_eq!(jds.njd(), 2);
        assert_eq!(jds.to_dense(), u);
    }
}
