//! Coordinate (triplet) storage.
//!
//! Not one of the paper's wire formats, but the natural interchange form
//! for workload generators and MatrixMarket files in `sparsedist-gen`, and
//! a convenient intermediate for building test arrays.

use super::{Ccs, Crs};
use crate::dense::Dense2D;
use crate::opcount::OpCounter;
use std::fmt;

/// A sparse array as a list of `(row, col, value)` triplets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

/// Error from [`Coo::validate`] / [`Coo::to_dense`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CooError {
    /// An entry's coordinates exceed the declared shape.
    OutOfBounds {
        position: usize,
        row: usize,
        col: usize,
    },
    /// Two entries share the same coordinates.
    Duplicate { row: usize, col: usize },
}

impl fmt::Display for CooError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CooError::OutOfBounds { position, row, col } => {
                write!(f, "entry {position} at ({row},{col}) is out of bounds")
            }
            CooError::Duplicate { row, col } => write!(f, "duplicate entry at ({row},{col})"),
        }
    }
}

impl std::error::Error for CooError {}

impl Coo {
    /// An empty triplet list with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Build from triplets.
    pub fn from_entries(rows: usize, cols: usize, entries: Vec<(usize, usize, f64)>) -> Self {
        Coo {
            rows,
            cols,
            entries,
        }
    }

    /// Extract every nonzero of a dense array.
    pub fn from_dense(a: &Dense2D) -> Self {
        Coo {
            rows: a.rows(),
            cols: a.cols(),
            entries: a.iter_nonzero().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The stored triplets.
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Append an entry (no dedup; run [`Coo::validate`] before conversion).
    pub fn push(&mut self, r: usize, c: usize, v: f64) {
        self.entries.push((r, c, v));
    }

    /// Sort entries row-major (row, then column).
    pub fn sort_row_major(&mut self) {
        self.entries.sort_by_key(|a| (a.0, a.1));
    }

    /// Check bounds and duplicates.
    pub fn validate(&self) -> Result<(), CooError> {
        for (pos, &(r, c, _)) in self.entries.iter().enumerate() {
            if r >= self.rows || c >= self.cols {
                return Err(CooError::OutOfBounds {
                    position: pos,
                    row: r,
                    col: c,
                });
            }
        }
        let mut sorted: Vec<(usize, usize)> =
            self.entries.iter().map(|&(r, c, _)| (r, c)).collect();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(CooError::Duplicate {
                    row: w[0].0,
                    col: w[0].1,
                });
            }
        }
        Ok(())
    }

    /// Expand to a dense array.
    ///
    /// # Panics
    /// Panics on out-of-bounds entries (run [`Coo::validate`] first for a
    /// recoverable error). Later duplicates overwrite earlier ones.
    pub fn to_dense(&self) -> Dense2D {
        let mut out = Dense2D::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.entries {
            out.set(r, c, v);
        }
        out
    }

    /// Convert to CRS (sorts a copy of the entries; duplicates must have
    /// been resolved).
    pub fn to_crs(&self) -> Crs {
        Crs::from_dense(&self.to_dense(), &mut OpCounter::new())
    }

    /// Convert to CCS.
    pub fn to_ccs(&self) -> Ccs {
        Ccs::from_dense(&self.to_dense(), &mut OpCounter::new())
    }

    /// The sparse ratio `nnz / (rows × cols)`.
    pub fn sparse_ratio(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;

    #[test]
    fn dense_round_trip() {
        let a = paper_array_a();
        let coo = Coo::from_dense(&a);
        assert_eq!(coo.nnz(), 16);
        assert_eq!(coo.to_dense(), a);
        assert!(coo.validate().is_ok());
    }

    #[test]
    fn push_and_sort() {
        let mut coo = Coo::new(3, 3);
        coo.push(2, 0, 3.0);
        coo.push(0, 1, 1.0);
        coo.push(0, 0, 0.5);
        coo.sort_row_major();
        assert_eq!(coo.entries()[0], (0, 0, 0.5));
        assert_eq!(coo.entries()[2], (2, 0, 3.0));
    }

    #[test]
    fn validate_catches_out_of_bounds() {
        let coo = Coo::from_entries(2, 2, vec![(0, 0, 1.0), (5, 0, 2.0)]);
        assert_eq!(
            coo.validate(),
            Err(CooError::OutOfBounds {
                position: 1,
                row: 5,
                col: 0
            })
        );
    }

    #[test]
    fn validate_catches_duplicates() {
        let coo = Coo::from_entries(2, 2, vec![(1, 1, 1.0), (0, 0, 2.0), (1, 1, 3.0)]);
        assert_eq!(coo.validate(), Err(CooError::Duplicate { row: 1, col: 1 }));
    }

    #[test]
    fn conversions_agree() {
        let a = paper_array_a();
        let coo = Coo::from_dense(&a);
        assert_eq!(coo.to_crs().to_dense(), a);
        assert_eq!(coo.to_ccs().to_dense(), a);
    }

    #[test]
    fn sparse_ratio() {
        let coo = Coo::from_dense(&paper_array_a());
        assert!((coo.sparse_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(Coo::new(0, 5).sparse_ratio(), 0.0);
    }
}
