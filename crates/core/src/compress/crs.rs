//! Compressed Row Storage (CRS).

use super::{validate_layout, CompressError};
use crate::dense::Dense2D;
use crate::opcount::OpCounter;
use crate::partition::Partition;

/// A sparse array in Compressed Row Storage.
///
/// `ro` (the paper's `RO`) has `rows + 1` entries, starting at 0; row `r`'s
/// nonzeros occupy `co[ro[r]..ro[r+1]]` (column indices, the paper's `CO`)
/// and `vl[ro[r]..ro[r+1]]` (values, the paper's `VL`). Column indices are
/// strictly increasing within a row.
///
/// `cols` is the *index bound* for `co`: after CFS compression at the
/// source it is the global column count (the paper stores **global**
/// indices in `CO` before distribution, §3.2), and after index conversion
/// at a receiver it is the local column count.
#[derive(Debug, Clone, PartialEq)]
pub struct Crs {
    rows: usize,
    cols: usize,
    ro: Vec<usize>,
    co: Vec<usize>,
    vl: Vec<f64>,
}

impl Crs {
    /// Compress a dense array, counting 1 op per cell scanned plus 3 ops
    /// per nonzero emitted — the paper's `(1 + 3s)·cells` compression cost.
    pub fn from_dense(a: &Dense2D, ops: &mut OpCounter) -> Crs {
        let mut ro = Vec::with_capacity(a.rows() + 1);
        let mut co = Vec::new();
        let mut vl = Vec::new();
        ro.push(0);
        for r in 0..a.rows() {
            for (c, &v) in a.row(r).iter().enumerate() {
                ops.tick();
                if v != 0.0 {
                    co.push(c);
                    vl.push(v);
                    ops.add(3);
                }
            }
            ro.push(co.len());
        }
        Crs {
            rows: a.rows(),
            cols: a.cols(),
            ro,
            co,
            vl,
        }
    }

    /// Compress one part of a partitioned global array directly from the
    /// global array, storing **global** column indices in `co` — the CFS
    /// source-side compression of §3.2. Op counting matches
    /// [`Crs::from_dense`] over the part's cells, so compressing every part
    /// costs `(1 + 3s)·n²` total, the paper's CFS `T_Compression`.
    pub fn from_part_global(
        global: &Dense2D,
        part: &dyn Partition,
        pid: usize,
        ops: &mut OpCounter,
    ) -> Crs {
        let (lrows, lcols) = part.local_shape(pid);
        let mut ro = Vec::with_capacity(lrows + 1);
        let mut co = Vec::new();
        let mut vl = Vec::new();
        ro.push(0);
        for lr in 0..lrows {
            for lc in 0..lcols {
                ops.tick();
                let (gr, gc) = part.to_global(pid, lr, lc);
                let v = global.get(gr, gc);
                if v != 0.0 {
                    co.push(gc);
                    vl.push(v);
                    ops.add(3);
                }
            }
            ro.push(co.len());
        }
        let (_, gcols) = part.global_shape();
        Crs {
            rows: lrows,
            cols: gcols,
            ro,
            co,
            vl,
        }
    }

    /// Build from unsorted `(row, col, value)` triplets by counting sort,
    /// charging one op per element touched per pass (count, place,
    /// within-row ordering). Used by the gather and redistribution paths,
    /// where nonzeros arrive from many processors in arrival order.
    ///
    /// # Panics
    /// Panics if a triplet is out of bounds or duplicated (callers own the
    /// no-duplicates guarantee: every global cell has exactly one owner).
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        trips: &[(usize, usize, f64)],
        ops: &mut OpCounter,
    ) -> Crs {
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in trips {
            assert!(
                r < rows && c < cols,
                "triplet ({r},{c}) out of {rows}x{cols}"
            );
            counts[r + 1] += 1;
            ops.tick();
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
            ops.tick();
        }
        let ro = counts.clone();
        let mut placed: Vec<(usize, f64)> = vec![(0, 0.0); trips.len()];
        let mut cursor = ro.clone();
        for &(r, c, v) in trips {
            placed[cursor[r]] = (c, v);
            cursor[r] += 1;
            ops.tick();
        }
        for r in 0..rows {
            let run = &mut placed[ro[r]..ro[r + 1]];
            run.sort_unstable_by_key(|&(c, _)| c);
            ops.add(run.len() as u64);
            assert!(
                run.windows(2).all(|w| w[0].0 < w[1].0),
                "duplicate column in row {r}"
            );
        }
        let co = placed.iter().map(|&(c, _)| c).collect();
        let vl = placed.iter().map(|&(_, v)| v).collect();
        Crs {
            rows,
            cols,
            ro,
            co,
            vl,
        }
    }

    /// Assemble from raw arrays, validating every structural invariant
    /// (the receiver-side constructor; a truncated or corrupted message
    /// surfaces here).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        ro: Vec<usize>,
        co: Vec<usize>,
        vl: Vec<f64>,
    ) -> Result<Crs, CompressError> {
        validate_layout(&ro, &co, &vl, rows, cols)?;
        Ok(Crs {
            rows,
            cols,
            ro,
            co,
            vl,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column-index bound (see the type-level docs for global vs local).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vl.len()
    }

    /// The row pointer array (0-based, `rows + 1` entries).
    pub fn ro(&self) -> &[usize] {
        &self.ro
    }

    /// The column index array.
    pub fn co(&self) -> &[usize] {
        &self.co
    }

    /// The value array.
    pub fn vl(&self) -> &[f64] {
        &self.vl
    }

    /// Nonzero count of row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.ro[r + 1] - self.ro[r]
    }

    /// Column indices of row `r`.
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.co[self.ro[r]..self.ro[r + 1]]
    }

    /// Values of row `r`.
    pub fn row_vals(&self, r: usize) -> &[f64] {
        &self.vl[self.ro[r]..self.ro[r + 1]]
    }

    /// Value at `(r, c)` (0 if not stored). Binary search within the row.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        match self.row_cols(r).binary_search(&c) {
            Ok(k) => self.row_vals(r)[k],
            Err(_) => 0.0,
        }
    }

    /// Iterate stored `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            self.row_cols(r)
                .iter()
                .zip(self.row_vals(r))
                .map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Expand to a dense array.
    pub fn to_dense(&self) -> Dense2D {
        let mut out = Dense2D::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, v);
        }
        out
    }

    /// Re-check the structural invariants.
    pub fn validate(&self) -> Result<(), CompressError> {
        validate_layout(&self.ro, &self.co, &self.vl, self.rows, self.cols)
    }

    /// The paper's 1-based `RO` rendering (Figure 4: `RO[0] = 1`).
    pub fn ro_paper(&self) -> Vec<usize> {
        self.ro.iter().map(|&x| x + 1).collect()
    }

    /// The paper's 1-based `CO` rendering.
    pub fn co_paper(&self) -> Vec<usize> {
        self.co.iter().map(|&x| x + 1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;
    use crate::partition::RowBlock;

    #[test]
    fn paper_figure4_p0() {
        // Figure 4: P0's rows are global rows 0..3 with nonzeros
        // 1@(0,1), 2@(1,6), 3@(2,0), 4@(2,7) → RO=[1,2,3,5] (1-based),
        // CO=[2,7,1,8] (1-based), VL=[1,2,3,4].
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let p0 = part.extract_dense(&a, 0);
        let crs = Crs::from_dense(&p0, &mut OpCounter::new());
        assert_eq!(crs.ro_paper(), vec![1, 2, 3, 5]);
        assert_eq!(crs.co_paper(), vec![2, 7, 1, 8]);
        assert_eq!(crs.vl(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn paper_figure4_all_processors() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let expect: [(&[usize], &[usize], &[f64]); 4] = [
            (&[1, 2, 3, 5], &[2, 7, 1, 8], &[1., 2., 3., 4.]),
            (&[1, 2, 3, 4], &[6, 4, 5], &[5., 6., 7.]),
            (
                &[1, 2, 4, 7],
                &[7, 5, 8, 2, 3, 5],
                &[8., 9., 10., 11., 12., 13.],
            ),
            (&[1, 4], &[1, 4, 7], &[14., 15., 16.]),
        ];
        for (pid, (ro, co, vl)) in expect.iter().enumerate() {
            let local = part.extract_dense(&a, pid);
            let crs = Crs::from_dense(&local, &mut OpCounter::new());
            assert_eq!(&crs.ro_paper(), ro, "P{pid} RO");
            assert_eq!(&crs.co_paper(), co, "P{pid} CO");
            assert_eq!(&crs.vl(), vl, "P{pid} VL");
        }
    }

    #[test]
    fn round_trip_dense() {
        let a = paper_array_a();
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        assert_eq!(crs.to_dense(), a);
        assert!(crs.validate().is_ok());
    }

    #[test]
    fn op_count_matches_paper_formula() {
        // (1 + 3s)·cells with cells = 80, nnz = 16: 80 + 48 = 128.
        let a = paper_array_a();
        let mut ops = OpCounter::new();
        let _ = Crs::from_dense(&a, &mut ops);
        assert_eq!(ops.get(), 80 + 3 * 16);
    }

    #[test]
    fn from_part_global_stores_global_indices() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        // Row partition + CRS: global column == local column (Case 3.2.1).
        let crs = Crs::from_part_global(&a, &part, 1, &mut OpCounter::new());
        assert_eq!(crs.rows(), 3);
        assert_eq!(crs.cols(), 8); // bound is the global column count
        assert_eq!(crs.co(), &[5, 3, 4]); // global (and local) columns
        assert_eq!(crs.vl(), &[5., 6., 7.]);
    }

    #[test]
    fn from_part_global_op_total_is_whole_array_cost() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let mut ops = OpCounter::new();
        for pid in 0..4 {
            let _ = Crs::from_part_global(&a, &part, pid, &mut ops);
        }
        // Compressing every part touches each global cell exactly once:
        // n·m + 3·nnz = 80 + 48.
        assert_eq!(ops.get(), 128);
    }

    #[test]
    fn get_and_iter() {
        let a = paper_array_a();
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        assert_eq!(crs.get(8, 2), 12.0);
        assert_eq!(crs.get(8, 3), 0.0);
        assert_eq!(crs.iter().count(), 16);
        let trips: Vec<_> = crs.iter().collect();
        assert_eq!(trips[0], (0, 1, 1.0));
        assert_eq!(trips[15], (9, 6, 16.0));
    }

    #[test]
    fn from_raw_validates() {
        assert!(Crs::from_raw(2, 3, vec![0, 1, 2], vec![0, 2], vec![1., 2.]).is_ok());
        assert!(Crs::from_raw(2, 3, vec![0, 1], vec![0], vec![1.]).is_err());
        assert!(Crs::from_raw(2, 3, vec![0, 1, 2], vec![0, 5], vec![1., 2.]).is_err());
    }

    #[test]
    fn empty_and_full_arrays() {
        let z = Dense2D::zeros(3, 3);
        let crs = Crs::from_dense(&z, &mut OpCounter::new());
        assert_eq!(crs.nnz(), 0);
        assert_eq!(crs.to_dense(), z);

        let mut f = Dense2D::zeros(2, 2);
        for r in 0..2 {
            for c in 0..2 {
                f.set(r, c, 1.0);
            }
        }
        let crs = Crs::from_dense(&f, &mut OpCounter::new());
        assert_eq!(crs.nnz(), 4);
        assert_eq!(crs.to_dense(), f);
    }

    #[test]
    fn zero_row_array() {
        let e = Dense2D::zeros(0, 5);
        let crs = Crs::from_dense(&e, &mut OpCounter::new());
        assert_eq!(crs.rows(), 0);
        assert_eq!(crs.ro(), &[0]);
        assert!(crs.validate().is_ok());
    }

    #[test]
    fn from_triplets_matches_from_dense() {
        let a = paper_array_a();
        let mut trips: Vec<(usize, usize, f64)> = a.iter_nonzero().collect();
        // Shuffle-ish: reverse to ensure order independence.
        trips.reverse();
        let got = Crs::from_triplets(10, 8, &trips, &mut OpCounter::new());
        let want = Crs::from_dense(&a, &mut OpCounter::new());
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn from_triplets_rejects_duplicates() {
        let trips = vec![(0, 1, 1.0), (0, 1, 2.0)];
        let _ = Crs::from_triplets(2, 2, &trips, &mut OpCounter::new());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn from_triplets_rejects_out_of_bounds() {
        let trips = vec![(5, 0, 1.0)];
        let _ = Crs::from_triplets(2, 2, &trips, &mut OpCounter::new());
    }

    #[test]
    fn row_accessors() {
        let a = paper_array_a();
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        assert_eq!(crs.row_nnz(8), 3);
        assert_eq!(crs.row_cols(8), &[1, 2, 4]);
        assert_eq!(crs.row_vals(8), &[11., 12., 13.]);
        assert_eq!(crs.row_nnz(3), 1);
    }
}
