//! Block Sparse Row (BSR) storage.
//!
//! The blocked CRS variant for arrays whose nonzeros cluster in small
//! dense blocks (finite-element stiffness matrices with multiple degrees
//! of freedom per node, the molecular-dynamics locality of the paper's
//! introduction). The block grid is CRS-compressed; each stored block is a
//! dense `br × bc` tile, so scattered sparsity pays padding the same way
//! DIA does.

use crate::compress::CompressError;
use crate::dense::Dense2D;
use crate::opcount::OpCounter;

/// A sparse array in block sparse row storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Bsr {
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    /// Block-row pointer (`rows/br + 1` entries).
    block_ro: Vec<usize>,
    /// Block-column indices per stored block.
    block_co: Vec<usize>,
    /// Dense tiles, `br·bc` each, row-major within the tile.
    blocks: Vec<f64>,
}

impl Bsr {
    /// Compress a dense array with `br × bc` tiles.
    ///
    /// One op per cell scanned plus `br·bc` per stored tile (the copy).
    ///
    /// # Errors
    /// Returns [`CompressError::TileShape`] if a tile dimension is zero or
    /// the tile shape does not divide the array shape — tile geometry often
    /// comes from user input (CLI flags, config files), so it is a
    /// recoverable error rather than API misuse.
    pub fn from_dense(
        a: &Dense2D,
        br: usize,
        bc: usize,
        ops: &mut OpCounter,
    ) -> Result<Bsr, CompressError> {
        if br == 0 || bc == 0 || a.rows() % br != 0 || a.cols() % bc != 0 {
            return Err(CompressError::TileShape {
                rows: a.rows(),
                cols: a.cols(),
                br,
                bc,
            });
        }
        let grows = a.rows() / br;
        let gcols = a.cols() / bc;
        let mut block_ro = Vec::with_capacity(grows + 1);
        let mut block_co = Vec::new();
        let mut blocks = Vec::new();
        block_ro.push(0);
        for gi in 0..grows {
            for gj in 0..gcols {
                // Does this tile hold any nonzero?
                let mut any = false;
                for r in 0..br {
                    for c in 0..bc {
                        ops.tick();
                        if a.get(gi * br + r, gj * bc + c) != 0.0 {
                            any = true;
                        }
                    }
                }
                if any {
                    block_co.push(gj);
                    for r in 0..br {
                        for c in 0..bc {
                            blocks.push(a.get(gi * br + r, gj * bc + c));
                            ops.tick();
                        }
                    }
                }
            }
            block_ro.push(block_co.len());
        }
        Ok(Bsr {
            rows: a.rows(),
            cols: a.cols(),
            br,
            bc,
            block_ro,
            block_co,
            blocks,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tile shape `(br, bc)`.
    pub fn tile_shape(&self) -> (usize, usize) {
        (self.br, self.bc)
    }

    /// Number of stored tiles.
    pub fn nblocks(&self) -> usize {
        self.block_co.len()
    }

    /// Number of nonzero stored values (padding zeros excluded).
    pub fn nnz(&self) -> usize {
        self.blocks.iter().filter(|&&v| v != 0.0).count()
    }

    /// Stored elements including tile padding.
    pub fn stored_elements(&self) -> usize {
        self.blocks.len()
    }

    /// Value at `(r, c)` (0 if the covering tile is absent).
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        let (gi, gj) = (r / self.br, c / self.bc);
        let run = &self.block_co[self.block_ro[gi]..self.block_ro[gi + 1]];
        match run.binary_search(&gj) {
            Ok(k) => {
                let b = self.block_ro[gi] + k;
                self.blocks[b * self.br * self.bc + (r % self.br) * self.bc + (c % self.bc)]
            }
            Err(_) => 0.0,
        }
    }

    /// Expand to a dense array.
    pub fn to_dense(&self) -> Dense2D {
        let mut out = Dense2D::zeros(self.rows, self.cols);
        let grows = self.rows / self.br;
        for gi in 0..grows {
            for k in self.block_ro[gi]..self.block_ro[gi + 1] {
                let gj = self.block_co[k];
                for r in 0..self.br {
                    for c in 0..self.bc {
                        let v = self.blocks[k * self.br * self.bc + r * self.bc + c];
                        if v != 0.0 {
                            out.set(gi * self.br + r, gj * self.bc + c, v);
                        }
                    }
                }
            }
        }
        out
    }

    /// `y = A·x` tile by tile.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols,
            "x length {} != cols {}",
            x.len(),
            self.cols
        );
        let mut y = vec![0.0; self.rows];
        let grows = self.rows / self.br;
        for gi in 0..grows {
            for k in self.block_ro[gi]..self.block_ro[gi + 1] {
                let gj = self.block_co[k];
                let tile = &self.blocks[k * self.br * self.bc..(k + 1) * self.br * self.bc];
                for r in 0..self.br {
                    let mut acc = 0.0;
                    for c in 0..self.bc {
                        acc += tile[r * self.bc + c] * x[gj * self.bc + c];
                    }
                    y[gi * self.br + r] += acc;
                }
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;

    #[test]
    fn round_trip_paper_array() {
        let a = paper_array_a();
        for (br, bc) in [(1, 1), (2, 2), (5, 4), (10, 8), (2, 4)] {
            let bsr = Bsr::from_dense(&a, br, bc, &mut OpCounter::new()).unwrap();
            assert_eq!(bsr.to_dense(), a, "{br}x{bc}");
            assert_eq!(bsr.nnz(), 16);
        }
    }

    #[test]
    fn one_by_one_tiles_store_exactly_nnz() {
        let a = paper_array_a();
        let bsr = Bsr::from_dense(&a, 1, 1, &mut OpCounter::new()).unwrap();
        assert_eq!(bsr.nblocks(), 16);
        assert_eq!(bsr.stored_elements(), 16);
    }

    #[test]
    fn clustered_blocks_pack_tightly() {
        // A single dense 4×4 cluster → 1 tile at (br,bc)=(4,4), zero padding.
        let mut a = Dense2D::zeros(8, 8);
        for r in 4..8 {
            for c in 0..4 {
                a.set(r, c, 1.0);
            }
        }
        let bsr = Bsr::from_dense(&a, 4, 4, &mut OpCounter::new()).unwrap();
        assert_eq!(bsr.nblocks(), 1);
        assert_eq!(bsr.stored_elements(), 16);
        assert_eq!(bsr.nnz(), 16);
        assert_eq!(bsr.get(5, 2), 1.0);
        assert_eq!(bsr.get(0, 0), 0.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = paper_array_a();
        let bsr = Bsr::from_dense(&a, 2, 4, &mut OpCounter::new()).unwrap();
        let x: Vec<f64> = (1..=8).map(|v| v as f64).collect();
        let want: Vec<f64> = (0..10)
            .map(|r| (0..8).map(|c| a.get(r, c) * x[c]).sum())
            .collect();
        assert_eq!(bsr.spmv(&x), want);
    }

    #[test]
    fn indivisible_tiles_rejected() {
        let a = paper_array_a();
        let err = Bsr::from_dense(&a, 3, 3, &mut OpCounter::new()).unwrap_err();
        assert_eq!(
            err,
            CompressError::TileShape {
                rows: 10,
                cols: 8,
                br: 3,
                bc: 3
            }
        );
        assert!(err.to_string().contains("does not divide"), "{err}");
        let err = Bsr::from_dense(&a, 0, 2, &mut OpCounter::new()).unwrap_err();
        assert_eq!(
            err,
            CompressError::TileShape {
                rows: 10,
                cols: 8,
                br: 0,
                bc: 2
            }
        );
    }

    #[test]
    fn empty_array() {
        let a = Dense2D::zeros(6, 6);
        let bsr = Bsr::from_dense(&a, 2, 3, &mut OpCounter::new()).unwrap();
        assert_eq!(bsr.nblocks(), 0);
        assert_eq!(bsr.to_dense(), a);
    }
}
