//! Diagonal (DIA) storage.
//!
//! One of the *Templates* book formats the paper's §1 alludes to ("many
//! data compression methods in [4] can be used"). DIA stores each
//! populated diagonal as a dense strip; it shines on banded systems
//! (tridiagonal solvers, stencils) and degrades badly on scattered
//! sparsity — the `compression_formats` bench quantifies both.
//!
//! A diagonal is identified by its offset `k = col − row`
//! (`−(rows−1) ≤ k ≤ cols−1`); strip `d` stores `A[r, r+k_d]` at position
//! `d·rows + r`, with zeros padding the out-of-range ends.

use crate::dense::Dense2D;
use crate::opcount::OpCounter;

/// A sparse array in diagonal storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Dia {
    rows: usize,
    cols: usize,
    /// Offsets `col − row` of the stored diagonals, strictly increasing.
    offsets: Vec<isize>,
    /// `offsets.len() × rows` strip data, strip-major.
    data: Vec<f64>,
}

impl Dia {
    /// Compress a dense array: one op per cell scanned plus two per
    /// nonzero (strip lookup + store).
    pub fn from_dense(a: &Dense2D, ops: &mut OpCounter) -> Dia {
        // First pass: which diagonals are populated?
        let mut seen = vec![false; a.rows() + a.cols()];
        let base = a.rows() as isize - 1; // offset k maps to index k + base
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                ops.tick();
                if a.get(r, c) != 0.0 {
                    // k + base = c − r + rows − 1, rewritten to stay in usize.
                    seen[c + (a.rows() - 1 - r)] = true;
                }
            }
        }
        let offsets: Vec<isize> = seen
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i as isize - base))
            .collect();
        // Second pass: fill the strips.
        let mut data = vec![0.0; offsets.len() * a.rows()];
        let strip_of: std::collections::BTreeMap<isize, usize> =
            offsets.iter().enumerate().map(|(d, &k)| (k, d)).collect();
        for (r, c, v) in a.iter_nonzero() {
            let k = c as isize - r as isize;
            let d = strip_of[&k];
            data[d * a.rows() + r] = v;
            ops.add(2);
        }
        Dia {
            rows: a.rows(),
            cols: a.cols(),
            offsets,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The stored diagonal offsets.
    pub fn offsets(&self) -> &[isize] {
        &self.offsets
    }

    /// Number of stored strips.
    pub fn ndiags(&self) -> usize {
        self.offsets.len()
    }

    /// Stored value at `(r, c)` (0 if the diagonal is absent).
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        let k = c as isize - r as isize;
        match self.offsets.binary_search(&k) {
            Ok(d) => self.data[d * self.rows + r],
            Err(_) => 0.0,
        }
    }

    /// Number of nonzero stored values (padding zeros excluded).
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Storage footprint in elements, *including* padding — the quantity
    /// that blows up on scattered sparsity.
    pub fn stored_elements(&self) -> usize {
        self.data.len()
    }

    /// Strip `d` as a slice indexed by row.
    pub fn strip(&self, d: usize) -> &[f64] {
        &self.data[d * self.rows..(d + 1) * self.rows]
    }

    /// Expand to a dense array.
    pub fn to_dense(&self) -> Dense2D {
        let mut out = Dense2D::zeros(self.rows, self.cols);
        for (d, &k) in self.offsets.iter().enumerate() {
            for r in 0..self.rows {
                let Some(c) = r.checked_add_signed(k).filter(|&c| c < self.cols) else {
                    continue;
                };
                let v = self.data[d * self.rows + r];
                if v != 0.0 {
                    out.set(r, c, v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;

    #[test]
    fn tridiagonal_uses_three_strips() {
        let mut a = Dense2D::zeros(6, 6);
        for r in 0..6 {
            a.set(r, r, 2.0);
            if r > 0 {
                a.set(r, r - 1, -1.0);
            }
            if r + 1 < 6 {
                a.set(r, r + 1, -1.0);
            }
        }
        let dia = Dia::from_dense(&a, &mut OpCounter::new());
        assert_eq!(dia.offsets(), &[-1, 0, 1]);
        assert_eq!(dia.ndiags(), 3);
        assert_eq!(dia.to_dense(), a);
        assert_eq!(dia.nnz(), 16);
        assert_eq!(dia.stored_elements(), 18); // 3 strips × 6 rows
    }

    #[test]
    fn round_trip_scattered() {
        let a = paper_array_a();
        let dia = Dia::from_dense(&a, &mut OpCounter::new());
        assert_eq!(dia.to_dense(), a);
        assert_eq!(dia.nnz(), 16);
        // Scattered sparsity populates many strips: the padding blow-up.
        assert!(
            dia.stored_elements() > 3 * a.nnz(),
            "{}",
            dia.stored_elements()
        );
    }

    #[test]
    fn get_reads_values_and_absent_diagonals() {
        let a = paper_array_a();
        let dia = Dia::from_dense(&a, &mut OpCounter::new());
        assert_eq!(dia.get(2, 0), 3.0);
        assert_eq!(dia.get(9, 6), 16.0);
        assert_eq!(dia.get(0, 0), 0.0);
    }

    #[test]
    fn rectangular_arrays() {
        let a = Dense2D::from_rows(&[&[1., 0., 2., 0.], &[0., 3., 0., 4.]]);
        let dia = Dia::from_dense(&a, &mut OpCounter::new());
        assert_eq!(dia.offsets(), &[0, 2]);
        assert_eq!(dia.to_dense(), a);
    }

    #[test]
    fn empty_array() {
        let a = Dense2D::zeros(4, 4);
        let dia = Dia::from_dense(&a, &mut OpCounter::new());
        assert_eq!(dia.ndiags(), 0);
        assert_eq!(dia.to_dense(), a);
        assert_eq!(dia.stored_elements(), 0);
    }
}
