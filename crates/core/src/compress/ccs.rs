//! Compressed Column Storage (CCS).
//!
//! The paper reuses the names `RO`/`CO` for both formats; to keep the code
//! readable this type names the arrays structurally: `cp` is the column
//! pointer array (the paper's per-column counterpart of `RO`) and `ri` is
//! the row index array (the paper's `CO` when CCS is in play). Values stay
//! `vl`.

use super::{validate_layout, CompressError};
use crate::dense::Dense2D;
use crate::opcount::OpCounter;
use crate::partition::Partition;

/// A sparse array in Compressed Column Storage.
///
/// `cp` has `cols + 1` entries starting at 0; column `c`'s nonzeros occupy
/// `ri[cp[c]..cp[c+1]]` (row indices, strictly increasing) and the matching
/// `vl` range. `rows` is the index bound for `ri`: global at a CFS source,
/// local after receiver-side conversion (the paper's Cases 3.2.2/3.2.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Ccs {
    rows: usize,
    cols: usize,
    cp: Vec<usize>,
    ri: Vec<usize>,
    vl: Vec<f64>,
}

impl Ccs {
    /// Compress a dense array column-by-column: 1 op per cell scanned plus
    /// 3 ops per nonzero, the paper's `(1 + 3s)·cells`.
    pub fn from_dense(a: &Dense2D, ops: &mut OpCounter) -> Ccs {
        let mut cp = Vec::with_capacity(a.cols() + 1);
        let mut ri = Vec::new();
        let mut vl = Vec::new();
        cp.push(0);
        for c in 0..a.cols() {
            for r in 0..a.rows() {
                ops.tick();
                let v = a.get(r, c);
                if v != 0.0 {
                    ri.push(r);
                    vl.push(v);
                    ops.add(3);
                }
            }
            cp.push(ri.len());
        }
        Ccs {
            rows: a.rows(),
            cols: a.cols(),
            cp,
            ri,
            vl,
        }
    }

    /// Compress one part of a partitioned global array straight from the
    /// global array, storing **global** row indices (the CFS source-side
    /// compression, §3.2; see Figure 5(b) where `CO` holds global indices).
    pub fn from_part_global(
        global: &Dense2D,
        part: &dyn Partition,
        pid: usize,
        ops: &mut OpCounter,
    ) -> Ccs {
        let (lrows, lcols) = part.local_shape(pid);
        let mut cp = Vec::with_capacity(lcols + 1);
        let mut ri = Vec::new();
        let mut vl = Vec::new();
        cp.push(0);
        for lc in 0..lcols {
            for lr in 0..lrows {
                ops.tick();
                let (gr, gc) = part.to_global(pid, lr, lc);
                let v = global.get(gr, gc);
                if v != 0.0 {
                    ri.push(gr);
                    vl.push(v);
                    ops.add(3);
                }
            }
            cp.push(ri.len());
        }
        let (grows, _) = part.global_shape();
        Ccs {
            rows: grows,
            cols: lcols,
            cp,
            ri,
            vl,
        }
    }

    /// Build from unsorted `(row, col, value)` triplets by counting sort
    /// over columns (the CCS mirror of [`crate::compress::Crs::from_triplets`]).
    ///
    /// # Panics
    /// Panics if a triplet is out of bounds or duplicated.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        trips: &[(usize, usize, f64)],
        ops: &mut OpCounter,
    ) -> Ccs {
        let mut counts = vec![0usize; cols + 1];
        for &(r, c, _) in trips {
            assert!(
                r < rows && c < cols,
                "triplet ({r},{c}) out of {rows}x{cols}"
            );
            counts[c + 1] += 1;
            ops.tick();
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
            ops.tick();
        }
        let cp = counts.clone();
        let mut placed: Vec<(usize, f64)> = vec![(0, 0.0); trips.len()];
        let mut cursor = cp.clone();
        for &(r, c, v) in trips {
            placed[cursor[c]] = (r, v);
            cursor[c] += 1;
            ops.tick();
        }
        for c in 0..cols {
            let run = &mut placed[cp[c]..cp[c + 1]];
            run.sort_unstable_by_key(|&(r, _)| r);
            ops.add(run.len() as u64);
            assert!(
                run.windows(2).all(|w| w[0].0 < w[1].0),
                "duplicate row in column {c}"
            );
        }
        let ri = placed.iter().map(|&(r, _)| r).collect();
        let vl = placed.iter().map(|&(_, v)| v).collect();
        Ccs {
            rows,
            cols,
            cp,
            ri,
            vl,
        }
    }

    /// Assemble from raw arrays with full validation.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        cp: Vec<usize>,
        ri: Vec<usize>,
        vl: Vec<f64>,
    ) -> Result<Ccs, CompressError> {
        validate_layout(&cp, &ri, &vl, cols, rows)?;
        Ok(Ccs {
            rows,
            cols,
            cp,
            ri,
            vl,
        })
    }

    /// Row-index bound (global at a CFS source, local at a receiver).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vl.len()
    }

    /// The column pointer array (0-based, `cols + 1` entries).
    pub fn cp(&self) -> &[usize] {
        &self.cp
    }

    /// The row index array.
    pub fn ri(&self) -> &[usize] {
        &self.ri
    }

    /// The value array.
    pub fn vl(&self) -> &[f64] {
        &self.vl
    }

    /// Nonzero count of column `c`.
    pub fn col_nnz(&self, c: usize) -> usize {
        self.cp[c + 1] - self.cp[c]
    }

    /// Row indices of column `c`.
    pub fn col_rows(&self, c: usize) -> &[usize] {
        &self.ri[self.cp[c]..self.cp[c + 1]]
    }

    /// Values of column `c`.
    pub fn col_vals(&self, c: usize) -> &[f64] {
        &self.vl[self.cp[c]..self.cp[c + 1]]
    }

    /// Value at `(r, c)` (0 if not stored).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        match self.col_rows(c).binary_search(&r) {
            Ok(k) => self.col_vals(c)[k],
            Err(_) => 0.0,
        }
    }

    /// Iterate stored `(row, col, value)` triplets in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.cols).flat_map(move |c| {
            self.col_rows(c)
                .iter()
                .zip(self.col_vals(c))
                .map(move |(&r, &v)| (r, c, v))
        })
    }

    /// Expand to a dense array.
    pub fn to_dense(&self) -> Dense2D {
        let mut out = Dense2D::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, v);
        }
        out
    }

    /// Re-check the structural invariants.
    pub fn validate(&self) -> Result<(), CompressError> {
        validate_layout(&self.cp, &self.ri, &self.vl, self.cols, self.rows)
    }

    /// The paper's 1-based column-pointer rendering.
    pub fn cp_paper(&self) -> Vec<usize> {
        self.cp.iter().map(|&x| x + 1).collect()
    }

    /// The paper's 1-based row-index rendering.
    pub fn ri_paper(&self) -> Vec<usize> {
        self.ri.iter().map(|&x| x + 1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;
    use crate::partition::RowBlock;

    #[test]
    fn round_trip_dense() {
        let a = paper_array_a();
        let ccs = Ccs::from_dense(&a, &mut OpCounter::new());
        assert_eq!(ccs.to_dense(), a);
        assert!(ccs.validate().is_ok());
        assert_eq!(ccs.nnz(), 16);
    }

    #[test]
    fn op_count_matches_paper_formula() {
        let a = paper_array_a();
        let mut ops = OpCounter::new();
        let _ = Ccs::from_dense(&a, &mut ops);
        assert_eq!(ops.get(), 80 + 3 * 16);
    }

    #[test]
    fn column_major_iteration_order() {
        let a = Dense2D::from_rows(&[&[1., 0.], &[2., 3.]]);
        let ccs = Ccs::from_dense(&a, &mut OpCounter::new());
        let trips: Vec<_> = ccs.iter().collect();
        assert_eq!(trips, vec![(0, 0, 1.0), (1, 0, 2.0), (1, 1, 3.0)]);
    }

    #[test]
    fn paper_figure5b_p1_global_indices() {
        // Figure 5: CFS with row partition + CCS. P1 owns global rows 3..6
        // with nonzeros 5@(3,5), 6@(4,3), 7@(5,4). CCS walks columns:
        // col 3 → row 4 (value 6), col 4 → row 5 (value 7),
        // col 5 → row 3 (value 5). The stored row indices are GLOBAL
        // (1-based: 5, 6, 4).
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let ccs = Ccs::from_part_global(&a, &part, 1, &mut OpCounter::new());
        assert_eq!(ccs.cols(), 8);
        assert_eq!(ccs.rows(), 10); // global row bound before conversion
        assert_eq!(ccs.ri_paper(), vec![5, 6, 4]);
        assert_eq!(ccs.vl(), &[6.0, 7.0, 5.0]);
        // Column pointers: cols 0-2 empty, col3 has 1, col4 has 1, col5
        // has 1, cols 6-7 empty → 1-based [1,1,1,1,2,3,4,4,4].
        assert_eq!(ccs.cp_paper(), vec![1, 1, 1, 1, 2, 3, 4, 4, 4]);
    }

    #[test]
    fn get_reads_stored_and_missing() {
        let a = paper_array_a();
        let ccs = Ccs::from_dense(&a, &mut OpCounter::new());
        assert_eq!(ccs.get(9, 6), 16.0);
        assert_eq!(ccs.get(0, 0), 0.0);
    }

    #[test]
    fn from_raw_validates() {
        assert!(Ccs::from_raw(3, 2, vec![0, 1, 2], vec![0, 2], vec![1., 2.]).is_ok());
        assert!(Ccs::from_raw(3, 2, vec![0, 2, 1], vec![0, 1], vec![1., 2.]).is_err());
        assert!(Ccs::from_raw(3, 2, vec![0, 1, 2], vec![0, 7], vec![1., 2.]).is_err());
    }

    #[test]
    fn zero_col_array() {
        let e = Dense2D::zeros(4, 0);
        let ccs = Ccs::from_dense(&e, &mut OpCounter::new());
        assert_eq!(ccs.cp(), &[0]);
        assert!(ccs.validate().is_ok());
    }

    #[test]
    fn col_accessors() {
        let a = paper_array_a();
        let ccs = Ccs::from_dense(&a, &mut OpCounter::new());
        // Column 4 holds values 7@(5,4), 9@(7,4), 13@(8,4).
        assert_eq!(ccs.col_nnz(4), 3);
        assert_eq!(ccs.col_rows(4), &[5, 7, 8]);
        assert_eq!(ccs.col_vals(4), &[7., 9., 13.]);
    }

    #[test]
    fn from_triplets_matches_from_dense() {
        let a = paper_array_a();
        let mut trips: Vec<(usize, usize, f64)> = a.iter_nonzero().collect();
        trips.reverse();
        let got = Ccs::from_triplets(10, 8, &trips, &mut OpCounter::new());
        let want = Ccs::from_dense(&a, &mut OpCounter::new());
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "duplicate row")]
    fn from_triplets_rejects_duplicates() {
        let trips = vec![(1, 0, 1.0), (1, 0, 2.0)];
        let _ = Ccs::from_triplets(2, 2, &trips, &mut OpCounter::new());
    }

    #[test]
    fn crs_and_ccs_agree_on_content() {
        use crate::compress::Crs;
        let a = paper_array_a();
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        let ccs = Ccs::from_dense(&a, &mut OpCounter::new());
        let mut from_crs: Vec<_> = crs.iter().collect();
        let mut from_ccs: Vec<_> = ccs.iter().collect();
        from_crs.sort_by_key(|a| (a.0, a.1));
        from_ccs.sort_by_key(|a| (a.0, a.1));
        assert_eq!(from_crs, from_ccs);
    }
}
