//! Data compression methods (phase 3 of every distribution scheme).
//!
//! The paper uses the two classic compressed formats from Barrett et al.'s
//! *Templates* book: **CRS** (Compressed Row Storage) and **CCS**
//! (Compressed Column Storage). Both use "two one-dimensional integer
//! arrays, `RO` and `CO`, and one one-dimensional floating-point array,
//! `VL`" (§3.1). Internally this crate stores 0-based indices and a
//! pointer array with a leading `0` (the standard modern layout); the
//! paper's figures are 1-based, and [`Crs::ro_paper`] et al. render that
//! form for the figure-reproduction tests.
//!
//! A [`Coo`] triplet format rounds out the set (used by the workload
//! generators and MatrixMarket I/O in `sparsedist-gen`), and three more
//! *Templates* formats — [`Dia`] (diagonal strips), [`Jds`] (jagged
//! diagonals) and [`Bsr`] (block sparse row) — are provided as local
//! conversion targets: the paper's schemes put CRS/CCS on the wire, and a
//! receiving processor may then re-compress into whichever format its
//! computation prefers (the `compression_formats` bench compares them).

mod bsr;
mod ccs;
mod coo;
mod crs;
mod dia;
mod jds;

pub use bsr::Bsr;
pub use ccs::Ccs;
pub use coo::Coo;
pub use crs::Crs;
pub use dia::Dia;
pub use jds::Jds;

use crate::dense::Dense2D;
use crate::opcount::OpCounter;
use std::fmt;

/// Which compressed format a scheme run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressKind {
    /// Compressed Row Storage: nonzeros walked along rows; the travelling
    /// indices are **column** indices.
    Crs,
    /// Compressed Column Storage: nonzeros walked along columns; the
    /// travelling indices are **row** indices.
    Ccs,
}

impl CompressKind {
    /// Lower-case label for table output.
    pub fn label(self) -> &'static str {
        match self {
            CompressKind::Crs => "crs",
            CompressKind::Ccs => "ccs",
        }
    }
}

impl fmt::Display for CompressKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A compressed local sparse array, as held by one processor after a
/// distribution scheme completes.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalCompressed {
    /// CRS-compressed local array.
    Crs(Crs),
    /// CCS-compressed local array.
    Ccs(Ccs),
}

impl LocalCompressed {
    /// Which format this is.
    pub fn kind(&self) -> CompressKind {
        match self {
            LocalCompressed::Crs(_) => CompressKind::Crs,
            LocalCompressed::Ccs(_) => CompressKind::Ccs,
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        match self {
            LocalCompressed::Crs(c) => c.nnz(),
            LocalCompressed::Ccs(c) => c.nnz(),
        }
    }

    /// Local array shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            LocalCompressed::Crs(c) => (c.rows(), c.cols()),
            LocalCompressed::Ccs(c) => (c.rows(), c.cols()),
        }
    }

    /// Expand back to a dense local array.
    pub fn to_dense(&self) -> Dense2D {
        match self {
            LocalCompressed::Crs(c) => c.to_dense(),
            LocalCompressed::Ccs(c) => c.to_dense(),
        }
    }

    /// Borrow the CRS payload.
    ///
    /// # Panics
    /// Panics if this is a CCS array.
    pub fn as_crs(&self) -> &Crs {
        match self {
            LocalCompressed::Crs(c) => c,
            // lint: allow(E003) — documented `# Panics` accessor; callers assert the variant
            LocalCompressed::Ccs(_) => panic!("expected CRS, found CCS"),
        }
    }

    /// Borrow the CCS payload.
    ///
    /// # Panics
    /// Panics if this is a CRS array.
    pub fn as_ccs(&self) -> &Ccs {
        match self {
            LocalCompressed::Ccs(c) => c,
            // lint: allow(E003) — documented `# Panics` accessor; callers assert the variant
            LocalCompressed::Crs(_) => panic!("expected CCS, found CRS"),
        }
    }
}

/// Compress a dense array with the requested method, counting element
/// operations into `ops` (what an SFC receiver does after its dense local
/// array arrives).
pub fn compress_dense(kind: CompressKind, a: &Dense2D, ops: &mut OpCounter) -> LocalCompressed {
    match kind {
        CompressKind::Crs => LocalCompressed::Crs(Crs::from_dense(a, ops)),
        CompressKind::Ccs => LocalCompressed::Ccs(Ccs::from_dense(a, ops)),
    }
}

/// Error from validating a compressed array's structural invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Pointer array has the wrong length for the dimension it indexes.
    PointerLength {
        /// Required length (`segments + 1`).
        expected: usize,
        /// Length found.
        actual: usize,
    },
    /// Pointer array does not start at zero.
    PointerStart,
    /// Pointer array decreases somewhere.
    PointerNotMonotone {
        /// First decreasing position.
        at: usize,
    },
    /// Pointer total disagrees with the index/value array lengths.
    LengthMismatch {
        /// The pointer array's final entry.
        pointer_total: usize,
        /// Index array length found.
        indices: usize,
        /// Value array length found.
        values: usize,
    },
    /// A stored index is out of the array bounds.
    IndexOutOfBounds {
        /// Offending position in the index array.
        position: usize,
        /// The out-of-range index.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
    /// Indices within one row/column are not strictly increasing.
    IndicesNotSorted {
        /// The offending row (CRS) or column (CCS).
        segment: usize,
    },
    /// A BSR tile shape that is zero or does not divide the array shape.
    TileShape {
        /// Array rows.
        rows: usize,
        /// Array columns.
        cols: usize,
        /// Tile rows requested.
        br: usize,
        /// Tile columns requested.
        bc: usize,
    },
    /// A buffer expected to carry a versioned wire header starts with
    /// something else (wrong magic, unknown flags, or too short to hold
    /// one).
    WireHeader {
        /// The bytes found where the header should be (zero-padded when the
        /// buffer is shorter than a header).
        found: [u8; 3],
    },
    /// A codec payload is structurally invalid (bad value-plane tag,
    /// dictionary code out of range, zero-length RLE run, …).
    Codec {
        /// What the decoder found wrong.
        reason: &'static str,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::PointerLength { expected, actual } => {
                write!(f, "pointer array length {actual}, expected {expected}")
            }
            CompressError::PointerStart => write!(f, "pointer array must start at 0"),
            CompressError::PointerNotMonotone { at } => {
                write!(f, "pointer array decreases at position {at}")
            }
            CompressError::LengthMismatch {
                pointer_total,
                indices,
                values,
            } => write!(
                f,
                "pointer total {pointer_total} disagrees with {indices} indices / {values} values"
            ),
            CompressError::IndexOutOfBounds {
                position,
                index,
                bound,
            } => {
                write!(
                    f,
                    "index {index} at position {position} exceeds bound {bound}"
                )
            }
            CompressError::IndicesNotSorted { segment } => {
                write!(
                    f,
                    "indices in segment {segment} are not strictly increasing"
                )
            }
            CompressError::TileShape { rows, cols, br, bc } => {
                write!(
                    f,
                    "tile shape {br}x{bc} does not divide array shape {rows}x{cols}"
                )
            }
            CompressError::WireHeader { found } => {
                write!(
                    f,
                    "missing or malformed wire header: found bytes {found:02x?}"
                )
            }
            CompressError::Codec { reason } => {
                write!(f, "malformed codec stream: {reason}")
            }
        }
    }
}

impl std::error::Error for CompressError {}

/// Shared validation for a (pointer, indices, values) compressed layout.
pub(crate) fn validate_layout(
    pointer: &[usize],
    indices: &[usize],
    values: &[f64],
    nsegments: usize,
    index_bound: usize,
) -> Result<(), CompressError> {
    if pointer.len() != nsegments + 1 {
        return Err(CompressError::PointerLength {
            expected: nsegments + 1,
            actual: pointer.len(),
        });
    }
    if pointer[0] != 0 {
        return Err(CompressError::PointerStart);
    }
    for i in 1..pointer.len() {
        if pointer[i] < pointer[i - 1] {
            return Err(CompressError::PointerNotMonotone { at: i });
        }
    }
    // lint: allow(E002) — pointer.len() == nsegments + 1 ≥ 1, checked first above
    let total = *pointer.last().expect("pointer array is non-empty");
    if total != indices.len() || total != values.len() {
        return Err(CompressError::LengthMismatch {
            pointer_total: total,
            indices: indices.len(),
            values: values.len(),
        });
    }
    for (pos, &idx) in indices.iter().enumerate() {
        if idx >= index_bound {
            return Err(CompressError::IndexOutOfBounds {
                position: pos,
                index: idx,
                bound: index_bound,
            });
        }
    }
    for seg in 0..nsegments {
        let run = &indices[pointer[seg]..pointer[seg + 1]];
        if run.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CompressError::IndicesNotSorted { segment: seg });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;

    #[test]
    fn compress_dense_dispatches() {
        let a = paper_array_a();
        let mut ops = OpCounter::new();
        let crs = compress_dense(CompressKind::Crs, &a, &mut ops);
        assert_eq!(crs.kind(), CompressKind::Crs);
        assert_eq!(crs.nnz(), 16);
        let ccs = compress_dense(CompressKind::Ccs, &a, &mut ops);
        assert_eq!(ccs.kind(), CompressKind::Ccs);
        assert_eq!(ccs.to_dense(), a);
    }

    #[test]
    fn validate_layout_catches_each_failure() {
        // Good layout: 2 segments, bound 4.
        assert!(validate_layout(&[0, 1, 3], &[2, 0, 3], &[1., 2., 3.], 2, 4).is_ok());
        assert_eq!(
            validate_layout(&[0, 1], &[0], &[1.], 2, 4),
            Err(CompressError::PointerLength {
                expected: 3,
                actual: 2
            })
        );
        assert_eq!(
            validate_layout(&[1, 1, 1], &[], &[], 2, 4),
            Err(CompressError::PointerStart)
        );
        assert_eq!(
            validate_layout(&[0, 2, 1], &[0], &[1.], 2, 4),
            Err(CompressError::PointerNotMonotone { at: 2 })
        );
        assert_eq!(
            validate_layout(&[0, 1, 3], &[0, 1], &[1., 2., 3.], 2, 4),
            Err(CompressError::LengthMismatch {
                pointer_total: 3,
                indices: 2,
                values: 3
            })
        );
        assert_eq!(
            validate_layout(&[0, 1, 2], &[0, 9], &[1., 2.], 2, 4),
            Err(CompressError::IndexOutOfBounds {
                position: 1,
                index: 9,
                bound: 4
            })
        );
        assert_eq!(
            validate_layout(&[0, 2, 2], &[3, 1], &[1., 2.], 2, 4),
            Err(CompressError::IndicesNotSorted { segment: 0 })
        );
    }

    #[test]
    fn local_compressed_accessors() {
        let a = paper_array_a();
        let mut ops = OpCounter::new();
        let c = compress_dense(CompressKind::Crs, &a, &mut ops);
        assert_eq!(c.shape(), (10, 8));
        let _ = c.as_crs();
    }

    #[test]
    #[should_panic(expected = "expected CCS")]
    fn wrong_accessor_panics() {
        let a = paper_array_a();
        let c = compress_dense(CompressKind::Crs, &a, &mut OpCounter::new());
        let _ = c.as_ccs();
    }
}
