//! Dense 2-D arrays: the representation of the *global* sparse array before
//! distribution and of the *local* arrays the SFC scheme ships.
//!
//! The array is row-major. "Sparse" in this workspace means "mostly zero by
//! value": the sparse ratio `s` of the paper is simply
//! `nnz / (rows × cols)`, and zero entries are represented explicitly in a
//! `Dense2D` (that is the whole point of the paper — the SFC baseline sends
//! them over the wire, the proposed schemes do not).

use std::fmt;

/// A row-major dense 2-D array of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense2D {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Dense2D {
    /// An all-zero `rows × cols` array.
    ///
    /// Zero dimensions are allowed: a ragged ceil-block partition can assign
    /// an empty local array to a trailing processor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense2D {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Dense2D { rows, cols, data }
    }

    /// Build from nested row slices (handy for literals in tests).
    ///
    /// # Panics
    /// Panics on ragged input or empty input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} but row 0 has {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Dense2D {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array holds no cells (a zero dimension).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Value at `(r, c)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Set the value at `(r, c)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a contiguous slice.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The full row-major backing slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Number of nonzero cells.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// The paper's sparse ratio `s = nnz / (rows × cols)` (0 for an empty
    /// array).
    pub fn sparse_ratio(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.len() as f64
        }
    }

    /// Iterate `(row, col, value)` over nonzero cells in row-major order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.data
            .iter()
            .enumerate()
            .filter_map(move |(i, &v)| (v != 0.0).then_some((i / self.cols, i % self.cols, v)))
    }

    /// Copy the rectangular block `[r0, r0+h) × [c0, c0+w)` into a new array.
    ///
    /// # Panics
    /// Panics if the block exceeds the bounds.
    pub fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Dense2D {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "block out of bounds"
        );
        let mut out = Dense2D::zeros(h, w);
        for r in 0..h {
            let src = &self.data[(r0 + r) * self.cols + c0..(r0 + r) * self.cols + c0 + w];
            out.data[r * w..(r + 1) * w].copy_from_slice(src);
        }
        out
    }

    /// Maximum absolute difference to `other` (for approximate comparisons
    /// after numeric pipelines).
    pub fn max_abs_diff(&self, other: &Dense2D) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Dense2D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>4}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The paper's running example: the 10×8 sparse array `A` of Figure 1, with
/// 16 nonzero elements valued 1–16.
pub fn paper_array_a() -> Dense2D {
    Dense2D::from_rows(&[
        &[0., 1., 0., 0., 0., 0., 0., 0.],
        &[0., 0., 0., 0., 0., 0., 2., 0.],
        &[3., 0., 0., 0., 0., 0., 0., 4.],
        &[0., 0., 0., 0., 0., 5., 0., 0.],
        &[0., 0., 0., 6., 0., 0., 0., 0.],
        &[0., 0., 0., 0., 7., 0., 0., 0.],
        &[0., 0., 0., 0., 0., 0., 8., 0.],
        &[0., 0., 0., 0., 9., 0., 0., 10.],
        &[0., 11., 12., 0., 13., 0., 0., 0.],
        &[14., 0., 0., 15., 0., 0., 16., 0.],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let a = Dense2D::zeros(3, 5);
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 5);
        assert_eq!(a.len(), 15);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.sparse_ratio(), 0.0);
    }

    #[test]
    fn get_set_round_trip() {
        let mut a = Dense2D::zeros(4, 4);
        a.set(2, 3, 7.5);
        a.set(0, 0, -1.0);
        assert_eq!(a.get(2, 3), 7.5);
        assert_eq!(a.get(0, 0), -1.0);
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn from_rows_matches_get() {
        let a = Dense2D::from_rows(&[&[1., 2.], &[3., 4.], &[0., 5.]]);
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 2);
        assert_eq!(a.get(1, 0), 3.0);
        assert_eq!(a.row(2), &[0., 5.]);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn ragged_rows_rejected() {
        let _ = Dense2D::from_rows(&[&[1., 2.], &[3.]]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_bounds_get_panics() {
        let a = Dense2D::zeros(2, 2);
        let _ = a.get(2, 0);
    }

    #[test]
    fn iter_nonzero_row_major() {
        let a = Dense2D::from_rows(&[&[0., 1.], &[2., 0.]]);
        let got: Vec<_> = a.iter_nonzero().collect();
        assert_eq!(got, vec![(0, 1, 1.0), (1, 0, 2.0)]);
    }

    #[test]
    fn block_extraction() {
        let a = Dense2D::from_rows(&[&[1., 2., 3.], &[4., 5., 6.], &[7., 8., 9.]]);
        let b = a.block(1, 1, 2, 2);
        assert_eq!(b, Dense2D::from_rows(&[&[5., 6.], &[8., 9.]]));
    }

    #[test]
    fn paper_array_has_sixteen_nonzeros() {
        let a = paper_array_a();
        assert_eq!((a.rows(), a.cols()), (10, 8));
        assert_eq!(a.nnz(), 16);
        // The nonzeros are valued 1..=16 in row-major order (Figure 1).
        let vals: Vec<f64> = a.iter_nonzero().map(|(_, _, v)| v).collect();
        assert_eq!(vals, (1..=16).map(|v| v as f64).collect::<Vec<_>>());
        assert!((a.sparse_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = Dense2D::from_rows(&[&[1., 2.], &[3., 4.]]);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(1, 0, 3.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    fn display_renders_rows() {
        let a = Dense2D::from_rows(&[&[1., 0.], &[0., 2.]]);
        let s = a.to_string();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('1') && s.contains('2'));
    }
}
