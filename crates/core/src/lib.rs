#![warn(missing_docs)]

//! Data distribution schemes for sparse arrays on distributed-memory
//! multicomputers.
//!
//! This crate is a from-scratch Rust implementation of the system described
//! in Lin, Chung & Liu, *"Data Distribution Schemes of Sparse Arrays on
//! Distributed Memory Multicomputers"*, ICPP 2002. Distributing a global
//! 2-D sparse array over `p` processors involves three phases —
//! **partition**, **distribution**, **compression** — and the paper studies
//! the three possible orderings of the last two:
//!
//! * `schemes::sfc` — **Send Followed Compress** (the baseline, as used by
//!   the Block Row Scatter scheme of Zapata et al.): each processor receives
//!   its *dense* local array and compresses it locally;
//! * `schemes::cfs` — **Compress Followed Send**: the source compresses
//!   every local array first (CRS/CCS with *global* indices) and ships the
//!   packed `RO`/`CO`/`VL` triples; receivers unpack and convert indices;
//! * `schemes::ed` — **Encoding–Decoding**: the source *encodes* each
//!   local array into a single interleaved buffer
//!   `B = R_0, (C_0j, V_0j)…, R_1, …`; receivers *decode* `B` straight into
//!   `RO`/`CO`/`VL`, converting indices on the fly.
//!
//! The supporting pieces are all here too:
//!
//! * [`dense::Dense2D`] — the global/local dense array type;
//! * [`partition`] — row, column, 2-D mesh block partitions (the paper's
//!   three), plus cyclic and block-cyclic extensions (§1 notes the schemes
//!   are partition-agnostic);
//! * [`compress`] — CRS and CCS storage (`RO`, `CO`, `VL` in the paper's
//!   nomenclature) plus a COO helper;
//! * [`encode`] — the ED special buffer `B` (Figure 6);
//! * [`convert`] — the index-conversion Cases 3.2.1–3.3.3;
//! * [`cost`] — the closed-form analytic model of Tables 1–2 and the
//!   Remark 1–5 predicates;
//! * [`redistribute`](mod@redistribute) — repartitioning an already-distributed sparse array
//!   (all-to-all or hub-routed), after Bandera & Zapata's redistribution
//!   line of work;
//! * [`gather`] — the inverse of distribution: collecting the distributed
//!   array back to the source, with dense/compressed/encoded mirrors of
//!   the three schemes;
//! * [`error::SparsedistError`] — the workspace error hierarchy: every
//!   driver returns `Result`, so injected faults (dropped/corrupted frames,
//!   dead ranks, exhausted retry budgets) surface as values instead of
//!   panics;
//! * [`opcount::OpCounter`] — instrumentation: the compression / packing /
//!   decoding loops count element operations as they execute, and the
//!   scheme drivers charge those counts to the simulated machine, so the
//!   regenerated tables measure the real code rather than the formulas.
//!
//! # Quickstart
//!
//! ```
//! use sparsedist_core::dense::Dense2D;
//! use sparsedist_core::partition::RowBlock;
//! use sparsedist_core::compress::CompressKind;
//! use sparsedist_core::schemes::{run_scheme, SchemeKind};
//! use sparsedist_multicomputer::{Multicomputer, MachineModel};
//!
//! // A small sparse array with a diagonal.
//! let mut a = Dense2D::zeros(16, 16);
//! for i in 0..16 { a.set(i, i, 1.0 + i as f64); }
//!
//! let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
//! let part = RowBlock::new(16, 16, 4);
//! let run = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Crs).unwrap();
//!
//! assert_eq!(run.total_nnz(), 16);
//! println!("T_Distribution = {}", run.t_distribution());
//! println!("T_Compression  = {}", run.t_compression());
//! ```

pub mod compress;
pub mod convert;
pub mod cost;
pub mod dense;
pub mod encode;
pub mod error;
pub mod gather;
pub mod opcount;
pub mod partition;
pub mod redistribute;
pub mod schemes;
pub mod wire;

pub use compress::{Ccs, CompressKind, Coo, Crs, LocalCompressed};
pub use dense::Dense2D;
pub use error::SparsedistError;
pub use gather::{gather_global, GatherRun, GatherStrategy};
pub use opcount::OpCounter;
pub use partition::{ColBlock, Mesh2D, Partition, RowBlock};
pub use redistribute::{redistribute, RedistRun, RedistStrategy};
pub use schemes::{run_scheme, run_scheme_with, SchemeConfig, SchemeKind, SchemeRun};
pub use wire::WireFormat;
