//! Wire formats for compressed-array messages.
//!
//! The paper's schemes put `(RO, CO, VL)` triples (CFS) and encoded
//! buffers `B` (ED) on the wire. The seed repo's **v1** layout is the
//! simplest possible one: every index travels as a little-endian `u64`
//! and every value as a little-endian `f64` — 8 bytes per element,
//! self-describing only by convention. This module adds a compact **v2**
//! layout and the negotiation glue between the two:
//!
//! * a 3-byte header `[b'S', b'2', flags]` (framing bytes, *not* logical
//!   elements — the paper charges `T_Data` per element, and an element is
//!   an element however many bytes encode it);
//! * [`FLAG_IDX32`]: fixed-width index fields narrow from 8 to 4 bytes
//!   when every index/count in the message fits a `u32`;
//! * [`FLAG_DELTA`]: sorted index runs (a CRS/CCS pointer array, or the
//!   travelling indices within one row/column segment) are delta-encoded
//!   as LEB128 varints, resetting at each segment boundary. For the
//!   paper's test arrays this is the big win: a sorted run of small
//!   deltas costs ~1 byte per index instead of 8.
//!
//! Values always travel as raw `f64` — they are incompressible noise for
//! our purposes, and bit-exactness is non-negotiable.
//!
//! Flags are **negotiated per message** by the sender ([`negotiate`])
//! from the index bound it already knows, and recovered by the receiver
//! from the header ([`read_header`]) — no out-of-band agreement beyond
//! "this stream is v2". Whether a stream is v1 or v2 is the
//! [`WireFormat`] choice made by the scheme configuration; v1 streams
//! are byte-identical to the seed repo's and carry no header.
//!
//! The element counter semantics are unchanged between formats: packing
//! the same triple under v1 and v2 yields the same
//! [`PackBuffer::elem_count`], so every virtual-time cost in the paper's
//! tables is format-independent; only bytes-on-wire (and host encode
//! time) change.

use crate::compress::CompressError;
use crate::error::SparsedistError;
use sparsedist_multicomputer::pack::{PackBuffer, PatchError, UnpackCursor, UnpackError};

/// Magic bytes opening every v2 message.
pub const MAGIC: [u8; 2] = [b'S', b'2'];

/// Total header length in bytes (magic + flags).
pub const HEADER_LEN: usize = 3;

/// Fixed-width index fields are 4-byte `u32` instead of 8-byte `u64`.
pub const FLAG_IDX32: u8 = 0b01;

/// Sorted index runs are LEB128 varint deltas (reset per segment).
pub const FLAG_DELTA: u8 = 0b10;

/// All flag bits a v2 header may carry.
pub const FLAG_MASK: u8 = FLAG_IDX32 | FLAG_DELTA;

/// Which wire layout a scheme run puts on the interconnect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum WireFormat {
    /// The seed layout: plain `u64`/`f64`, 8 bytes per element, no
    /// header. Kept as default so existing byte-exact behaviour (and the
    /// fault-injection corpus built on it) is untouched.
    #[default]
    V1,
    /// Compact layout: 3-byte header, then `IDX32`/`DELTA`-encoded index
    /// fields as negotiated per message.
    V2,
}

impl WireFormat {
    /// Lower-case label for table output.
    pub fn label(self) -> &'static str {
        match self {
            WireFormat::V1 => "v1",
            WireFormat::V2 => "v2",
        }
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Negotiate v2 flags for a message whose largest fixed-width field
/// (index, count or pointer total) is `max_field`.
///
/// `DELTA` is always on — every index run the schemes transmit is sorted
/// by CRS/CCS construction. `IDX32` is on when `max_field` fits a `u32`,
/// which covers any array with dimensions and nonzero count below 2³².
pub fn negotiate(max_field: usize) -> u8 {
    let mut flags = FLAG_DELTA;
    if max_field <= u32::MAX as usize {
        flags |= FLAG_IDX32;
    }
    flags
}

/// Append a v2 header carrying `flags`. Framing bytes only: the buffer's
/// element count is unchanged.
pub fn write_header(buf: &mut PackBuffer, flags: u8) {
    debug_assert_eq!(
        flags & !FLAG_MASK,
        0,
        "unknown wire flag bits: {flags:#04x}"
    );
    buf.push_raw(&[MAGIC[0], MAGIC[1], flags]);
}

/// Read and validate a v2 header, returning its flags.
///
/// Fails with [`CompressError::WireHeader`] on wrong magic, unknown flag
/// bits, or a buffer too short to hold a header (the found bytes are
/// reported zero-padded in that case).
pub fn read_header(cursor: &mut UnpackCursor<'_>) -> Result<u8, CompressError> {
    let mut found = [0u8; HEADER_LEN];
    if cursor.remaining() < HEADER_LEN {
        let n = cursor.remaining();
        let partial = cursor
            .try_read_raw(n)
            // lint: allow(E002) — n = remaining(), so this read cannot run short
            .expect("remaining() bytes are readable");
        found[..n].copy_from_slice(partial);
        return Err(CompressError::WireHeader { found });
    }
    let h = cursor
        .try_read_raw(HEADER_LEN)
        // lint: allow(E002) — remaining() ≥ HEADER_LEN was just checked
        .expect("length checked above");
    found.copy_from_slice(h);
    if found[0] != MAGIC[0] || found[1] != MAGIC[1] || found[2] & !FLAG_MASK != 0 {
        return Err(CompressError::WireHeader { found });
    }
    Ok(found[2])
}

/// Append one count/index field at the fixed width the flags select.
pub fn push_count(buf: &mut PackBuffer, v: usize, flags: u8) {
    if flags & FLAG_IDX32 != 0 {
        debug_assert!(
            v <= u32::MAX as usize,
            "IDX32 negotiated but field {v} overflows u32"
        );
        buf.push_u32(v as u32);
    } else {
        buf.push_u64(v as u64);
    }
}

/// Read one count/index field at the fixed width the flags select.
pub fn read_count(cursor: &mut UnpackCursor<'_>, flags: u8) -> Result<usize, UnpackError> {
    if flags & FLAG_IDX32 != 0 {
        cursor.try_read_u32().map(|v| v as usize)
    } else {
        cursor.try_read_u64().map(|v| v as usize)
    }
}

/// Append a placeholder count field and return its byte offset for a
/// later [`patch_count`] — the flag-aware analogue of
/// [`PackBuffer::push_u64_placeholder`], used by the ED encoder to write
/// each `R_i` before the row's pairs are known (single-pass encode).
pub fn push_count_placeholder(buf: &mut PackBuffer, flags: u8) -> usize {
    if flags & FLAG_IDX32 != 0 {
        buf.push_u32_placeholder()
    } else {
        buf.push_u64_placeholder()
    }
}

/// Overwrite the placeholder at `at` (from [`push_count_placeholder`],
/// with the same flags) with `v`.
pub fn patch_count(buf: &mut PackBuffer, at: usize, v: usize, flags: u8) -> Result<(), PatchError> {
    if flags & FLAG_IDX32 != 0 {
        debug_assert!(
            v <= u32::MAX as usize,
            "IDX32 negotiated but field {v} overflows u32"
        );
        buf.patch_u32(at, v as u32)
    } else {
        buf.patch_u64(at, v as u64)
    }
}

/// Append a non-decreasing run (a CRS/CCS pointer array) under the
/// negotiated flags: varint deltas when `DELTA` is set (first value
/// absolute), otherwise fixed-width fields.
pub fn push_monotone_run(buf: &mut PackBuffer, vs: &[usize], flags: u8) {
    if flags & FLAG_DELTA != 0 {
        let mut prev = 0u64;
        for (i, &v) in vs.iter().enumerate() {
            let v = v as u64;
            debug_assert!(i == 0 || v >= prev, "run is not monotone at position {i}");
            buf.push_varint(if i == 0 { v } else { v - prev });
            prev = v;
        }
    } else if flags & FLAG_IDX32 != 0 {
        for &v in vs {
            debug_assert!(v <= u32::MAX as usize);
            buf.push_u32(v as u32);
        }
    } else {
        buf.push_usize_slice(vs);
    }
}

/// Read back `n` fields written by [`push_monotone_run`] with the same
/// flags.
pub fn read_monotone_run(
    cursor: &mut UnpackCursor<'_>,
    n: usize,
    flags: u8,
) -> Result<Vec<usize>, UnpackError> {
    let mut out = Vec::with_capacity(n);
    if flags & FLAG_DELTA != 0 {
        let mut prev = 0u64;
        for i in 0..n {
            let d = cursor.try_read_varint()?;
            prev = if i == 0 { d } else { prev + d };
            out.push(prev as usize);
        }
    } else {
        for _ in 0..n {
            out.push(read_count(cursor, flags)?);
        }
    }
    Ok(out)
}

/// Streaming writer for sorted index runs that reset at segment
/// boundaries (the travelling `CO` indices of one CRS row / CCS column,
/// or one ED segment's `C_ij` run).
///
/// Under `DELTA` the first index after a [`IndexRunWriter::reset`] is
/// written absolute and the rest as deltas from their predecessor;
/// without `DELTA` each index is a fixed-width field.
#[derive(Debug, Clone)]
pub struct IndexRunWriter {
    flags: u8,
    prev: u64,
    fresh: bool,
}

impl IndexRunWriter {
    /// A writer for one message's negotiated flags, positioned at a
    /// segment boundary.
    pub fn new(flags: u8) -> Self {
        IndexRunWriter {
            flags,
            prev: 0,
            fresh: true,
        }
    }

    /// Mark a segment boundary: the next index is written absolute.
    pub fn reset(&mut self) {
        self.prev = 0;
        self.fresh = true;
    }

    /// Append one index of the current segment's sorted run.
    pub fn push(&mut self, buf: &mut PackBuffer, v: usize) {
        let v = v as u64;
        if self.flags & FLAG_DELTA != 0 {
            debug_assert!(self.fresh || v >= self.prev, "index run is not sorted");
            buf.push_varint(if self.fresh { v } else { v - self.prev });
            self.prev = v;
            self.fresh = false;
        } else if self.flags & FLAG_IDX32 != 0 {
            buf.push_u32(v as u32);
        } else {
            buf.push_u64(v);
        }
    }
}

/// Streaming reader matching [`IndexRunWriter`], with the same
/// segment-boundary [`IndexRunReader::reset`] protocol.
#[derive(Debug, Clone)]
pub struct IndexRunReader {
    flags: u8,
    prev: u64,
    fresh: bool,
}

impl IndexRunReader {
    /// A reader for the flags recovered from the message header.
    pub fn new(flags: u8) -> Self {
        IndexRunReader {
            flags,
            prev: 0,
            fresh: true,
        }
    }

    /// Mark a segment boundary: the next index read is absolute.
    pub fn reset(&mut self) {
        self.prev = 0;
        self.fresh = true;
    }

    /// Read one index of the current segment's run.
    pub fn next(&mut self, cursor: &mut UnpackCursor<'_>) -> Result<usize, UnpackError> {
        if self.flags & FLAG_DELTA != 0 {
            let d = cursor.try_read_varint()?;
            self.prev = if self.fresh { d } else { self.prev + d };
            self.fresh = false;
            Ok(self.prev as usize)
        } else if self.flags & FLAG_IDX32 != 0 {
            cursor.try_read_u32().map(|v| v as usize)
        } else {
            cursor.try_read_u64().map(|v| v as usize)
        }
    }
}

/// A decoded `(pointer, indices, values)` compressed triple, as carried
/// by the CFS wire message.
pub type UnpackedTriple = (Vec<usize>, Vec<usize>, Vec<f64>);

/// Pack a `(pointer, indices, values)` compressed triple — the CFS wire
/// message — into `buf` under `format`.
///
/// * **v1**: `pointer` then `indices` as `u64` runs, then `values` as
///   `f64` — byte-identical to the seed layout.
/// * **v2**: header, delta-varint pointer run, per-segment delta-varint
///   index runs (segment boundaries taken from `pointer`), raw `f64`
///   values. Flags are negotiated from `index_bound` (the exclusive
///   bound on travelling indices, i.e. the global inner dimension) and
///   the pointer total.
///
/// Both formats append exactly `pointer.len() + 2 * nnz` logical
/// elements, so `T_Data` charges are format-independent.
pub fn pack_triple_into(
    buf: &mut PackBuffer,
    pointer: &[usize],
    indices: &[usize],
    values: &[f64],
    index_bound: usize,
    format: WireFormat,
) {
    debug_assert_eq!(indices.len(), values.len());
    match format {
        WireFormat::V1 => {
            buf.push_usize_slice(pointer);
            buf.push_usize_slice(indices);
            buf.push_f64_slice(values);
        }
        WireFormat::V2 => {
            let total = pointer.last().copied().unwrap_or(0);
            let flags = negotiate(index_bound.max(total));
            write_header(buf, flags);
            push_monotone_run(buf, pointer, flags);
            let mut run = IndexRunWriter::new(flags);
            for seg in 0..pointer.len().saturating_sub(1) {
                run.reset();
                for &idx in &indices[pointer[seg]..pointer[seg + 1]] {
                    run.push(buf, idx);
                }
            }
            buf.push_f64_slice(values);
        }
    }
}

/// Unpack a triple written by [`pack_triple_into`] for an array with
/// `nsegments` outer segments. Returns `(pointer, indices, values)`.
///
/// The cursor must be exhausted afterwards by the caller if trailing
/// bytes are an error at its layer (scheme unpackers check this).
pub fn unpack_triple(
    cursor: &mut UnpackCursor<'_>,
    nsegments: usize,
    format: WireFormat,
) -> Result<UnpackedTriple, SparsedistError> {
    match format {
        WireFormat::V1 => {
            let pointer = cursor.try_read_usize_vec(nsegments + 1)?;
            // lint: allow(E002) — the vec was just read with nsegments + 1 ≥ 1 elements
            let nnz = *pointer.last().expect("pointer vec is non-empty");
            let indices = cursor.try_read_usize_vec(nnz)?;
            let values = cursor.try_read_f64_vec(nnz)?;
            Ok((pointer, indices, values))
        }
        WireFormat::V2 => {
            let flags = read_header(cursor)?;
            let pointer = read_monotone_run(cursor, nsegments + 1, flags)?;
            // lint: allow(E002) — read_monotone_run returned nsegments + 1 ≥ 1 elements
            let nnz = *pointer.last().expect("pointer vec is non-empty");
            let mut indices = Vec::with_capacity(nnz);
            let mut run = IndexRunReader::new(flags);
            for seg in 0..nsegments {
                run.reset();
                for _ in pointer[seg]..pointer[seg + 1] {
                    indices.push(run.next(cursor)?);
                }
            }
            let values = cursor.try_read_f64_vec(nnz)?;
            Ok((pointer, indices, values))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig7_triple() -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        // CRS of the paper's Figure 2 array restricted to one part:
        // 3 segments, 5 nonzeros, sorted indices within each segment.
        (
            vec![0, 2, 2, 5],
            vec![1, 6, 0, 3, 7],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
    }

    #[test]
    fn negotiate_picks_flags_from_field_bound() {
        assert_eq!(negotiate(0), FLAG_DELTA | FLAG_IDX32);
        assert_eq!(negotiate(u32::MAX as usize), FLAG_DELTA | FLAG_IDX32);
        assert_eq!(negotiate(u32::MAX as usize + 1), FLAG_DELTA);
    }

    #[test]
    fn header_round_trip_and_rejection() {
        let mut b = PackBuffer::new();
        write_header(&mut b, FLAG_DELTA | FLAG_IDX32);
        assert_eq!(b.elem_count(), 0, "header bytes are framing, not elements");
        assert_eq!(b.byte_len(), HEADER_LEN);
        assert_eq!(
            read_header(&mut b.cursor()).unwrap(),
            FLAG_DELTA | FLAG_IDX32
        );

        // Wrong magic.
        let mut bad = PackBuffer::new();
        bad.push_raw(&[b'X', b'2', 0]);
        assert_eq!(
            read_header(&mut bad.cursor()),
            Err(CompressError::WireHeader {
                found: [b'X', b'2', 0]
            })
        );
        // Unknown flag bits.
        let mut bad = PackBuffer::new();
        bad.push_raw(&[b'S', b'2', 0b100]);
        assert!(read_header(&mut bad.cursor()).is_err());
        // Too short: found bytes reported zero-padded.
        let mut short = PackBuffer::new();
        short.push_raw(b"S");
        assert_eq!(
            read_header(&mut short.cursor()),
            Err(CompressError::WireHeader {
                found: [b'S', 0, 0]
            })
        );
    }

    #[test]
    fn count_fields_follow_idx32() {
        for flags in [0, FLAG_IDX32] {
            let mut b = PackBuffer::new();
            push_count(&mut b, 7, flags);
            let slot = push_count_placeholder(&mut b, flags);
            patch_count(&mut b, slot, 99, flags).unwrap();
            let width = if flags & FLAG_IDX32 != 0 { 4 } else { 8 };
            assert_eq!(b.byte_len(), 2 * width);
            assert_eq!(b.elem_count(), 2);
            let mut c = b.cursor();
            assert_eq!(read_count(&mut c, flags).unwrap(), 7);
            assert_eq!(read_count(&mut c, flags).unwrap(), 99);
        }
    }

    #[test]
    fn monotone_run_round_trips_under_every_flag_combo() {
        let run = vec![0usize, 0, 3, 3, 10, 150, 16_500];
        for flags in [0, FLAG_IDX32, FLAG_DELTA, FLAG_DELTA | FLAG_IDX32] {
            let mut b = PackBuffer::new();
            push_monotone_run(&mut b, &run, flags);
            assert_eq!(b.elem_count(), run.len() as u64, "flags {flags:#04x}");
            let got = read_monotone_run(&mut b.cursor(), run.len(), flags).unwrap();
            assert_eq!(got, run, "flags {flags:#04x}");
        }
        // Delta encoding of small steps is ~1 byte per field.
        let mut b = PackBuffer::new();
        push_monotone_run(&mut b, &run, FLAG_DELTA);
        assert!(
            b.byte_len() <= 9,
            "7 small deltas should take ≤9 bytes, got {}",
            b.byte_len()
        );
    }

    #[test]
    fn index_runs_reset_at_segment_boundaries() {
        // Two sorted segments; the second starts below where the first
        // ended, which only decodes correctly if reset() re-arms the
        // absolute encoding.
        let segs: [&[usize]; 2] = [&[5, 6, 900], &[2, 4]];
        for flags in [0, FLAG_IDX32, FLAG_DELTA, FLAG_DELTA | FLAG_IDX32] {
            let mut b = PackBuffer::new();
            let mut w = IndexRunWriter::new(flags);
            for seg in segs {
                w.reset();
                for &v in seg {
                    w.push(&mut b, v);
                }
            }
            let mut c = b.cursor();
            let mut r = IndexRunReader::new(flags);
            for seg in segs {
                r.reset();
                for &v in seg {
                    assert_eq!(r.next(&mut c).unwrap(), v, "flags {flags:#04x}");
                }
            }
            assert!(c.is_exhausted());
        }
    }

    #[test]
    fn triple_round_trips_in_both_formats() {
        let (ro, co, vl) = fig7_triple();
        for format in [WireFormat::V1, WireFormat::V2] {
            let mut b = PackBuffer::new();
            pack_triple_into(&mut b, &ro, &co, &vl, 8, format);
            assert_eq!(
                b.elem_count(),
                (ro.len() + 2 * vl.len()) as u64,
                "element count must be format-independent ({format})"
            );
            let mut c = b.cursor();
            let (ro2, co2, vl2) = unpack_triple(&mut c, ro.len() - 1, format).unwrap();
            assert!(c.is_exhausted(), "{format}");
            assert_eq!(
                (ro2, co2, vl2),
                (ro.clone(), co.clone(), vl.clone()),
                "{format}"
            );
        }
    }

    #[test]
    fn v2_triple_is_smaller_and_v1_matches_seed_layout() {
        let (ro, co, vl) = fig7_triple();
        let mut v1 = PackBuffer::new();
        pack_triple_into(&mut v1, &ro, &co, &vl, 8, WireFormat::V1);
        // Seed layout: every element is 8 LE bytes in RO, CO, VL order.
        let mut seed = PackBuffer::new();
        seed.push_usize_slice(&ro);
        seed.push_usize_slice(&co);
        seed.push_f64_slice(&vl);
        assert_eq!(v1, seed);

        let mut v2 = PackBuffer::new();
        pack_triple_into(&mut v2, &ro, &co, &vl, 8, WireFormat::V2);
        assert!(
            v2.byte_len() < v1.byte_len(),
            "v2 ({}) must be smaller than v1 ({})",
            v2.byte_len(),
            v1.byte_len()
        );
        // Values dominate: 5 f64s = 40 bytes; header 3 + 4 pointer deltas
        // + 5 single-byte index varints = 12.
        assert_eq!(v2.byte_len(), 3 + 4 + 5 + 40);
    }

    #[test]
    fn truncated_v2_stream_is_an_error_not_a_panic() {
        let (ro, co, vl) = fig7_triple();
        let mut b = PackBuffer::new();
        pack_triple_into(&mut b, &ro, &co, &vl, 8, WireFormat::V2);
        let bytes = b.as_bytes();
        for cut in [0, 1, 2, 5, bytes.len() - 1] {
            let mut t = PackBuffer::new();
            t.push_raw(&bytes[..cut]);
            assert!(
                unpack_triple(&mut t.cursor(), ro.len() - 1, WireFormat::V2).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn wire_format_labels() {
        assert_eq!(WireFormat::default(), WireFormat::V1);
        assert_eq!(WireFormat::V1.to_string(), "v1");
        assert_eq!(WireFormat::V2.label(), "v2");
    }
}
