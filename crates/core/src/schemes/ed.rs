//! The Encoding–Decoding scheme (paper §3.3) — the paper's novel
//! contribution.
//!
//! The source *encodes* each local sparse array into a special buffer `B`
//! (counts and `(index, value)` pairs interleaved, [`crate::encode`]); the
//! buffers are sent; each receiver *decodes* its buffer straight into
//! `RO`/`CO`/`VL`, converting indices per Cases 3.3.1–3.3.3 on the fly.
//! Compared with CFS this removes the separate pack and unpack passes —
//! which is exactly why its distribution time wins (Remark 1).
//!
//! The driver flow (encode → send → decode) lives in the shared
//! [`pipeline`] module; this file only supplies the stage hooks.

use crate::compress::{CompressKind, LocalCompressed};
use crate::dense::Dense2D;
use crate::encode::{decode_part_wire, encode_part_into};
use crate::error::SparsedistError;
use crate::opcount::OpCounter;
use crate::partition::Partition;
use crate::schemes::pipeline::{self, SchemeStages, SourcePolicy};
use crate::schemes::{SchemeConfig, SchemeKind, SchemeRun};
use crate::wire::WirePolicy;
use sparsedist_multicomputer::{Multicomputer, PackBuffer, Phase};

pub(crate) struct Stages<'a> {
    global: &'a Dense2D,
    part: &'a dyn Partition,
    kind: CompressKind,
    policy: WirePolicy,
}

impl SchemeStages for Stages<'_> {
    type Mid = LocalCompressed;

    fn scheme(&self) -> SchemeKind {
        SchemeKind::Ed
    }

    fn source_policy(&self) -> SourcePolicy {
        SourcePolicy::Fused(Phase::Encode)
    }

    fn recv_phase(&self) -> Phase {
        Phase::Decode
    }

    fn batch_decode_inside_phase(&self) -> bool {
        true
    }

    fn buf_capacity(&self, pid: usize) -> usize {
        let (lrows, lcols) = self.part.local_shape(pid);
        (lrows + lrows * lcols / 4 + 1) * 8
    }

    fn encode_part(
        &self,
        buf: &mut PackBuffer,
        pid: usize,
        ops: &mut OpCounter,
    ) -> Result<(), SparsedistError> {
        encode_part_into(
            buf,
            self.global,
            self.part,
            pid,
            self.kind,
            &self.policy,
            ops,
        );
        Ok(())
    }

    fn decode_part(
        &self,
        payload: &PackBuffer,
        pid: usize,
        ops: &mut OpCounter,
    ) -> Result<LocalCompressed, SparsedistError> {
        decode_part_wire(payload, self.part, pid, self.kind, self.policy.format, ops)
    }

    fn finish_part(&self, mid: &LocalCompressed, _ops: &mut OpCounter) -> LocalCompressed {
        // Never reached (finish_phase is None): decode already compressed.
        mid.clone()
    }

    fn local_from(&self, mid: LocalCompressed) -> LocalCompressed {
        mid
    }
}

pub(crate) fn run(
    machine: &Multicomputer,
    global: &Dense2D,
    part: &dyn Partition,
    kind: CompressKind,
    config: SchemeConfig,
) -> Result<SchemeRun, SparsedistError> {
    let stages = Stages {
        global,
        part,
        kind,
        policy: WirePolicy::new(config.wire, config.codec, machine.model()),
    };
    pipeline::run_pipeline(machine, &stages, part, kind, config)
}
