//! The Encoding–Decoding scheme (paper §3.3) — the paper's novel
//! contribution.
//!
//! The source *encodes* each local sparse array into a special buffer `B`
//! (counts and `(index, value)` pairs interleaved, [`crate::encode`]); the
//! buffers are sent; each receiver *decodes* its buffer straight into
//! `RO`/`CO`/`VL`, converting indices per Cases 3.3.1–3.3.3 on the fly.
//! Compared with CFS this removes the separate pack and unpack passes —
//! which is exactly why its distribution time wins (Remark 1).

use crate::compress::{CompressKind, LocalCompressed};
use crate::dense::Dense2D;
use crate::encode::{decode_part, decode_part_wire, encode_part, encode_part_into};
use crate::error::SparsedistError;
use crate::opcount::OpCounter;
use crate::partition::Partition;
use crate::schemes::{
    alive_ranks_of, assign_owners, collect_parts, map_parts_counted, SchemeConfig, SchemeKind,
    SchemeRun, SOURCE,
};
use sparsedist_multicomputer::{Multicomputer, PackBuffer, Phase};

pub(crate) fn run(
    machine: &Multicomputer,
    global: &Dense2D,
    part: &dyn Partition,
    kind: CompressKind,
    config: SchemeConfig,
) -> Result<SchemeRun, SparsedistError> {
    let nparts = part.nparts();
    let owners = assign_owners(part, &alive_ranks_of(machine));
    let owners_ref = &owners;
    let (results, ledgers) = machine.run_with_ledgers(
        |env| -> Result<Vec<(usize, LocalCompressed)>, SparsedistError> {
            let me = env.rank();
            env.trace_scope("ED");
            if env.is_rank_dead(me) {
                return Ok(Vec::new());
            }
            if me == SOURCE {
                let bufs: Vec<PackBuffer> = env.phase(Phase::Encode, |env| {
                    let mut ops = OpCounter::new();
                    let (bufs, counts) = {
                        let arena = env.arena();
                        map_parts_counted(nparts, config.parallel, &mut ops, &|pid, ops| {
                            let (lrows, lcols) = part.local_shape(pid);
                            let mut buf = arena.checkout((lrows + lrows * lcols / 4 + 1) * 8);
                            encode_part_into(&mut buf, global, part, pid, kind, config.wire, ops)
                                .map(|()| buf)
                        })
                    };
                    if env.is_tracing() {
                        let pairs: Vec<(usize, u64)> = counts.into_iter().enumerate().collect();
                        env.trace_part_ops(&pairs);
                    }
                    env.charge_ops(ops.take());
                    bufs.into_iter().collect::<Result<Vec<_>, _>>()
                })?;
                env.phase(Phase::Send, |env| -> Result<(), SparsedistError> {
                    for (pid, buf) in bufs.into_iter().enumerate() {
                        env.send(owners_ref[pid], buf)?;
                    }
                    Ok(())
                })?;
            }
            let mine: Vec<usize> = (0..nparts).filter(|&pid| owners_ref[pid] == me).collect();
            let mut out = Vec::with_capacity(mine.len());
            if config.parallel && mine.len() >= 2 {
                // Receive everything first, then decode the parts on scoped
                // host threads; the merged op total is charged once, so the
                // Decode phase total matches the sequential path exactly.
                let mut msgs = Vec::with_capacity(mine.len());
                for &pid in &mine {
                    msgs.push((pid, env.recv(SOURCE)?));
                }
                let locals = env.phase(Phase::Decode, |env| {
                    let mut ops = OpCounter::new();
                    let (locals, counts) = {
                        let msgs_ref = &msgs;
                        map_parts_counted(msgs.len(), true, &mut ops, &|i, ops| {
                            let (pid, msg) = &msgs_ref[i];
                            decode_part_wire(&msg.payload, part, *pid, kind, config.wire, ops)
                        })
                    };
                    if env.is_tracing() {
                        let pairs: Vec<(usize, u64)> =
                            msgs.iter().map(|(pid, _)| *pid).zip(counts).collect();
                        env.trace_part_ops(&pairs);
                    }
                    env.charge_ops(ops.take());
                    locals
                });
                for (local, (pid, msg)) in locals.into_iter().zip(msgs) {
                    env.arena().recycle_bytes(msg.payload.into_bytes());
                    out.push((pid, local?));
                }
            } else {
                for pid in mine {
                    let msg = env.recv(SOURCE)?;
                    let local = env.phase(Phase::Decode, |env| {
                        let mut ops = OpCounter::new();
                        let local =
                            decode_part_wire(&msg.payload, part, pid, kind, config.wire, &mut ops);
                        let n = ops.take();
                        env.trace_part_ops(&[(pid, n)]);
                        env.charge_ops(n);
                        local
                    })?;
                    env.arena().recycle_bytes(msg.payload.into_bytes());
                    out.push((pid, local));
                }
            }
            Ok(out)
        },
    );
    let locals = collect_parts(results, nparts)?;
    Ok(SchemeRun {
        scheme: SchemeKind::Ed,
        compress_kind: kind,
        source: SOURCE,
        ledgers,
        locals,
        owners,
    })
}

/// Overlapped variant of the ED scheme: the source sends each processor's
/// special buffer **as soon as it is encoded** instead of encoding all `p`
/// buffers first.
///
/// The phase totals (and thus the paper's `T_Distribution` /
/// `T_Compression`) are identical to [`run`] — the same work happens — but
/// early receivers stop waiting sooner, so the *makespan*
/// ([`crate::schemes::SchemeRun::t_makespan`]) shrinks. The
/// `ablation_overlap` bench quantifies the gap.
///
/// # Errors
/// Same failure modes as [`crate::schemes::run_scheme`].
pub fn run_overlapped(
    machine: &Multicomputer,
    global: &Dense2D,
    part: &dyn Partition,
    kind: CompressKind,
) -> Result<SchemeRun, SparsedistError> {
    assert_eq!(
        machine.nprocs(),
        part.nparts(),
        "partition/machine size mismatch"
    );
    assert_eq!(
        part.global_shape(),
        (global.rows(), global.cols()),
        "partition/array shape mismatch"
    );
    if machine.fault_plan().is_some_and(|p| p.is_dead(SOURCE)) {
        return Err(SparsedistError::SourceDead { rank: SOURCE });
    }
    let nparts = part.nparts();
    let owners = assign_owners(part, &alive_ranks_of(machine));
    let owners_ref = &owners;
    let (results, ledgers) = machine.run_with_ledgers(
        |env| -> Result<Vec<(usize, LocalCompressed)>, SparsedistError> {
            let me = env.rank();
            env.trace_scope("ed-overlap");
            if env.is_rank_dead(me) {
                return Ok(Vec::new());
            }
            if me == SOURCE {
                for (pid, &owner) in owners_ref.iter().enumerate() {
                    let buf = env.phase(Phase::Encode, |env| {
                        let mut ops = OpCounter::new();
                        let buf = encode_part(global, part, pid, kind, &mut ops);
                        let n = ops.take();
                        env.trace_part_ops(&[(pid, n)]);
                        env.charge_ops(n);
                        buf
                    })?;
                    env.phase(Phase::Send, |env| env.send(owner, buf))?;
                }
            }
            let mine: Vec<usize> = (0..nparts).filter(|&pid| owners_ref[pid] == me).collect();
            let mut out = Vec::with_capacity(mine.len());
            for pid in mine {
                let msg = env.recv(SOURCE)?;
                let local = env.phase(Phase::Decode, |env| {
                    let mut ops = OpCounter::new();
                    let local = decode_part(&msg.payload, part, pid, kind, &mut ops);
                    let n = ops.take();
                    env.trace_part_ops(&[(pid, n)]);
                    env.charge_ops(n);
                    local
                })?;
                out.push((pid, local));
            }
            Ok(out)
        },
    );
    let locals = collect_parts(results, nparts)?;
    Ok(SchemeRun {
        scheme: SchemeKind::Ed,
        compress_kind: kind,
        source: SOURCE,
        ledgers,
        locals,
        owners,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;
    use crate::partition::RowBlock;
    use sparsedist_multicomputer::MachineModel;

    fn sp2(p: usize) -> Multicomputer {
        Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
    }

    #[test]
    fn row_crs_matches_table1_closed_form() {
        // Table 1 ED: T_Distribution = p·T_Startup + (2·nnz + rows)·T_Data
        // (no pack/unpack ops at all); T_Compression = encode + max decode.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = super::run(
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        )
        .unwrap();

        let src = &run.ledgers[0];
        assert_eq!(src.get(Phase::Pack).as_micros(), 0.0);
        for l in &run.ledgers {
            assert_eq!(l.get(Phase::Unpack).as_micros(), 0.0);
        }
        // Wire: per part rows_i + 2·nnz_i elements → total 10 + 32 = 42.
        let dist = run.t_distribution().as_micros();
        assert!(
            (dist - (4.0 * m.t_startup + 42.0 * m.t_data)).abs() < 1e-9,
            "dist {dist}"
        );

        // Encode = 128 ops (cells + 3·nnz); max decode = P2's
        // 1 + 3 rows + 2·6 = 16 ops (Case 3.3.1, no conversion).
        let comp = run.t_compression().as_micros();
        assert!((comp - (128.0 + 16.0) * m.t_op).abs() < 1e-9, "comp {comp}");
    }

    #[test]
    fn ed_wire_volume_beats_cfs() {
        // ED ships rows + 2·nnz; CFS ships (rows + p) + 2·nnz. The
        // difference is the p extra pointer entries (Remark 1's margin on
        // the wire, on top of the removed pack/unpack passes).
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let ed = super::run(
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        )
        .unwrap();
        let cfs = crate::schemes::run_scheme(
            crate::schemes::SchemeKind::Cfs,
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
        )
        .unwrap();
        let ed_send = ed.ledgers[0].get(Phase::Send);
        let cfs_send = cfs.ledgers[0].get(Phase::Send);
        assert!(ed_send < cfs_send);
    }

    #[test]
    fn overlapped_variant_same_state_same_totals_shorter_makespan() {
        let mut a = crate::dense::Dense2D::zeros(64, 64);
        for i in 0..410 {
            a.set((i * 7) % 64, (i * 13 + i / 64) % 64, 1.0 + i as f64);
        }
        let part = RowBlock::new(64, 64, 8);
        let m = sp2(8);
        let plain = super::run(&m, &a, &part, CompressKind::Crs, SchemeConfig::default()).unwrap();
        let over = run_overlapped(&m, &a, &part, CompressKind::Crs).unwrap();
        // Identical state and identical paper aggregates…
        assert_eq!(plain.locals, over.locals);
        assert_eq!(plain.t_distribution(), over.t_distribution());
        assert_eq!(plain.t_compression(), over.t_compression());
        // …and an identical makespan: the *last* destination's buffer is
        // still encoded and sent last, so the slowest finisher is unmoved.
        assert_eq!(plain.t_makespan(), over.t_makespan());
        // What overlap buys is earlier completion for everyone else:
        // strictly smaller mean completion time across ranks.
        let mean = |r: &crate::schemes::SchemeRun| -> f64 {
            r.ledgers
                .iter()
                .map(|l| (l.busy_total() + l.get(Phase::Wait)).as_micros())
                .sum::<f64>()
                / r.ledgers.len() as f64
        };
        assert!(
            mean(&over) < mean(&plain) * 0.99,
            "overlapped mean {} !< plain mean {}",
            mean(&over),
            mean(&plain)
        );
    }

    #[test]
    fn decoded_state_matches_direct_compression() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let run = super::run(
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        )
        .unwrap();
        for pid in 0..4 {
            let expect = crate::compress::Crs::from_dense(
                &part.extract_dense(&a, pid),
                &mut OpCounter::new(),
            );
            assert_eq!(run.locals[pid].as_crs(), &expect, "P{pid}");
        }
    }
}
