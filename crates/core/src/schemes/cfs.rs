//! The Compress Followed Send scheme (paper §3.2).
//!
//! The source compresses every local sparse array *before* distribution,
//! reading straight out of the global array, so the travelling `CO` values
//! are **global** indices. The compressed `RO`, `CO` and `VL` arrays are
//! packed into one buffer per processor and sent; each receiver unpacks
//! and, where the paper's Cases 3.2.2/3.2.3 apply, converts the indices to
//! local ones.
//!
//! Wire layout per part: the pointer array (its length is known to the
//! receiver from the partition), then the index array, then the value
//! array (the pointer's last entry tells the receiver the nonzero count).
//!
//! The driver flow (compress → pack → send → unpack) lives in the shared
//! [`pipeline`] module; this file only supplies the stage hooks.

use crate::compress::{Ccs, CompressKind, Crs, LocalCompressed};
use crate::convert::IndexConverter;
use crate::dense::Dense2D;
use crate::error::SparsedistError;
use crate::opcount::OpCounter;
use crate::partition::Partition;
use crate::schemes::pipeline::{self, SchemeStages, SourcePolicy};
use crate::schemes::{SchemeConfig, SchemeKind, SchemeRun};
use crate::wire::{self, WirePolicy};
use sparsedist_multicomputer::pack::UnpackError;
use sparsedist_multicomputer::{Multicomputer, PackBuffer, Phase};

pub(crate) struct Stages<'a> {
    global: &'a Dense2D,
    part: &'a dyn Partition,
    kind: CompressKind,
    policy: WirePolicy,
}

impl SchemeStages for Stages<'_> {
    type Mid = LocalCompressed;

    fn scheme(&self) -> SchemeKind {
        SchemeKind::Cfs
    }

    fn source_policy(&self) -> SourcePolicy {
        SourcePolicy::CompressThenPack
    }

    fn recv_phase(&self) -> Phase {
        Phase::Unpack
    }

    fn batch_decode_inside_phase(&self) -> bool {
        false
    }

    fn buf_capacity(&self, _pid: usize) -> usize {
        0
    }

    /// Compress part `pid` at the source (global indices) and pack it.
    ///
    /// The compressed arrays are packed straight from the borrowed `RO`/
    /// `CO`/`VL` slices — no intermediate `Vec` copies — and the wire
    /// layout is chosen by the configured format. `ops` counts only the
    /// *compression* work; packing cost is one op per packed element
    /// (exactly the buffer's element count), charged separately by the
    /// driver's [`SourcePolicy::CompressThenPack`] policy.
    fn encode_part(
        &self,
        buf: &mut PackBuffer,
        pid: usize,
        ops: &mut OpCounter,
    ) -> Result<(), SparsedistError> {
        let (grows, gcols) = self.part.global_shape();
        match self.kind {
            CompressKind::Crs => {
                let crs = Crs::from_part_global(self.global, self.part, pid, ops);
                wire::pack_triple_into(buf, crs.ro(), crs.co(), crs.vl(), gcols, &self.policy);
            }
            CompressKind::Ccs => {
                let ccs = Ccs::from_part_global(self.global, self.part, pid, ops);
                wire::pack_triple_into(buf, ccs.cp(), ccs.ri(), ccs.vl(), grows, &self.policy);
            }
        }
        Ok(())
    }

    /// Unpack a received buffer into a compressed local array, converting
    /// indices where the partition requires it.
    fn decode_part(
        &self,
        payload: &PackBuffer,
        pid: usize,
        ops: &mut OpCounter,
    ) -> Result<LocalCompressed, SparsedistError> {
        let (lrows, lcols) = self.part.local_shape(pid);
        let nsegments = match self.kind {
            CompressKind::Crs => lrows,
            CompressKind::Ccs => lcols,
        };
        let converter = IndexConverter::new(self.part, pid, self.kind);
        let bound = converter.local_index_bound(self.kind);

        let mut cursor = payload.cursor();
        let (pointer, travelling, values) =
            wire::unpack_triple(&mut cursor, nsegments, self.policy.format)?;
        ops.add((nsegments + 1) as u64);
        let nnz = pointer[nsegments];
        let mut indices = Vec::with_capacity(nnz);
        for &t in &travelling {
            ops.tick();
            indices.push(converter.to_local(t, ops));
        }
        ops.add(nnz as u64);
        if !cursor.is_exhausted() {
            // Longer than its own header describes: a framing mismatch.
            return Err(UnpackError {
                at: payload.byte_len() - cursor.remaining(),
                remaining: cursor.remaining(),
            }
            .into());
        }

        Ok(match self.kind {
            CompressKind::Crs => {
                LocalCompressed::Crs(Crs::from_raw(lrows, bound, pointer, indices, values)?)
            }
            CompressKind::Ccs => {
                LocalCompressed::Ccs(Ccs::from_raw(bound, lcols, pointer, indices, values)?)
            }
        })
    }

    fn finish_part(&self, mid: &LocalCompressed, _ops: &mut OpCounter) -> LocalCompressed {
        // Never reached (finish_phase is None): decode already compressed.
        mid.clone()
    }

    fn local_from(&self, mid: LocalCompressed) -> LocalCompressed {
        mid
    }
}

pub(crate) fn run(
    machine: &Multicomputer,
    global: &Dense2D,
    part: &dyn Partition,
    kind: CompressKind,
    config: SchemeConfig,
) -> Result<SchemeRun, SparsedistError> {
    let stages = Stages {
        global,
        part,
        kind,
        policy: WirePolicy::new(config.wire, config.codec, machine.model()),
    };
    pipeline::run_pipeline(machine, &stages, part, kind, config)
}
