//! The Compress Followed Send scheme (paper §3.2).
//!
//! The source compresses every local sparse array *before* distribution,
//! reading straight out of the global array, so the travelling `CO` values
//! are **global** indices. The compressed `RO`, `CO` and `VL` arrays are
//! packed into one buffer per processor and sent; each receiver unpacks
//! and, where the paper's Cases 3.2.2/3.2.3 apply, converts the indices to
//! local ones.
//!
//! Wire layout per part: the pointer array (its length is known to the
//! receiver from the partition), then the index array, then the value
//! array (the pointer's last entry tells the receiver the nonzero count).

use crate::compress::{Ccs, CompressKind, Crs, LocalCompressed};
use crate::convert::IndexConverter;
use crate::dense::Dense2D;
use crate::error::SparsedistError;
use crate::opcount::OpCounter;
use crate::partition::Partition;
use crate::schemes::{
    alive_ranks_of, assign_owners, collect_parts, map_parts_counted, SchemeConfig, SchemeKind,
    SchemeRun, SOURCE,
};
use crate::wire::{self, WireFormat};
use sparsedist_multicomputer::pack::UnpackError;
use sparsedist_multicomputer::{Multicomputer, PackBuffer, Phase};

/// Compress part `pid` at the source (global indices) and pack it into
/// `buf` (typically checked out of the rank's arena).
///
/// The compressed arrays are packed straight from the borrowed `RO`/`CO`/
/// `VL` slices — no intermediate `Vec` copies — and the wire layout is
/// chosen by `format`. Pack cost stays one op per packed element (the
/// paper's `2n²s + n + p` total), identical for both formats.
fn compress_and_pack(
    buf: &mut PackBuffer,
    global: &Dense2D,
    part: &dyn Partition,
    pid: usize,
    kind: CompressKind,
    format: WireFormat,
    compress_ops: &mut OpCounter,
) {
    let (grows, gcols) = part.global_shape();
    match kind {
        CompressKind::Crs => {
            let crs = Crs::from_part_global(global, part, pid, compress_ops);
            wire::pack_triple_into(buf, crs.ro(), crs.co(), crs.vl(), gcols, format);
        }
        CompressKind::Ccs => {
            let ccs = Ccs::from_part_global(global, part, pid, compress_ops);
            wire::pack_triple_into(buf, ccs.cp(), ccs.ri(), ccs.vl(), grows, format);
        }
    }
}

/// Unpack a received buffer into a compressed local array, converting
/// indices where the partition requires it.
fn unpack(
    buf: &PackBuffer,
    part: &dyn Partition,
    pid: usize,
    kind: CompressKind,
    format: WireFormat,
    ops: &mut OpCounter,
) -> Result<LocalCompressed, SparsedistError> {
    let (lrows, lcols) = part.local_shape(pid);
    let nsegments = match kind {
        CompressKind::Crs => lrows,
        CompressKind::Ccs => lcols,
    };
    let converter = IndexConverter::new(part, pid, kind);
    let bound = converter.local_index_bound(kind);

    let mut cursor = buf.cursor();
    let (pointer, travelling, values) = wire::unpack_triple(&mut cursor, nsegments, format)?;
    ops.add((nsegments + 1) as u64);
    let nnz = pointer[nsegments];
    let mut indices = Vec::with_capacity(nnz);
    for &t in &travelling {
        ops.tick();
        indices.push(converter.to_local(t, ops));
    }
    ops.add(nnz as u64);
    if !cursor.is_exhausted() {
        // Longer than its own header describes: a framing mismatch.
        return Err(UnpackError {
            at: buf.byte_len() - cursor.remaining(),
            remaining: cursor.remaining(),
        }
        .into());
    }

    Ok(match kind {
        CompressKind::Crs => {
            LocalCompressed::Crs(Crs::from_raw(lrows, bound, pointer, indices, values)?)
        }
        CompressKind::Ccs => {
            LocalCompressed::Ccs(Ccs::from_raw(bound, lcols, pointer, indices, values)?)
        }
    })
}

pub(crate) fn run(
    machine: &Multicomputer,
    global: &Dense2D,
    part: &dyn Partition,
    kind: CompressKind,
    config: SchemeConfig,
) -> Result<SchemeRun, SparsedistError> {
    let nparts = part.nparts();
    let owners = assign_owners(part, &alive_ranks_of(machine));
    let owners_ref = &owners;
    let (results, ledgers) = machine.run_with_ledgers(
        |env| -> Result<Vec<(usize, LocalCompressed)>, SparsedistError> {
            let me = env.rank();
            env.trace_scope("CFS");
            if env.is_rank_dead(me) {
                return Ok(Vec::new());
            }
            if me == SOURCE {
                // Compression and packing are interleaved per part in the
                // code but charged to their own phases, exactly as the paper
                // accounts them. Packing cost is one op per packed element,
                // which is exactly the buffers' element counts.
                let (bufs, compress_total, compress_counts) = {
                    let arena = env.arena();
                    let mut compress_ops = OpCounter::new();
                    let (bufs, counts) = map_parts_counted(
                        nparts,
                        config.parallel,
                        &mut compress_ops,
                        &|pid, ops| {
                            let mut buf = arena.checkout(0);
                            compress_and_pack(&mut buf, global, part, pid, kind, config.wire, ops);
                            buf
                        },
                    );
                    (bufs, compress_ops.take(), counts)
                };
                let pack_total: u64 = bufs.iter().map(PackBuffer::elem_count).sum();
                env.phase(Phase::Compress, |env| {
                    if env.is_tracing() {
                        let pairs: Vec<(usize, u64)> =
                            compress_counts.into_iter().enumerate().collect();
                        env.trace_part_ops(&pairs);
                    }
                    env.charge_ops(compress_total)
                });
                env.phase(Phase::Pack, |env| {
                    if env.is_tracing() {
                        let pairs: Vec<(usize, u64)> = bufs
                            .iter()
                            .map(PackBuffer::elem_count)
                            .enumerate()
                            .collect();
                        env.trace_part_ops(&pairs);
                    }
                    env.charge_ops(pack_total)
                });
                env.phase(Phase::Send, |env| -> Result<(), SparsedistError> {
                    for (pid, buf) in bufs.into_iter().enumerate() {
                        env.send(owners_ref[pid], buf)?;
                    }
                    Ok(())
                })?;
            }
            let mine: Vec<usize> = (0..nparts).filter(|&pid| owners_ref[pid] == me).collect();
            let mut out = Vec::with_capacity(mine.len());
            if config.parallel && mine.len() >= 2 {
                // Receive everything first, then decode the parts on scoped
                // host threads; the merged op total is charged once, so the
                // Unpack phase total matches the sequential path exactly.
                let mut msgs = Vec::with_capacity(mine.len());
                for &pid in &mine {
                    msgs.push((pid, env.recv(SOURCE)?));
                }
                let (locals, unpack_total, unpack_counts) = {
                    let msgs_ref = &msgs;
                    let mut ops = OpCounter::new();
                    let (locals, counts) =
                        map_parts_counted(msgs.len(), true, &mut ops, &|i, ops| {
                            let (pid, msg) = &msgs_ref[i];
                            unpack(&msg.payload, part, *pid, kind, config.wire, ops)
                        });
                    (locals, ops.take(), counts)
                };
                env.phase(Phase::Unpack, |env| {
                    if env.is_tracing() {
                        let pairs: Vec<(usize, u64)> = msgs
                            .iter()
                            .map(|(pid, _)| *pid)
                            .zip(unpack_counts)
                            .collect();
                        env.trace_part_ops(&pairs);
                    }
                    env.charge_ops(unpack_total)
                });
                for (local, (pid, msg)) in locals.into_iter().zip(msgs) {
                    env.arena().recycle_bytes(msg.payload.into_bytes());
                    out.push((pid, local?));
                }
            } else {
                for pid in mine {
                    let msg = env.recv(SOURCE)?;
                    let local = env.phase(Phase::Unpack, |env| {
                        let mut ops = OpCounter::new();
                        let local = unpack(&msg.payload, part, pid, kind, config.wire, &mut ops);
                        let n = ops.take();
                        env.trace_part_ops(&[(pid, n)]);
                        env.charge_ops(n);
                        local
                    })?;
                    env.arena().recycle_bytes(msg.payload.into_bytes());
                    out.push((pid, local));
                }
            }
            Ok(out)
        },
    );
    let locals = collect_parts(results, nparts)?;
    Ok(SchemeRun {
        scheme: SchemeKind::Cfs,
        compress_kind: kind,
        source: SOURCE,
        ledgers,
        locals,
        owners,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;
    use crate::partition::RowBlock;
    use sparsedist_multicomputer::MachineModel;

    fn sp2(p: usize) -> Multicomputer {
        Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
    }

    #[test]
    fn row_crs_matches_table1_closed_form() {
        // Table 1 CFS with n-not-square array generalised:
        // compression = cells·(1+3s) ops; pack = 2·nnz + Σ(rows_i + 1);
        // send = p·T_Startup + pack_elems·T_Data;
        // unpack(max) = max_i (rows_i + 1 + 2·nnz_i).
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = super::run(
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        )
        .unwrap();

        let comp = run.t_compression().as_micros();
        assert!((comp - 128.0 * m.t_op).abs() < 1e-9, "compression: {comp}");

        // pack elems: pointers (3+1)+(3+1)+(3+1)+(1+1) = 14, plus 2·16 = 32
        // → 46 elements.
        let src = &run.ledgers[0];
        assert!((src.get(Phase::Pack).as_micros() - 46.0 * m.t_op).abs() < 1e-9);
        let send = src.get(Phase::Send).as_micros();
        assert!((send - (4.0 * m.t_startup + 46.0 * m.t_data)).abs() < 1e-9);

        // unpack max: P2 has 4 pointers + 2·6 indices/values = 16 ops
        // (Case 3.2.1: no conversion).
        let unpack_max = run
            .ledgers
            .iter()
            .map(|l| l.get(Phase::Unpack).as_micros())
            .fold(0.0f64, f64::max);
        assert!(
            (unpack_max - 16.0 * m.t_op).abs() < 1e-9,
            "unpack {unpack_max}"
        );
    }

    #[test]
    fn row_ccs_conversion_charged() {
        // Row partition + CCS is Case 3.2.2: each index conversion costs
        // one extra op → unpack per rank = (9 pointers) + 3·nnz_i.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = super::run(
            &sp2(4),
            &a,
            &part,
            CompressKind::Ccs,
            SchemeConfig::default(),
        )
        .unwrap();
        // P2 has 6 nonzeros: 9 + 18 = 27 ops.
        let unpack_max = run
            .ledgers
            .iter()
            .map(|l| l.get(Phase::Unpack).as_micros())
            .fold(0.0f64, f64::max);
        assert!(
            (unpack_max - 27.0 * m.t_op).abs() < 1e-9,
            "unpack {unpack_max}"
        );
    }

    #[test]
    fn receivers_hold_local_indices() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let run = super::run(
            &sp2(4),
            &a,
            &part,
            CompressKind::Ccs,
            SchemeConfig::default(),
        )
        .unwrap();
        // P1's decoded CCS must be over local rows 0..3, matching the
        // direct local compression.
        let expect = Ccs::from_dense(&part.extract_dense(&a, 1), &mut OpCounter::new());
        assert_eq!(run.locals[1].as_ccs(), &expect);
    }

    #[test]
    fn wire_volume_scales_with_nnz_not_cells() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = super::run(
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        )
        .unwrap();
        let send = run.ledgers[0].get(Phase::Send).as_micros();
        // 46 elements (see above) — far less than the 80 dense cells SFC
        // would send.
        assert!(send < 4.0 * m.t_startup + 80.0 * m.t_data);
    }
}
