//! The staged distribution pipeline shared by every scheme driver.
//!
//! The paper's three schemes differ only in *what* each stage does and
//! *which phase* pays for it — the flow is always the same stage graph:
//!
//! ```text
//!   source:    encode part 0..p  ──►  send part 0..p
//!                (per-scheme hook)      (blocking, or isend + wait_all
//!                                        under SchemeConfig::overlap;
//!                                        whole buffers, or bounded framed
//!                                        chunks under chunk_elems)
//!   receiver:  recv part(s)  ──►  decode  ──►  [finish]
//!                                  (hook)       (SFC's local compression)
//! ```
//!
//! [`SchemeStages`] captures the per-scheme hooks; [`run_pipeline`] is the
//! one driver that composes them with owner maps, wire-format negotiation,
//! host-side parallelism ([`map_parts_counted`]) and the fault-aware retry
//! layer underneath `send`/`recv`. The scheme modules (`sfc.rs`, `cfs.rs`,
//! `ed.rs`) shrink to their hooks plus a phase-charging policy.
//!
//! # Invariants
//!
//! * Under the default config (v1 wire, no overlap, no chunking) the driver
//!   replays the seed per-scheme drivers *exactly*: identical virtual
//!   clocks, ledgers, wire bytes and trace spans.
//! * `overlap` and `chunk_elems` never change the decoded local arrays or
//!   any non-`Send` busy phase's op total; overlap additionally keeps bytes
//!   and elements on the wire identical, while chunking adds exactly one
//!   prefix element (8 bytes) per logical message plus the extra
//!   `T_Startup` per additional chunk.

use crate::compress::{CompressKind, LocalCompressed};
use crate::error::SparsedistError;
use crate::opcount::OpCounter;
use crate::partition::Partition;
use crate::schemes::{
    alive_ranks_of, assign_owners, collect_parts, map_parts_counted, SchemeConfig, SchemeKind,
    SchemeRun, SOURCE,
};
use sparsedist_multicomputer::{CommError, Env, Multicomputer, PackBuffer, Phase};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::future::Future;
use std::pin::Pin;

/// A rank task's boxed future, borrowing its context and [`Env`] for `'e`
/// (the shape [`Multicomputer::run_tasks_with_ledgers`] expects back from
/// its spawning closure).
type TaskFuture<'e, T> = Pin<Box<dyn Future<Output = T> + 'e>>;

/// How a scheme's source-side encode is charged to the virtual clock.
pub(crate) enum SourcePolicy {
    /// Encode work is charged in one fused phase: SFC packs under
    /// [`Phase::Pack`], ED encodes under [`Phase::Encode`].
    Fused(Phase),
    /// CFS interleaves compression and packing per part in the code but the
    /// paper accounts them separately: the encode hook counts *compression*
    /// ops, and packing is then charged as one op per packed element.
    CompressThenPack,
}

/// The per-scheme hooks the shared driver composes. Implementations borrow
/// the global array / partition / wire format they need, so the hooks only
/// see a part id.
pub(crate) trait SchemeStages: Sync {
    /// What the decode hook produces; [`SchemeStages::finish_part`] or
    /// [`SchemeStages::local_from`] turns it into the final local array.
    /// (`Sync` because the batch finish stage shares the mids across scoped
    /// host threads by reference.)
    type Mid: Send + Sync;

    /// Which scheme this is (labels traces and the returned [`SchemeRun`]).
    fn scheme(&self) -> SchemeKind;

    /// Source-side phase-charging policy.
    fn source_policy(&self) -> SourcePolicy;

    /// The phase the receiver-side decode is charged to.
    fn recv_phase(&self) -> Phase;

    /// Whether the batch receiver path runs the decode inside the phase
    /// block (SFC, ED) or ahead of it (CFS) — irrelevant to the virtual
    /// clock (the hooks never charge the env) but it decides wall-clock
    /// attribution, and the driver replays each seed driver's shape.
    fn batch_decode_inside_phase(&self) -> bool;

    /// Arena checkout size for part `pid`'s wire buffer.
    fn buf_capacity(&self, pid: usize) -> usize;

    /// Produce part `pid`'s wire buffer, counting source-side ops.
    fn encode_part(
        &self,
        buf: &mut PackBuffer,
        pid: usize,
        ops: &mut OpCounter,
    ) -> Result<(), SparsedistError>;

    /// Decode a received payload, counting receiver-side ops.
    fn decode_part(
        &self,
        payload: &PackBuffer,
        pid: usize,
        ops: &mut OpCounter,
    ) -> Result<Self::Mid, SparsedistError>;

    /// The phase of the optional post-decode stage (SFC compresses its
    /// dense parts under [`Phase::Compress`]); `None` for CFS/ED, whose
    /// decode already yields the compressed local array.
    fn finish_phase(&self) -> Option<Phase> {
        None
    }

    /// The optional post-decode stage itself. Only invoked when
    /// [`SchemeStages::finish_phase`] is `Some`.
    fn finish_part(&self, mid: &Self::Mid, ops: &mut OpCounter) -> LocalCompressed;

    /// Convert the decode result into the local array directly (CFS/ED).
    /// Only invoked when [`SchemeStages::finish_phase`] is `None`.
    fn local_from(&self, mid: Self::Mid) -> LocalCompressed;
}

/// Send one logical part buffer: whole (the seed byte stream) or, with
/// `chunk_elems > 0`, as `⌈elems / chunk_elems⌉` bounded framed chunks.
///
/// Chunk framing: the byte stream is split into `k` near-equal ranges
/// (splits need *not* align with element boundaries — the receiver
/// reassembles before decoding); chunk 0 is prefixed with the chunk count
/// as one `u64` element. Each chunk re-credits its share `⌊E(i+1)/k⌋ −
/// ⌊Ei/k⌋ ≤ chunk_elems` of the original element count `E`, so per-chunk
/// `T_Data` charges sum to the unchunked total and any retransmission under
/// a fault plan charges [`Phase::Retry`] per *chunk*, not per logical
/// message. Overhead: one element + 8 bytes per logical message, plus one
/// `T_Startup` per additional chunk.
///
/// With `nonblocking`, every transmission is posted via [`Env::isend`];
/// the caller owns the eventual [`Env::wait_all`].
pub(crate) fn send_part(
    env: &mut Env,
    dst: usize,
    buf: PackBuffer,
    chunk_elems: usize,
    nonblocking: bool,
) -> Result<(), CommError> {
    let post = |env: &mut Env, b: PackBuffer| {
        if nonblocking {
            // lint: allow(C002) — send_part posts on behalf of its caller, who owns the eventual wait_all (drivers drain per stage)
            env.isend(dst, b)
        } else {
            env.send(dst, b)
        }
    };
    if chunk_elems == 0 {
        return post(env, buf);
    }
    let elems = buf.elem_count();
    let nbytes = buf.byte_len();
    // lint: allow(W002) — the chunk count is bounded by an in-memory element count
    let k = (elems.div_ceil(chunk_elems as u64) as usize).max(1);
    for i in 0..k {
        let (lo, hi) = (nbytes * i / k, nbytes * (i + 1) / k);
        let credit = elems * (i as u64 + 1) / k as u64 - elems * i as u64 / k as u64;
        let mut chunk = env.arena().checkout(hi - lo + 8);
        if i == 0 {
            chunk.push_u64(k as u64);
        }
        chunk.push_chunk(&buf.as_bytes()[lo..hi], credit);
        env.span(&format!("chunk{}/{k}", i + 1), |env| post(env, chunk))?;
    }
    env.arena().recycle_bytes(buf.into_bytes());
    Ok(())
}

/// Receive one logical part buffer from `src`, reassembling chunks when
/// `chunk_elems > 0` (the sender and receiver must agree on whether
/// chunking is on; the chunk count itself travels in the first frame).
/// The returned buffer's element count equals the sender's pre-chunking
/// count, so downstream recycling and accounting are chunking-agnostic.
///
/// Async so the event-loop engine can park the rank between frames; on
/// the threaded engine each `.await` resolves in the same poll.
pub(crate) async fn recv_part(
    env: &mut Env,
    src: usize,
    chunk_elems: usize,
) -> Result<PackBuffer, SparsedistError> {
    let first = env.recv_async(src).await?.payload;
    if chunk_elems == 0 {
        return Ok(first);
    }
    let k = first.cursor().try_read_usize()?;
    let mut out = env.arena().checkout(first.byte_len().saturating_mul(k));
    out.push_chunk(&first.as_bytes()[8..], first.elem_count() - 1);
    env.arena().recycle_bytes(first.into_bytes());
    for _ in 1..k {
        let chunk = env.recv_async(src).await?.payload;
        out.push_chunk(chunk.as_bytes(), chunk.elem_count());
        env.arena().recycle_bytes(chunk.into_bytes());
    }
    Ok(out)
}

/// Source side, staged (the seed flow): encode *all* parts, then send them
/// in part order.
fn source_staged<S: SchemeStages>(
    env: &mut Env,
    stages: &S,
    nparts: usize,
    owners: &[usize],
    config: SchemeConfig,
) -> Result<(), SparsedistError> {
    let bufs: Vec<PackBuffer> = match stages.source_policy() {
        SourcePolicy::Fused(phase) => env.phase(phase, |env| {
            let mut ops = OpCounter::new();
            let (bufs, counts) = {
                let arena = env.arena();
                map_parts_counted(nparts, config.parallel, &mut ops, &|pid, ops| {
                    let mut buf = arena.checkout(stages.buf_capacity(pid));
                    stages.encode_part(&mut buf, pid, ops).map(|()| buf)
                })
            };
            if env.is_tracing() {
                let pairs: Vec<(usize, u64)> = counts.into_iter().enumerate().collect();
                env.trace_part_ops(&pairs);
            }
            env.charge_ops(ops.take());
            bufs.into_iter().collect::<Result<Vec<_>, _>>()
        })?,
        SourcePolicy::CompressThenPack => {
            let (bufs, compress_total, compress_counts) = {
                let arena = env.arena();
                let mut compress_ops = OpCounter::new();
                let (bufs, counts) =
                    map_parts_counted(nparts, config.parallel, &mut compress_ops, &|pid, ops| {
                        let mut buf = arena.checkout(stages.buf_capacity(pid));
                        stages.encode_part(&mut buf, pid, ops).map(|()| buf)
                    });
                (bufs, compress_ops.take(), counts)
            };
            let bufs: Vec<PackBuffer> = bufs.into_iter().collect::<Result<Vec<_>, _>>()?;
            let pack_total: u64 = bufs.iter().map(PackBuffer::elem_count).sum();
            env.phase(Phase::Compress, |env| {
                if env.is_tracing() {
                    let pairs: Vec<(usize, u64)> =
                        compress_counts.into_iter().enumerate().collect();
                    env.trace_part_ops(&pairs);
                }
                env.charge_ops(compress_total)
            });
            env.phase(Phase::Pack, |env| {
                if env.is_tracing() {
                    let pairs: Vec<(usize, u64)> = bufs
                        .iter()
                        .map(PackBuffer::elem_count)
                        .enumerate()
                        .collect();
                    env.trace_part_ops(&pairs);
                }
                env.charge_ops(pack_total)
            });
            bufs
        }
    };
    env.phase(Phase::Send, |env| -> Result<(), SparsedistError> {
        for (pid, buf) in bufs.into_iter().enumerate() {
            send_part(env, owners[pid], buf, config.chunk_elems, false)?;
        }
        Ok(())
    })
}

/// Source side, overlapped: each part is sent (nonblocking) as soon as it
/// is encoded, so encode of part `i+1` overlaps the transfer of part `i`
/// on the NIC; one final `wait_all` (charged to [`Phase::Send`]) drains
/// the link. Encode/compress/pack carry the same *op totals* as the staged
/// path (charged per part here rather than as one fused sum, so the f64
/// phase totals agree to rounding dust), while the `Send` total shrinks to
/// the part of the wire time the CPU could not hide.
fn source_overlapped<S: SchemeStages>(
    env: &mut Env,
    stages: &S,
    nparts: usize,
    owners: &[usize],
    config: SchemeConfig,
) -> Result<(), SparsedistError> {
    for (pid, &owner) in owners.iter().enumerate().take(nparts) {
        let buf = match stages.source_policy() {
            SourcePolicy::Fused(phase) => env.phase(phase, |env| {
                let mut ops = OpCounter::new();
                let mut buf = env.arena().checkout(stages.buf_capacity(pid));
                let r = stages.encode_part(&mut buf, pid, &mut ops).map(|()| buf);
                let n = ops.take();
                env.trace_part_ops(&[(pid, n)]);
                env.charge_ops(n);
                r
            })?,
            SourcePolicy::CompressThenPack => {
                let mut ops = OpCounter::new();
                let mut buf = env.arena().checkout(stages.buf_capacity(pid));
                stages.encode_part(&mut buf, pid, &mut ops)?;
                let n = ops.take();
                env.phase(Phase::Compress, |env| {
                    env.trace_part_ops(&[(pid, n)]);
                    env.charge_ops(n);
                });
                let packed = buf.elem_count();
                env.phase(Phase::Pack, |env| {
                    env.trace_part_ops(&[(pid, packed)]);
                    env.charge_ops(packed);
                });
                buf
            }
        };
        env.phase(Phase::Send, |env| {
            send_part(env, owner, buf, config.chunk_elems, true)
        })?;
    }
    env.phase(Phase::Send, |env| env.wait_all());
    Ok(())
}

/// Receiver side: collect the parts this rank owns, decode them (batched
/// onto host threads when `parallel` and ≥ 2 parts land here), and run the
/// optional finish stage. Awaits only inside [`recv_part`].
async fn receive_parts<S: SchemeStages>(
    env: &mut Env,
    stages: &S,
    mine: &[usize],
    config: SchemeConfig,
) -> Result<Vec<(usize, LocalCompressed)>, SparsedistError> {
    let mut out = Vec::with_capacity(mine.len());
    if config.parallel && mine.len() >= 2 {
        // Receive everything first, then decode the parts on scoped host
        // threads; each phase's merged op total equals the sequential
        // path's sum of per-part charges, so the virtual clock cannot tell
        // them apart.
        let mut payloads = Vec::with_capacity(mine.len());
        for &pid in mine {
            payloads.push((pid, recv_part(env, SOURCE, config.chunk_elems).await?));
        }
        let decode = |i: usize, ops: &mut OpCounter, payloads: &[(usize, PackBuffer)]| {
            let (pid, payload) = &payloads[i];
            stages.decode_part(payload, *pid, ops)
        };
        let mids = if stages.batch_decode_inside_phase() {
            env.phase(stages.recv_phase(), |env| {
                let mut ops = OpCounter::new();
                let (mids, counts) = {
                    let ps = &payloads;
                    map_parts_counted(ps.len(), true, &mut ops, &|i, ops| decode(i, ops, ps))
                };
                if env.is_tracing() {
                    let pairs: Vec<(usize, u64)> =
                        payloads.iter().map(|(pid, _)| *pid).zip(counts).collect();
                    env.trace_part_ops(&pairs);
                }
                env.charge_ops(ops.take());
                mids
            })
        } else {
            let (mids, total, counts) = {
                let ps = &payloads;
                let mut ops = OpCounter::new();
                let (mids, counts) =
                    map_parts_counted(ps.len(), true, &mut ops, &|i, ops| decode(i, ops, ps));
                (mids, ops.take(), counts)
            };
            env.phase(stages.recv_phase(), |env| {
                if env.is_tracing() {
                    let pairs: Vec<(usize, u64)> =
                        payloads.iter().map(|(pid, _)| *pid).zip(counts).collect();
                    env.trace_part_ops(&pairs);
                }
                env.charge_ops(total)
            });
            mids
        };
        let mut locals = Vec::with_capacity(mids.len());
        for (mid, (pid, payload)) in mids.into_iter().zip(payloads) {
            env.arena().recycle_bytes(payload.into_bytes());
            locals.push((pid, mid?));
        }
        if let Some(fphase) = stages.finish_phase() {
            let compressed = env.phase(fphase, |env| {
                let mut ops = OpCounter::new();
                let (c, counts) = {
                    let locals_ref = &locals;
                    map_parts_counted(locals.len(), true, &mut ops, &|i, ops| {
                        stages.finish_part(&locals_ref[i].1, ops)
                    })
                };
                if env.is_tracing() {
                    let pairs: Vec<(usize, u64)> =
                        locals.iter().map(|(pid, _)| *pid).zip(counts).collect();
                    env.trace_part_ops(&pairs);
                }
                env.charge_ops(ops.take());
                c
            });
            out.extend(locals.iter().map(|(pid, _)| *pid).zip(compressed));
        } else {
            out.extend(
                locals
                    .into_iter()
                    .map(|(pid, mid)| (pid, stages.local_from(mid))),
            );
        }
    } else {
        for &pid in mine {
            let payload = recv_part(env, SOURCE, config.chunk_elems).await?;
            let mid = env.phase(stages.recv_phase(), |env| {
                let mut ops = OpCounter::new();
                let mid = stages.decode_part(&payload, pid, &mut ops);
                let n = ops.take();
                env.trace_part_ops(&[(pid, n)]);
                env.charge_ops(n);
                mid
            })?;
            env.arena().recycle_bytes(payload.into_bytes());
            if let Some(fphase) = stages.finish_phase() {
                let local = env.phase(fphase, |env| {
                    let mut ops = OpCounter::new();
                    let local = stages.finish_part(&mid, &mut ops);
                    let n = ops.take();
                    env.trace_part_ops(&[(pid, n)]);
                    env.charge_ops(n);
                    local
                });
                out.push((pid, local));
            } else {
                out.push((pid, stages.local_from(mid)));
            }
        }
    }
    Ok(out)
}

/// Everything a plain (unrouted) rank task needs, threaded through
/// [`Multicomputer::run_tasks_with_ledgers`]'s context parameter so the
/// spawning closure itself stays capture-free (the `for<'e>` bound
/// forbids it from holding these borrows directly).
struct PlainCtx<'a, S: SchemeStages> {
    stages: &'a S,
    nparts: usize,
    owners: &'a [usize],
    config: SchemeConfig,
}

/// One rank of the plain pipeline as a boxed task: source encode+send
/// (all synchronous — sends never block), then the async receive side.
fn plain_task<'e, S: SchemeStages>(
    ctx: &'e PlainCtx<'_, S>,
    env: &'e mut Env,
) -> TaskFuture<'e, Result<Vec<(usize, LocalCompressed)>, SparsedistError>> {
    Box::pin(async move {
        let me = env.rank();
        env.trace_scope(ctx.stages.scheme().label());
        if env.is_rank_dead(me) {
            return Ok(Vec::new());
        }
        if me == SOURCE {
            if ctx.config.overlap {
                source_overlapped(env, ctx.stages, ctx.nparts, ctx.owners, ctx.config)?;
            } else {
                source_staged(env, ctx.stages, ctx.nparts, ctx.owners, ctx.config)?;
            }
        }
        let mine: Vec<usize> = (0..ctx.nparts)
            .filter(|&pid| ctx.owners[pid] == me)
            .collect();
        receive_parts(env, ctx.stages, &mine, ctx.config).await
    })
}

/// The one SPMD driver behind `run_scheme`: owner assignment, source
/// encode+send (staged or overlapped), receiver decode (+finish), and
/// result collection. Runs through the task API, so machines past the
/// threaded engine's processor cap transparently land on the event-loop
/// backend with bit-identical ledgers.
///
/// Fault plans that schedule *timed* rank deaths
/// ([`sparsedist_multicomputer::FaultPlan::with_death_at`]) switch the run
/// onto the routed recovery protocol ([`run_pipeline_routed`]): parts are
/// announced with headers, dead destinations are re-homed mid-stream, and
/// the final owner map reflects where each part actually landed. Plans
/// without timed deaths (including drop/corrupt/delay-only plans) take the
/// plain path below, byte-identical to the seed behaviour.
pub(crate) fn run_pipeline<S: SchemeStages>(
    machine: &Multicomputer,
    stages: &S,
    part: &dyn Partition,
    kind: CompressKind,
    config: SchemeConfig,
) -> Result<SchemeRun, SparsedistError> {
    if machine.fault_plan().is_some_and(|p| p.has_timed_deaths()) {
        return run_pipeline_routed(machine, stages, part, kind, config);
    }
    let nparts = part.nparts();
    let owners = assign_owners(part, &alive_ranks_of(machine));
    let ctx = PlainCtx {
        stages,
        nparts,
        owners: &owners,
        config,
    };
    let (results, ledgers) = machine.run_tasks_with_ledgers(&ctx, |ctx, env| plain_task(ctx, env));
    let locals = collect_parts(results, nparts)?;
    Ok(SchemeRun {
        scheme: stages.scheme(),
        compress_kind: kind,
        source: SOURCE,
        ledgers,
        locals,
        owners,
    })
}

// ----------------------------------------------------------------------
// Routed recovery: the driver used when the fault plan schedules timed
// rank deaths.
// ----------------------------------------------------------------------

/// Routed-stream header tag announcing "no more parts for you".
const ROUTED_DONE: u64 = u64::MAX;

/// Source-side state for the routed recovery protocol.
///
/// Each part travels as a 1-element *header* message carrying its part id,
/// followed by the part body via [`send_part`]. When a send trips a timed
/// death ([`CommError::PeerDead`]) the router marks the destination dead,
/// re-homes every part it owned — both the already-delivered ones (lost
/// with the rank) and the queued remainder — onto the least-loaded
/// surviving compute rank, and replays them under [`Phase::Retry`]
/// (re-encode plus blocking resend: recovery work, not pipeline work).
/// After the queue drains, each surviving rank gets a [`ROUTED_DONE`]
/// header in ascending rank order; a death detected on the DONE send
/// triggers the same re-home-and-replay before the walk continues. Ranks
/// that already received DONE have left their receive loop, so they are
/// never re-home targets. The source itself is not a fallback owner: when
/// the last compute rank dies the distribution has failed, reported as
/// [`SparsedistError::NoSurvivors`].
struct Router<'a, S: SchemeStages> {
    stages: &'a S,
    config: SchemeConfig,
    /// Per-part cell counts, for least-loaded re-home placement.
    cells: &'a [usize],
    /// The evolving owner map (starts as [`assign_owners`]' placement).
    owners: Vec<usize>,
    /// Parts still to deliver, with a replay flag.
    work: VecDeque<(usize, bool)>,
    /// Parts fully delivered to each rank (replayed if the rank dies).
    delivered: Vec<Vec<usize>>,
    /// Ranks observed dead mid-run.
    dead: BTreeSet<usize>,
    /// Ranks that already received their DONE header.
    finished: BTreeSet<usize>,
}

impl<'a, S: SchemeStages> Router<'a, S> {
    fn new(
        stages: &'a S,
        config: SchemeConfig,
        cells: &'a [usize],
        owners: Vec<usize>,
        nprocs: usize,
    ) -> Self {
        let work = (0..owners.len()).map(|pid| (pid, false)).collect();
        let delivered = vec![Vec::new(); nprocs];
        Router {
            stages,
            config,
            cells,
            owners,
            work,
            delivered,
            dead: BTreeSet::new(),
            finished: BTreeSet::new(),
        }
    }

    /// Drive the whole source side: deliver every part, drain the NIC when
    /// overlapping, then walk the DONE headers in `done_order`.
    ///
    /// `done_order` lists the ranks sorted by scheduled death time,
    /// earliest first (the fault plan is shared deterministic state).
    /// Flushing the doomed ranks first means a death discovered on a DONE
    /// send still finds unfinished survivors to adopt the lost parts; a
    /// naive ascending walk can strand a late death's parts after every
    /// other rank has already left its receive loop.
    fn run(&mut self, env: &mut Env, done_order: &[usize]) -> Result<(), SparsedistError> {
        self.drain(env)?;
        if self.config.overlap {
            env.phase(Phase::Send, |env| env.wait_all());
        }
        for &r in done_order {
            if env.is_rank_dead(r) || self.dead.contains(&r) {
                continue;
            }
            let mut header = env.arena().checkout(8);
            header.push_u64(ROUTED_DONE);
            match env.phase(Phase::Send, |env| env.send(r, header)) {
                Ok(()) => {
                    self.finished.insert(r);
                }
                Err(CommError::PeerDead { rank }) => {
                    self.on_death(env, rank, None)?;
                    self.drain(env)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Pop and deliver queued parts until the queue is empty.
    fn drain(&mut self, env: &mut Env) -> Result<(), SparsedistError> {
        while let Some((pid, replay)) = self.work.pop_front() {
            self.deliver(env, pid, replay)?;
        }
        Ok(())
    }

    /// Encode and ship one part to its current owner, handling a death on
    /// the way out by re-homing and requeueing.
    fn deliver(&mut self, env: &mut Env, pid: usize, replay: bool) -> Result<(), SparsedistError> {
        let dst = self.owners[pid];
        let res = if replay {
            // Recovery work: the re-encode and the resend are both charged
            // to Retry, and the resend is blocking — replays are rare and
            // correctness of the failure ordering beats pipelining them.
            env.phase(Phase::Retry, |env| -> Result<(), SparsedistError> {
                let mut ops = OpCounter::new();
                let mut buf = env.arena().checkout(self.stages.buf_capacity(pid));
                self.stages.encode_part(&mut buf, pid, &mut ops)?;
                env.charge_ops(ops.take());
                self.ship(env, dst, pid, buf, false)
            })
        } else {
            let buf = self.encode_charged(env, pid)?;
            let nb = self.config.overlap;
            env.phase(Phase::Send, |env| self.ship(env, dst, pid, buf, nb))
        };
        match res {
            Ok(()) => {
                self.delivered[dst].push(pid);
                Ok(())
            }
            Err(SparsedistError::Comm(CommError::PeerDead { rank })) => {
                self.on_death(env, rank, Some(pid))
            }
            Err(e) => Err(e),
        }
    }

    /// Per-part encode with the same phase charging as the overlapped
    /// source path (per part, not fused).
    fn encode_charged(&self, env: &mut Env, pid: usize) -> Result<PackBuffer, SparsedistError> {
        match self.stages.source_policy() {
            SourcePolicy::Fused(phase) => env.phase(phase, |env| {
                let mut ops = OpCounter::new();
                let mut buf = env.arena().checkout(self.stages.buf_capacity(pid));
                let r = self
                    .stages
                    .encode_part(&mut buf, pid, &mut ops)
                    .map(|()| buf);
                let n = ops.take();
                env.trace_part_ops(&[(pid, n)]);
                env.charge_ops(n);
                r
            }),
            SourcePolicy::CompressThenPack => {
                let mut ops = OpCounter::new();
                let mut buf = env.arena().checkout(self.stages.buf_capacity(pid));
                self.stages.encode_part(&mut buf, pid, &mut ops)?;
                let n = ops.take();
                env.phase(Phase::Compress, |env| {
                    env.trace_part_ops(&[(pid, n)]);
                    env.charge_ops(n);
                });
                let packed = buf.elem_count();
                env.phase(Phase::Pack, |env| {
                    env.trace_part_ops(&[(pid, packed)]);
                    env.charge_ops(packed);
                });
                Ok(buf)
            }
        }
    }

    /// One header + part-body transmission to `dst`.
    fn ship(
        &self,
        env: &mut Env,
        dst: usize,
        pid: usize,
        buf: PackBuffer,
        nonblocking: bool,
    ) -> Result<(), SparsedistError> {
        let mut header = env.arena().checkout(8);
        // lint: allow(W002) — part ids are bounded by the partition's part count
        header.push_u64(pid as u64);
        if nonblocking {
            // lint: allow(C002) — Router::ship pipelines posts across parts; Router::run wait_alls once after the routing loop completes
            env.isend(dst, header)?;
        } else {
            env.send(dst, header)?;
        }
        send_part(env, dst, buf, self.config.chunk_elems, nonblocking)?;
        Ok(())
    }

    /// React to a [`CommError::PeerDead`] observed while sending: the
    /// source's own death is terminal ([`SparsedistError::SourceDead`]);
    /// a destination's death re-homes its parts and requeues the in-flight
    /// one (if any) as a replay.
    fn on_death(
        &mut self,
        env: &Env,
        rank: usize,
        in_flight: Option<usize>,
    ) -> Result<(), SparsedistError> {
        if rank == SOURCE {
            return Err(SparsedistError::SourceDead { rank: SOURCE });
        }
        self.dead.insert(rank);
        self.rehome(env, rank)?;
        if let Some(pid) = in_flight {
            self.work.push_back((pid, true));
        }
        Ok(())
    }

    /// Move every part owned by `casualty` onto the least-loaded surviving
    /// compute rank (ties to the lowest rank — deterministic), and requeue
    /// the parts it had already received as replays.
    fn rehome(&mut self, env: &Env, casualty: usize) -> Result<(), SparsedistError> {
        let orphans: Vec<usize> = (0..self.owners.len())
            .filter(|&pid| self.owners[pid] == casualty)
            .collect();
        if orphans.is_empty() {
            return Ok(());
        }
        let survivors: Vec<usize> = (0..env.nprocs())
            .filter(|&r| {
                r != SOURCE
                    && !env.is_rank_dead(r)
                    && !self.dead.contains(&r)
                    && !self.finished.contains(&r)
            })
            .collect();
        if survivors.is_empty() {
            return Err(SparsedistError::NoSurvivors { part: orphans[0] });
        }
        let mut load: BTreeMap<usize, usize> = survivors.iter().map(|&r| (r, 0)).collect();
        for pid in 0..self.owners.len() {
            if let Some(l) = load.get_mut(&self.owners[pid]) {
                *l += self.cells[pid];
            }
        }
        for &pid in &orphans {
            let (&best, _) = load
                .iter()
                .min_by_key(|&(&r, &l)| (l, r))
                // lint: allow(E002) — survivors is non-empty, checked above
                .expect("at least one survivor");
            self.owners[pid] = best;
            // lint: allow(E002) — best was drawn from load's own iterator just above
            *load.get_mut(&best).expect("chosen rank survives") += self.cells[pid];
        }
        let lost = std::mem::take(&mut self.delivered[casualty]);
        self.work.extend(lost.into_iter().map(|pid| (pid, true)));
        Ok(())
    }
}

/// Receiver side of the routed protocol: consume `(header, part)` pairs
/// from the source until a [`ROUTED_DONE`] header arrives.
///
/// Replayed parts are deduplicated by part id — a part already decoded is
/// received and discarded, so replays are idempotent. A death notice for
/// *this* rank ends the loop with an empty contribution (the source
/// observed the same death and re-homed everything this rank held); any
/// other communication failure surfaces as a typed error.
async fn routed_receive<S: SchemeStages>(
    env: &mut Env,
    stages: &S,
    config: SchemeConfig,
) -> Result<Vec<(usize, LocalCompressed)>, SparsedistError> {
    let me = env.rank();
    let mut got: BTreeMap<usize, LocalCompressed> = BTreeMap::new();
    loop {
        let header = match env.recv_async(SOURCE).await {
            Ok(msg) => msg.payload,
            Err(CommError::PeerDead { rank }) if rank == me => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let tag = header.cursor().try_read_u64()?;
        env.arena().recycle_bytes(header.into_bytes());
        if tag == ROUTED_DONE {
            break;
        }
        // lint: allow(W002) — the tag is a part id bounded by the part count
        let pid = tag as usize;
        let payload = match recv_part(env, SOURCE, config.chunk_elems).await {
            Ok(p) => p,
            Err(SparsedistError::Comm(CommError::PeerDead { rank })) if rank == me => {
                return Ok(Vec::new())
            }
            Err(e) => return Err(e),
        };
        if got.contains_key(&pid) {
            env.arena().recycle_bytes(payload.into_bytes());
            continue;
        }
        let mid = env.phase(stages.recv_phase(), |env| {
            let mut ops = OpCounter::new();
            let mid = stages.decode_part(&payload, pid, &mut ops);
            let n = ops.take();
            env.trace_part_ops(&[(pid, n)]);
            env.charge_ops(n);
            mid
        })?;
        env.arena().recycle_bytes(payload.into_bytes());
        let local = if let Some(fphase) = stages.finish_phase() {
            env.phase(fphase, |env| {
                let mut ops = OpCounter::new();
                let local = stages.finish_part(&mid, &mut ops);
                let n = ops.take();
                env.trace_part_ops(&[(pid, n)]);
                env.charge_ops(n);
                local
            })
        } else {
            stages.local_from(mid)
        };
        got.insert(pid, local);
    }
    Ok(got.into_iter().collect())
}

/// Context for one routed-recovery rank task (see [`PlainCtx`] for why
/// the borrows ride in a struct instead of the spawning closure).
struct RoutedCtx<'a, S: SchemeStages> {
    stages: &'a S,
    config: SchemeConfig,
    cells: &'a [usize],
    owners0: &'a [usize],
    done_order: &'a [usize],
}

/// One rank of the routed pipeline as a boxed task: the source drives the
/// [`Router`] (synchronous — sends never block, deaths are observed on
/// the send path), every rank then runs the async routed receive loop.
fn routed_task<'e, S: SchemeStages>(
    ctx: &'e RoutedCtx<'_, S>,
    env: &'e mut Env,
) -> TaskFuture<'e, Result<Vec<(usize, LocalCompressed)>, SparsedistError>> {
    Box::pin(async move {
        let me = env.rank();
        env.trace_scope(ctx.stages.scheme().label());
        if env.is_rank_dead(me) {
            return Ok(Vec::new());
        }
        if me == SOURCE {
            let mut router = Router::new(
                ctx.stages,
                ctx.config,
                ctx.cells,
                ctx.owners0.to_vec(),
                env.nprocs(),
            );
            router.run(env, ctx.done_order)?;
        }
        routed_receive(env, ctx.stages, ctx.config).await
    })
}

/// [`run_pipeline`] for fault plans with timed deaths: the routed recovery
/// protocol. The returned [`SchemeRun::owners`] is rebuilt from where each
/// part actually landed, so mid-stream re-homes are visible to callers.
fn run_pipeline_routed<S: SchemeStages>(
    machine: &Multicomputer,
    stages: &S,
    part: &dyn Partition,
    kind: CompressKind,
    config: SchemeConfig,
) -> Result<SchemeRun, SparsedistError> {
    let nparts = part.nparts();
    let owners0 = assign_owners(part, &alive_ranks_of(machine));
    let cells: Vec<usize> = (0..nparts)
        .map(|pid| {
            let (r, c) = part.local_shape(pid);
            r * c
        })
        .collect();
    // DONE walk order: scheduled deaths earliest first (ties and immortal
    // ranks by ascending rank) — see `Router::run`.
    let deaths: BTreeMap<usize, f64> = machine
        .fault_plan()
        .map(|p| p.dying_ranks().collect())
        .unwrap_or_default();
    let mut done_order: Vec<usize> = (0..machine.nprocs()).collect();
    done_order.sort_by(|&x, &y| {
        let kx = deaths.get(&x).copied().unwrap_or(f64::INFINITY);
        let ky = deaths.get(&y).copied().unwrap_or(f64::INFINITY);
        kx.partial_cmp(&ky)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.cmp(&y))
    });
    let ctx = RoutedCtx {
        stages,
        config,
        cells: &cells,
        owners0: &owners0,
        done_order: &done_order,
    };
    let (results, ledgers) = machine.run_tasks_with_ledgers(&ctx, |ctx, env| routed_task(ctx, env));
    let mut owners = vec![usize::MAX; nparts];
    let mut slots: Vec<Option<LocalCompressed>> = (0..nparts).map(|_| None).collect();
    for (rank, res) in results.into_iter().enumerate() {
        for (pid, local) in res? {
            owners[pid] = rank;
            slots[pid] = Some(local);
        }
    }
    let locals = slots
        .into_iter()
        .enumerate()
        .map(|(pid, s)| s.ok_or(SparsedistError::NoSurvivors { part: pid }))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SchemeRun {
        scheme: stages.scheme(),
        compress_kind: kind,
        source: SOURCE,
        ledgers,
        locals,
        owners,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{Ccs, Crs};
    use crate::dense::{paper_array_a, Dense2D};
    use crate::partition::{ColBlock, RowBlock};
    use crate::schemes::{run_scheme, run_scheme_with};
    use sparsedist_multicomputer::{FaultPlan, MachineModel, PackArena, RetryPolicy, WireStats};

    fn sp2(p: usize) -> Multicomputer {
        Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
    }

    fn run(
        scheme: SchemeKind,
        m: &Multicomputer,
        a: &Dense2D,
        part: &dyn Partition,
        kind: CompressKind,
        config: SchemeConfig,
    ) -> SchemeRun {
        run_scheme_with(scheme, m, a, part, kind, config).unwrap()
    }

    fn assert_close(
        p: sparsedist_multicomputer::VirtualTime,
        o: sparsedist_multicomputer::VirtualTime,
        scheme: SchemeKind,
        rank: usize,
        phase: Phase,
    ) {
        assert!(
            (p.as_micros() - o.as_micros()).abs() < 1e-6,
            "{scheme:?} rank {rank} {phase:?}: {p:?} vs {o:?}"
        );
    }

    fn wire_totals(r: &SchemeRun) -> WireStats {
        r.ledgers.iter().fold(WireStats::default(), |acc, l| {
            let w = l.wire();
            WireStats {
                messages: acc.messages + w.messages,
                elements: acc.elements + w.elements,
                bytes: acc.bytes + w.bytes,
            }
        })
    }

    /// A 64×64 array with 410 scattered nonzeros: large enough that every
    /// phase does real work on all 8 ranks.
    fn scattered() -> (Dense2D, RowBlock) {
        let mut a = Dense2D::zeros(64, 64);
        for i in 0..410 {
            a.set((i * 7) % 64, (i * 13 + i / 64) % 64, 1.0 + i as f64);
        }
        (a, RowBlock::new(64, 64, 8))
    }

    // ------------------------------------------------------------------
    // SFC through the unified driver (relocated from the seed `sfc.rs`).
    // ------------------------------------------------------------------

    #[test]
    fn sfc_row_partition_matches_table1_closed_form() {
        // Table 1 SFC: T_Distribution = p·T_Startup + n²·T_Data,
        // T_Compression = ⌈n/p⌉·n·(1+3s')·T_Operation.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = run(
            SchemeKind::Sfc,
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        );

        let dist = run.t_distribution().as_micros();
        let expect_dist = 4.0 * m.t_startup + 80.0 * m.t_data;
        assert!(
            (dist - expect_dist).abs() < 1e-9,
            "dist {dist} vs {expect_dist}"
        );

        // The slowest *compressor* is the part maximising cells + 3·nnz:
        // P0/P1/P2 have 24 cells; P2 has 6 nonzeros → 24 + 18 = 42 ops.
        let comp = run.t_compression().as_micros();
        let expect_comp = 42.0 * m.t_op;
        assert!(
            (comp - expect_comp).abs() < 1e-9,
            "comp {comp} vs {expect_comp}"
        );
    }

    #[test]
    fn sfc_row_partition_charges_no_pack_ops() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let run = run(
            SchemeKind::Sfc,
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        );
        assert_eq!(run.ledgers[0].get(Phase::Pack).as_micros(), 0.0);
        for l in &run.ledgers {
            assert_eq!(l.get(Phase::Unpack).as_micros(), 0.0);
        }
    }

    #[test]
    fn sfc_column_partition_charges_strided_pack() {
        let a = paper_array_a();
        let part = ColBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = run(
            SchemeKind::Sfc,
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        );
        // Source packs all 80 cells at 1 op each.
        let pack = run.ledgers[0].get(Phase::Pack).as_micros();
        assert!((pack - 80.0 * m.t_op).abs() < 1e-9);
        // Each receiver unpacks its 10×2 = 20 cells.
        for l in &run.ledgers {
            assert!((l.get(Phase::Unpack).as_micros() - 20.0 * m.t_op).abs() < 1e-9);
        }
    }

    #[test]
    fn sfc_wire_volume_is_the_full_dense_array() {
        // SFC always ships n·m dense elements regardless of sparsity.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = run(
            SchemeKind::Sfc,
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        );
        let send = run.ledgers[0].get(Phase::Send).as_micros();
        assert!((send - (4.0 * m.t_startup + 80.0 * m.t_data)).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // CFS through the unified driver (relocated from the seed `cfs.rs`).
    // ------------------------------------------------------------------

    #[test]
    fn cfs_row_crs_matches_table1_closed_form() {
        // Table 1 CFS with n-not-square array generalised:
        // compression = cells·(1+3s) ops; pack = 2·nnz + Σ(rows_i + 1);
        // send = p·T_Startup + pack_elems·T_Data;
        // unpack(max) = max_i (rows_i + 1 + 2·nnz_i).
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = run(
            SchemeKind::Cfs,
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        );

        let comp = run.t_compression().as_micros();
        assert!((comp - 128.0 * m.t_op).abs() < 1e-9, "compression: {comp}");

        // pack elems: pointers (3+1)+(3+1)+(3+1)+(1+1) = 14, plus 2·16 = 32
        // → 46 elements.
        let src = &run.ledgers[0];
        assert!((src.get(Phase::Pack).as_micros() - 46.0 * m.t_op).abs() < 1e-9);
        let send = src.get(Phase::Send).as_micros();
        assert!((send - (4.0 * m.t_startup + 46.0 * m.t_data)).abs() < 1e-9);

        // unpack max: P2 has 4 pointers + 2·6 indices/values = 16 ops
        // (Case 3.2.1: no conversion).
        let unpack_max = run
            .ledgers
            .iter()
            .map(|l| l.get(Phase::Unpack).as_micros())
            .fold(0.0f64, f64::max);
        assert!(
            (unpack_max - 16.0 * m.t_op).abs() < 1e-9,
            "unpack {unpack_max}"
        );
    }

    #[test]
    fn cfs_row_ccs_conversion_charged() {
        // Row partition + CCS is Case 3.2.2: each index conversion costs
        // one extra op → unpack per rank = (9 pointers) + 3·nnz_i.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = run(
            SchemeKind::Cfs,
            &sp2(4),
            &a,
            &part,
            CompressKind::Ccs,
            SchemeConfig::default(),
        );
        // P2 has 6 nonzeros: 9 + 18 = 27 ops.
        let unpack_max = run
            .ledgers
            .iter()
            .map(|l| l.get(Phase::Unpack).as_micros())
            .fold(0.0f64, f64::max);
        assert!(
            (unpack_max - 27.0 * m.t_op).abs() < 1e-9,
            "unpack {unpack_max}"
        );
    }

    #[test]
    fn cfs_receivers_hold_local_indices() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let run = run(
            SchemeKind::Cfs,
            &sp2(4),
            &a,
            &part,
            CompressKind::Ccs,
            SchemeConfig::default(),
        );
        // P1's decoded CCS must be over local rows 0..3, matching the
        // direct local compression.
        let expect = Ccs::from_dense(&part.extract_dense(&a, 1), &mut OpCounter::new());
        assert_eq!(run.locals[1].as_ccs(), &expect);
    }

    #[test]
    fn cfs_wire_volume_scales_with_nnz_not_cells() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = run(
            SchemeKind::Cfs,
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        );
        let send = run.ledgers[0].get(Phase::Send).as_micros();
        // 46 elements (see above) — far less than the 80 dense cells SFC
        // would send.
        assert!(send < 4.0 * m.t_startup + 80.0 * m.t_data);
    }

    // ------------------------------------------------------------------
    // ED through the unified driver (relocated from the seed `ed.rs`).
    // ------------------------------------------------------------------

    #[test]
    fn ed_row_crs_matches_table1_closed_form() {
        // Table 1 ED: T_Distribution = p·T_Startup + (2·nnz + rows)·T_Data
        // (no pack/unpack ops at all); T_Compression = encode + max decode.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = run(
            SchemeKind::Ed,
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        );

        let src = &run.ledgers[0];
        assert_eq!(src.get(Phase::Pack).as_micros(), 0.0);
        for l in &run.ledgers {
            assert_eq!(l.get(Phase::Unpack).as_micros(), 0.0);
        }
        // Wire: per part rows_i + 2·nnz_i elements → total 10 + 32 = 42.
        let dist = run.t_distribution().as_micros();
        assert!(
            (dist - (4.0 * m.t_startup + 42.0 * m.t_data)).abs() < 1e-9,
            "dist {dist}"
        );

        // Encode = 128 ops (cells + 3·nnz); max decode = P2's
        // 1 + 3 rows + 2·6 = 16 ops (Case 3.3.1, no conversion).
        let comp = run.t_compression().as_micros();
        assert!((comp - (128.0 + 16.0) * m.t_op).abs() < 1e-9, "comp {comp}");
    }

    #[test]
    fn ed_wire_volume_beats_cfs() {
        // ED ships rows + 2·nnz; CFS ships (rows + p) + 2·nnz. The
        // difference is the p extra pointer entries (Remark 1's margin on
        // the wire, on top of the removed pack/unpack passes).
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let ed = run(
            SchemeKind::Ed,
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        );
        let cfs = run_scheme(SchemeKind::Cfs, &sp2(4), &a, &part, CompressKind::Crs).unwrap();
        let ed_send = ed.ledgers[0].get(Phase::Send);
        let cfs_send = cfs.ledgers[0].get(Phase::Send);
        assert!(ed_send < cfs_send);
    }

    #[test]
    fn ed_decoded_state_matches_direct_compression() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let run = run(
            SchemeKind::Ed,
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        );
        for pid in 0..4 {
            let expect = Crs::from_dense(&part.extract_dense(&a, pid), &mut OpCounter::new());
            assert_eq!(run.locals[pid].as_crs(), &expect, "P{pid}");
        }
    }

    // ------------------------------------------------------------------
    // Overlap: nonblocking sends behind `SchemeConfig::overlap`.
    // ------------------------------------------------------------------

    #[test]
    fn overlap_preserves_state_and_non_send_phases_for_every_scheme() {
        let (a, row) = scattered();
        // SFC's row-partition pack is free (contiguous memcpy, zero ops),
        // leaving nothing to hide transfers behind — give it the strided
        // column partition so every scheme has source-side compute.
        let col = ColBlock::new(64, 64, 8);
        let m = sp2(8);
        for (scheme, part) in [
            (SchemeKind::Sfc, &col as &dyn Partition),
            (SchemeKind::Cfs, &row),
            (SchemeKind::Ed, &row),
        ] {
            let plain = run(
                scheme,
                &m,
                &a,
                part,
                CompressKind::Crs,
                SchemeConfig::default(),
            );
            let over = run(
                scheme,
                &m,
                &a,
                part,
                CompressKind::Crs,
                SchemeConfig::overlapped(),
            );
            assert_eq!(plain.locals, over.locals, "{scheme:?} locals");
            // Same bytes and elements travel; overlap only re-times them.
            assert_eq!(
                wire_totals(&plain),
                wire_totals(&over),
                "{scheme:?} wire totals"
            );
            // Every busy phase except Send carries the same op totals. The
            // staged source charges one fused total while overlap charges
            // per part as each buffer is posted, so the f64 sums agree only
            // to rounding dust — compare with a 1e-6 µs tolerance.
            for (rank, (p, o)) in plain.ledgers.iter().zip(&over.ledgers).enumerate() {
                for phase in [
                    Phase::Compress,
                    Phase::Encode,
                    Phase::Pack,
                    Phase::Unpack,
                    Phase::Decode,
                    Phase::Retry,
                ] {
                    assert_close(p.get(phase), o.get(phase), scheme, rank, phase);
                }
            }
            // The NIC hides transfer time behind the per-part encode, so the
            // source finishes strictly earlier and so does the whole run.
            assert!(
                over.ledgers[0].get(Phase::Send) < plain.ledgers[0].get(Phase::Send),
                "{scheme:?} Send did not shrink"
            );
            assert!(
                over.t_makespan() < plain.t_makespan(),
                "{scheme:?} makespan {:?} !< {:?}",
                over.t_makespan(),
                plain.t_makespan()
            );
        }
    }

    #[test]
    fn ed_overlap_shrinks_makespan_and_distribution() {
        // Unlike the historical blocking interleave (equal makespan, better
        // mean completion), nonblocking sends genuinely shorten both the
        // makespan and `T_Distribution`.
        let (a, part) = scattered();
        let m = sp2(8);
        let plain = run(
            SchemeKind::Ed,
            &m,
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        );
        let over = run_scheme_with(
            SchemeKind::Ed,
            &m,
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::overlapped(),
        )
        .unwrap();
        assert_eq!(plain.locals, over.locals);
        assert!(
            (plain.t_compression().as_micros() - over.t_compression().as_micros()).abs() < 1e-6,
            "t_compression {:?} vs {:?}",
            plain.t_compression(),
            over.t_compression()
        );
        assert_eq!(wire_totals(&plain), wire_totals(&over));
        assert!(over.t_distribution() < plain.t_distribution());
        assert!(over.t_makespan() < plain.t_makespan());
    }

    // ------------------------------------------------------------------
    // Chunked streaming behind `SchemeConfig::chunk_elems`.
    // ------------------------------------------------------------------

    #[test]
    fn chunking_preserves_locals_and_adds_one_prefix_element_per_message() {
        let (a, part) = scattered();
        let m = sp2(8);
        for scheme in [SchemeKind::Sfc, SchemeKind::Cfs, SchemeKind::Ed] {
            let plain = run(
                scheme,
                &m,
                &a,
                &part,
                CompressKind::Crs,
                SchemeConfig::default(),
            );
            let chunked = run(
                scheme,
                &m,
                &a,
                &part,
                CompressKind::Crs,
                SchemeConfig {
                    chunk_elems: 7,
                    ..SchemeConfig::default()
                },
            );
            assert_eq!(plain.locals, chunked.locals, "{scheme:?} locals");
            let (pw, cw) = (wire_totals(&plain), wire_totals(&chunked));
            // Framing overhead is exactly one u64 chunk-count prefix per
            // logical message (8 parts from one source here).
            assert_eq!(cw.elements, pw.elements + 8, "{scheme:?} elements");
            assert_eq!(cw.bytes, pw.bytes + 8 * 8, "{scheme:?} bytes");
            assert!(cw.messages > pw.messages, "{scheme:?} messages");
            // Receiver-side phases can't tell: reassembly happens before
            // decode and costs no virtual time.
            for (rank, (p, c)) in plain.ledgers.iter().zip(&chunked.ledgers).enumerate() {
                for phase in [
                    Phase::Compress,
                    Phase::Encode,
                    Phase::Pack,
                    Phase::Unpack,
                    Phase::Decode,
                ] {
                    assert_eq!(
                        p.get(phase),
                        c.get(phase),
                        "{scheme:?} rank {rank} {phase:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn overlap_composes_with_chunking() {
        let (a, part) = scattered();
        let m = sp2(8);
        for scheme in [SchemeKind::Sfc, SchemeKind::Cfs, SchemeKind::Ed] {
            let plain = run(
                scheme,
                &m,
                &a,
                &part,
                CompressKind::Crs,
                SchemeConfig::default(),
            );
            let both = run(
                scheme,
                &m,
                &a,
                &part,
                CompressKind::Crs,
                SchemeConfig {
                    overlap: true,
                    chunk_elems: 16,
                    ..SchemeConfig::default()
                },
            );
            assert_eq!(plain.locals, both.locals, "{scheme:?} locals");
            assert_eq!(
                wire_totals(&both).elements,
                wire_totals(&plain).elements + 8,
                "{scheme:?} elements"
            );
        }
    }

    // ------------------------------------------------------------------
    // Chunked retries: `Phase::Retry` is charged per chunk.
    // ------------------------------------------------------------------

    /// Drive `send_part`/`recv_part` directly on a 2-rank machine so the
    /// payload geometry is exact: 10 elements, 80 bytes, chunked by 2 into
    /// k = 5 frames (chunk 0 carries the u64 chunk-count prefix → 3
    /// elements; chunks 1-4 carry 2 each).
    fn chunked_fault_ledgers(
        seed: u64,
        drop_p: f64,
        chunk_elems: usize,
    ) -> Vec<sparsedist_multicomputer::PhaseLedger> {
        let plan = FaultPlan::new(seed).with_drop(drop_p);
        let m = Multicomputer::virtual_machine(2, MachineModel::new(10.0, 2.0, 1.0))
            .with_faults(plan)
            .with_retry_policy(RetryPolicy {
                max_retries: 6,
                timeout_us: 100.0,
                backoff: 2.0,
            });
        let (results, ledgers) = m.run_tasks_with_ledgers(&(), move |(), env| {
            Box::pin(async move {
                if env.rank() == 0 {
                    let arena = PackArena::new();
                    let mut buf = arena.checkout(80);
                    for i in 0..10u64 {
                        buf.push_u64(i);
                    }
                    env.phase(Phase::Send, |env| {
                        send_part(env, 1, buf, chunk_elems, false)
                    })?;
                } else {
                    let got = recv_part(env, 0, chunk_elems).await?;
                    assert_eq!(got.elem_count(), 10);
                    let mut c = got.cursor();
                    for i in 0..10u64 {
                        assert_eq!(c.read_u64(), i);
                    }
                }
                Ok::<(), SparsedistError>(())
            })
        });
        for r in results {
            r.unwrap();
        }
        ledgers
    }

    #[test]
    fn chunked_retry_charges_retry_per_chunk_not_per_message() {
        // Seed 21 drops exactly the first attempt of sequence 0 (found by
        // scanning seeds; pinned by the exact ledger split below). With
        // chunking, sequence 0 is *chunk 0*: 3 elements (u64 chunk-count
        // prefix + 2 payload elements), 24 bytes. First attempts of all
        // five chunks book to Send:
        //   5·T_Startup + (3+2+2+2+2)·T_Data = 50 + 22 = 72 µs.
        // The single retransmission books to Retry: one 100 µs ARQ timeout
        // plus the *chunk's* wire cost (10 + 3·2 = 16 µs), not the whole
        // 10-element message's (10 + 10·2 = 30 µs):
        let ledgers = chunked_fault_ledgers(21, 0.08, 2);
        assert_eq!(ledgers[0].faults().retries, 1, "want exactly one retry");
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 72.0);
        assert_eq!(ledgers[0].get(Phase::Retry).as_micros(), 116.0);
    }

    #[test]
    fn unchunked_retry_recharges_the_whole_message() {
        // The contrast case under the *same* fault roll: seed 21 drops the
        // first attempt of sequence 0, which without chunking is the whole
        // 10-element message — Send = 10 + 10·2 = 30 µs for the first
        // attempt, Retry = 100 µs timeout + 30 µs full-message recharge
        // (vs the 16 µs single-chunk recharge above).
        let ledgers = chunked_fault_ledgers(21, 0.08, 0);
        assert_eq!(ledgers[0].faults().retries, 1, "want exactly one retry");
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 30.0);
        assert_eq!(ledgers[0].get(Phase::Retry).as_micros(), 130.0);
    }

    #[test]
    fn chunking_survives_fault_plans_with_identical_locals() {
        let (a, part) = scattered();
        for seed in [1, 7, 42] {
            let plan = || FaultPlan::new(seed).with_drop(0.15).with_corrupt(0.1);
            let m = |chunk: usize| {
                let m = Multicomputer::virtual_machine(8, MachineModel::ibm_sp2())
                    .with_faults(plan())
                    .with_retry_policy(RetryPolicy::with_retries(20));
                run(
                    SchemeKind::Ed,
                    &m,
                    &a,
                    &part,
                    CompressKind::Crs,
                    SchemeConfig {
                        chunk_elems: chunk,
                        ..SchemeConfig::default()
                    },
                )
            };
            let plain = m(0);
            let chunked = m(9);
            assert_eq!(plain.locals, chunked.locals, "seed {seed}");
            assert!(
                chunked
                    .ledgers
                    .iter()
                    .map(|l| l.faults().retries)
                    .sum::<u64>()
                    > 0,
                "seed {seed}: fault plan never fired — weak test"
            );
        }
    }

    // ------------------------------------------------------------------
    // Routed recovery under timed rank death.
    // ------------------------------------------------------------------

    fn death_machine(p: usize, victim: usize, t_us: f64) -> Multicomputer {
        Multicomputer::virtual_machine(p, MachineModel::new(10.0, 2.0, 1.0))
            .with_faults(FaultPlan::new(3).with_death_at(victim, t_us))
    }

    #[test]
    fn timed_death_rehomes_parts_and_reassembles() {
        // Kill rank 3 at various points of the stream, across every config
        // shape. The run must always either deliver the golden array with
        // part 3 re-homed to a survivor, or (late deaths) behave as if no
        // death happened. At least one death time per config must actually
        // trigger a mid-stream re-home, or the test is vacuous.
        let (a, part) = scattered();
        for config in [
            SchemeConfig::default(),
            SchemeConfig::overlapped(),
            SchemeConfig {
                chunk_elems: 16,
                ..SchemeConfig::default()
            },
            SchemeConfig {
                overlap: true,
                chunk_elems: 16,
                parallel: true,
                ..SchemeConfig::default()
            },
        ] {
            let mut rehomed = 0;
            for t in [60.0, 400.0, 900.0, 2500.0, 1e9] {
                let m = death_machine(8, 3, t);
                let run = run_scheme_with(SchemeKind::Ed, &m, &a, &part, CompressKind::Crs, config)
                    .unwrap_or_else(|e| panic!("t={t} {config:?}: {e}"));
                assert_eq!(run.reassemble(&part), a, "t={t} {config:?}");
                assert_eq!(run.total_nnz(), a.nnz(), "t={t} {config:?}");
                if run.owners[3] != 3 {
                    rehomed += 1;
                    assert!(
                        run.owners.iter().all(|&o| o != 3),
                        "t={t} {config:?}: dead rank still owns a part: {:?}",
                        run.owners
                    );
                }
            }
            assert!(rehomed >= 1, "{config:?}: no death time re-homed anything");
        }
    }

    #[test]
    fn every_death_time_reassembles_for_every_scheme() {
        // A dense sweep of death times across the whole run — including the
        // narrow windows around part boundaries and the DONE walk — on all
        // three schemes. Every instant must recover to the golden array
        // (7 survivors always remain).
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 3);
        for scheme in SchemeKind::ALL {
            for step in 0..80 {
                let t = 5.0 + 25.0 * step as f64;
                let m = death_machine(3, 2, t);
                let run = run_scheme(scheme, &m, &a, &part, CompressKind::Crs)
                    .unwrap_or_else(|e| panic!("{scheme} t={t}: {e}"));
                assert_eq!(run.reassemble(&part), a, "{scheme} t={t}");
            }
        }
    }

    #[test]
    fn no_survivors_is_a_typed_error() {
        // Two ranks: the only non-source compute rank dies immediately, so
        // part 1 has nowhere to go.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 2);
        let m = death_machine(2, 1, 1.0);
        let err = run_scheme(SchemeKind::Ed, &m, &a, &part, CompressKind::Crs).unwrap_err();
        assert_eq!(err, SparsedistError::NoSurvivors { part: 1 });
        assert!(err.to_string().contains("re-home part 1"), "{err}");
    }

    #[test]
    fn routed_death_runs_are_deterministic() {
        let (a, part) = scattered();
        let go = || {
            let m = death_machine(8, 3, 900.0);
            run_scheme_with(
                SchemeKind::Cfs,
                &m,
                &a,
                &part,
                CompressKind::Crs,
                SchemeConfig {
                    overlap: true,
                    chunk_elems: 32,
                    ..SchemeConfig::default()
                },
            )
            .unwrap()
        };
        let (r1, r2) = (go(), go());
        assert_eq!(r1.ledgers, r2.ledgers);
        assert_eq!(r1.locals, r2.locals);
        assert_eq!(r1.owners, r2.owners);
    }

    #[test]
    fn late_death_matches_plain_locals() {
        // A death scheduled far beyond the run horizon never fires: the
        // routed protocol must deliver the same locals and owner map as the
        // unrouted path (ledgers differ by the header traffic, by design).
        let (a, part) = scattered();
        let plain = run(
            SchemeKind::Ed,
            &sp2(8),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        );
        let m = Multicomputer::virtual_machine(8, MachineModel::ibm_sp2())
            .with_faults(FaultPlan::new(3).with_death_at(5, 1e12));
        let routed = run_scheme(SchemeKind::Ed, &m, &a, &part, CompressKind::Crs).unwrap();
        assert_eq!(routed.locals, plain.locals);
        assert_eq!(routed.owners, plain.owners);
    }

    /// A minimal passthrough scheme for driving the routed receiver by
    /// hand: each part is one u64, decoded into a 1×1 CRS local.
    struct EchoStages;

    impl SchemeStages for EchoStages {
        type Mid = LocalCompressed;

        fn scheme(&self) -> SchemeKind {
            SchemeKind::Ed
        }
        fn source_policy(&self) -> SourcePolicy {
            SourcePolicy::Fused(Phase::Encode)
        }
        fn recv_phase(&self) -> Phase {
            Phase::Decode
        }
        fn batch_decode_inside_phase(&self) -> bool {
            true
        }
        fn buf_capacity(&self, _pid: usize) -> usize {
            8
        }
        fn encode_part(
            &self,
            buf: &mut PackBuffer,
            pid: usize,
            ops: &mut OpCounter,
        ) -> Result<(), SparsedistError> {
            buf.push_u64(pid as u64);
            ops.add(1);
            Ok(())
        }
        fn decode_part(
            &self,
            payload: &PackBuffer,
            _pid: usize,
            ops: &mut OpCounter,
        ) -> Result<LocalCompressed, SparsedistError> {
            ops.add(1);
            let mut d = Dense2D::zeros(1, 1);
            d.set(0, 0, payload.cursor().read_u64() as f64 + 1.0);
            Ok(LocalCompressed::Crs(Crs::from_dense(
                &d,
                &mut OpCounter::new(),
            )))
        }
        fn finish_part(&self, mid: &LocalCompressed, _ops: &mut OpCounter) -> LocalCompressed {
            mid.clone()
        }
        fn local_from(&self, mid: LocalCompressed) -> LocalCompressed {
            mid
        }
    }

    #[test]
    fn routed_receiver_dedups_replayed_parts() {
        // Deliver the same part twice (a replay a conservative source might
        // issue) followed by DONE: the receiver must keep exactly one copy
        // and charge the decode exactly once — replays are idempotent.
        let m = Multicomputer::virtual_machine(2, MachineModel::new(10.0, 2.0, 1.0));
        let (results, ledgers) = m.run_tasks_with_ledgers(&(), |(), env| {
            Box::pin(async move {
                if env.rank() == 0 {
                    env.phase(Phase::Send, |env| -> Result<(), SparsedistError> {
                        for _ in 0..2 {
                            let mut header = env.arena().checkout(8);
                            header.push_u64(0);
                            env.send(1, header)?;
                            let mut buf = env.arena().checkout(8);
                            buf.push_u64(7);
                            send_part(env, 1, buf, 0, false)?;
                        }
                        let mut done = env.arena().checkout(8);
                        done.push_u64(u64::MAX);
                        env.send(1, done)?;
                        Ok(())
                    })?;
                    Ok(Vec::new())
                } else {
                    routed_receive(env, &EchoStages, SchemeConfig::default()).await
                }
            })
        });
        let mut out = results.into_iter();
        out.next().unwrap().unwrap();
        let got = out.next().unwrap().unwrap();
        assert_eq!(got.len(), 1, "duplicate survived dedup");
        assert_eq!(got[0].0, 0);
        assert_eq!(got[0].1.nnz(), 1);
        // Decode charged once: 1 op at T_Operation = 1 µs.
        assert_eq!(ledgers[1].get(Phase::Decode).as_micros(), 1.0);
    }

    #[test]
    fn tiny_payloads_chunk_to_a_single_frame() {
        // chunk_elems larger than the payload: k = 1, pure prefix overhead.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let plain = run(
            SchemeKind::Ed,
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        );
        let chunked = run(
            SchemeKind::Ed,
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig {
                chunk_elems: 1 << 20,
                ..SchemeConfig::default()
            },
        );
        assert_eq!(plain.locals, chunked.locals);
        let (pw, cw) = (wire_totals(&plain), wire_totals(&chunked));
        assert_eq!(cw.messages, pw.messages);
        assert_eq!(cw.elements, pw.elements + 4);
    }
}
