//! Multi-source ED distribution.
//!
//! The paper's schemes assume a *single* source processor holding the
//! global array, so the encode pass (`n²(1+3s)` operations) serialises on
//! it — visible as rank 0's long bar in any timeline. When the global
//! array is striped over `k` I/O processors (a parallel filesystem, `k`
//! reader ranks), each source can encode and send only its stripe and the
//! bottleneck drops by ≈ `k`.
//!
//! Striping is by global row (`row r` belongs to source `r mod k`), which
//! aligns stripes with CRS row segments: every row of every destination's
//! local array is encoded by exactly one source, and the receiver knows
//! which (`to_global(pid, lr, 0).0 mod k`), so the `k` buffers decode
//! without any cross-source merging. The scheme is therefore CRS-only —
//! a CCS column segment would interleave rows from every source.

use crate::compress::{CompressKind, Crs, LocalCompressed};
use crate::convert::IndexConverter;
use crate::dense::Dense2D;
use crate::error::SparsedistError;
use crate::opcount::OpCounter;
use crate::partition::Partition;
use crate::schemes::pipeline::{recv_part, send_part};
use crate::schemes::{map_parts_counted, SchemeConfig};
use crate::wire::{self, WirePolicy};
use sparsedist_multicomputer::pack::UnpackError;
use sparsedist_multicomputer::{Env, Multicomputer, PackBuffer, Phase, PhaseLedger, VirtualTime};
use std::future::Future;
use std::pin::Pin;

/// Result of a multi-source ED run.
#[derive(Debug, Clone)]
pub struct MultiSourceRun {
    /// Number of source processors (ranks `0..nsources`).
    pub nsources: usize,
    /// Per-rank ledgers.
    pub ledgers: Vec<PhaseLedger>,
    /// Per-rank compressed local arrays.
    pub locals: Vec<LocalCompressed>,
}

impl MultiSourceRun {
    /// The distribution time under the paper's accounting, generalised to
    /// many sources: the slowest source's encode+send plus the slowest
    /// receiver's decode.
    pub fn t_distribution(&self) -> VirtualTime {
        let src_max = self.ledgers[..self.nsources]
            .iter()
            .map(|l| l.get(Phase::Encode) + l.get(Phase::Send))
            .fold(VirtualTime::ZERO, VirtualTime::max);
        let dec_max = self
            .ledgers
            .iter()
            .map(|l| l.get(Phase::Decode))
            .fold(VirtualTime::ZERO, VirtualTime::max);
        src_max + dec_max
    }

    /// Total nonzeros distributed.
    pub fn total_nnz(&self) -> usize {
        self.locals.iter().map(|l| l.nnz()).sum()
    }
}

/// Encode the rows of part `pid` that belong to stripe `stripe` (of
/// `nsources`) into an ED buffer. Non-stripe rows are skipped entirely
/// (they cost this source nothing).
///
/// Two passes: the scan loop gathers the stripe's `(pointer, indices,
/// values)` streams with exactly the classic op charges (one op per
/// scanned cell, three per nonzero), then the policy's [`Codec`] lays the
/// segment-count wire layout down in one shot. Only the byte layout is
/// codec-dependent — the element count (`segments + 2·nnz`) and the ops
/// charged are identical under every format.
#[allow(clippy::too_many_arguments)]
fn encode_stripe(
    buf: &mut PackBuffer,
    global: &Dense2D,
    part: &dyn Partition,
    pid: usize,
    stripe: usize,
    nsources: usize,
    policy: &WirePolicy,
    ops: &mut OpCounter,
) {
    let (lrows, lcols) = part.local_shape(pid);
    let (_, gcols) = part.global_shape();
    let mut pointer = Vec::with_capacity(lrows / nsources + 2);
    pointer.push(0usize);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for lr in 0..lrows {
        let (gr, _) = part.to_global(pid, lr, 0);
        if gr % nsources != stripe {
            continue;
        }
        for lc in 0..lcols {
            ops.tick();
            let (gr2, gc) = part.to_global(pid, lr, lc);
            let v = global.get(gr2, gc);
            if v != 0.0 {
                indices.push(gc);
                values.push(v);
                ops.add(3);
            }
        }
        pointer.push(indices.len());
    }
    let codec = wire::codec_for(policy.format);
    let desc = codec.plan(gcols, &pointer, &indices, &values, policy);
    codec.begin_message(buf, desc);
    codec.encode_pairs(buf, &pointer, &indices, &values, desc);
}

/// Per-run state for one multi-source rank task, threaded through the
/// task API's context parameter (the `for<'e>` spawning closure cannot
/// capture these borrows itself).
struct MultiCtx<'a> {
    global: &'a Dense2D,
    part: &'a dyn Partition,
    nsources: usize,
    config: SchemeConfig,
    policy: WirePolicy,
}

/// One rank of the multi-source ED run: encode+send this rank's stripes
/// (sources only, fully synchronous), then receive one buffer per source
/// and decode. Awaits only inside [`recv_part`].
fn multi_task<'e>(
    ctx: &'e MultiCtx<'_>,
    env: &'e mut Env,
) -> Pin<Box<dyn Future<Output = Result<LocalCompressed, SparsedistError>> + 'e>> {
    let (global, part, nsources, config, policy) =
        (ctx.global, ctx.part, ctx.nsources, ctx.config, ctx.policy);
    Box::pin(async move {
        let p = env.nprocs();
        let me = env.rank();
        env.trace_scope("ED-multi");
        if env.is_rank_dead(me) {
            // A dead destination holds nothing; its slot reports an
            // empty local array of its own shape.
            let (lrows, _) = part.local_shape(me);
            let converter = IndexConverter::new(part, me, CompressKind::Crs);
            let bound = converter.local_index_bound(CompressKind::Crs);
            return Ok(LocalCompressed::Crs(Crs::from_raw(
                lrows,
                bound,
                vec![0; lrows + 1],
                vec![],
                vec![],
            )?));
        }
        if me < nsources {
            if config.overlap {
                // Overlapped: post each stripe buffer nonblocking as
                // soon as it is encoded, then drain the NIC once. The
                // per-destination encode charges sum to the batch
                // path's Encode total.
                // Dead destinations' stripes are still encoded (and
                // charged), exactly like the staged path — only the
                // send is skipped.
                for dst in 0..p {
                    let buf = env.phase(Phase::Encode, |env| {
                        let mut ops = OpCounter::new();
                        let (lrows, lcols) = part.local_shape(dst);
                        let mut buf = env
                            .arena()
                            .checkout((lrows / nsources + 1) * (lcols / 2 + 1) * 8);
                        encode_stripe(&mut buf, global, part, dst, me, nsources, &policy, &mut ops);
                        let n = ops.take();
                        env.trace_part_ops(&[(dst, n)]);
                        env.charge_ops(n);
                        buf
                    });
                    if env.is_rank_dead(dst) {
                        continue;
                    }
                    env.phase(Phase::Send, |env| {
                        send_part(env, dst, buf, config.chunk_elems, true)
                    })?;
                }
                env.phase(Phase::Send, |env| env.wait_all());
            } else {
                let bufs: Vec<PackBuffer> = env.phase(Phase::Encode, |env| {
                    let mut ops = OpCounter::new();
                    let (bufs, counts) = {
                        let arena = env.arena();
                        map_parts_counted(p, config.parallel, &mut ops, &|pid, ops| {
                            let (lrows, lcols) = part.local_shape(pid);
                            let mut buf =
                                arena.checkout((lrows / nsources + 1) * (lcols / 2 + 1) * 8);
                            encode_stripe(&mut buf, global, part, pid, me, nsources, &policy, ops);
                            buf
                        })
                    };
                    if env.is_tracing() {
                        let pairs: Vec<(usize, u64)> = counts.into_iter().enumerate().collect();
                        env.trace_part_ops(&pairs);
                    }
                    env.charge_ops(ops.take());
                    bufs
                });
                env.phase(Phase::Send, |env| -> Result<(), SparsedistError> {
                    for (dst, buf) in bufs.into_iter().enumerate() {
                        if env.is_rank_dead(dst) {
                            continue;
                        }
                        send_part(env, dst, buf, config.chunk_elems, false)?;
                    }
                    Ok(())
                })?;
            }
        }

        // Receive one buffer per source and decode, steering each
        // segment to the source that owns its stripe.
        let mut msgs: Vec<PackBuffer> = Vec::with_capacity(nsources);
        for src in 0..nsources {
            msgs.push(recv_part(env, src, config.chunk_elems).await?);
        }
        let local = env.phase(
            Phase::Decode,
            |env| -> Result<LocalCompressed, SparsedistError> {
                let mut ops = OpCounter::new();
                let (lrows, _lcols) = part.local_shape(me);
                let converter = IndexConverter::new(part, me, CompressKind::Crs);
                let bound = converter.local_index_bound(CompressKind::Crs);
                // Row `lr` of this part was encoded by the source owning
                // its global row's stripe.
                let row_src: Vec<usize> = (0..lrows)
                    .map(|lr| part.to_global(me, lr, 0).0 % nsources)
                    .collect();
                // Decode each source's buffer up front — the codec owns
                // the byte layout (each source self-describes its own
                // negotiation byte), so the row merge below only sees
                // logical triples.
                let codec = wire::codec_for(policy.format);
                let mut triples = Vec::with_capacity(nsources);
                for (src, buf) in msgs.iter().enumerate() {
                    let nseg = row_src.iter().filter(|&&s| s == src).count();
                    let mut cursor = buf.cursor();
                    let head = codec.open_message(&mut cursor)?;
                    let triple = head.codec.decode_pairs(&mut cursor, nseg, head.desc)?;
                    if !cursor.is_exhausted() {
                        return Err(UnpackError {
                            at: 0,
                            remaining: cursor.remaining(),
                        }
                        .into());
                    }
                    triples.push(triple);
                }
                // Merge rows in local order, charging exactly the classic
                // per-row and per-element ops (the decode above moved
                // bytes, never ops — formats stay clock-transparent).
                let mut next_seg = vec![0usize; nsources];
                let mut ro = Vec::with_capacity(lrows + 1);
                ro.push(0usize);
                ops.tick();
                let mut co = Vec::new();
                let mut vl = Vec::new();
                for lr in 0..lrows {
                    let src = row_src[lr];
                    let (pointer, indices, values) = &triples[src];
                    let seg = next_seg[src];
                    next_seg[src] += 1;
                    let (lo, hi) = (pointer[seg], pointer[seg + 1]);
                    ops.tick();
                    ro.push(ro[lr] + (hi - lo));
                    for k in lo..hi {
                        ops.tick();
                        co.push(converter.to_local(indices[k], &mut ops));
                        vl.push(values[k]);
                        ops.tick();
                    }
                }
                let n = ops.take();
                env.trace_part_ops(&[(me, n)]);
                env.charge_ops(n);
                Ok(LocalCompressed::Crs(Crs::from_raw(
                    lrows, bound, ro, co, vl,
                )?))
            },
        );
        for buf in msgs {
            env.arena().recycle_bytes(buf.into_bytes());
        }
        local
    })
}

/// Run the ED scheme with `nsources` source processors (CRS only).
///
/// Ranks `0..nsources` act as sources, each holding the row stripe
/// `r mod nsources`; every rank (sources included) receives its part.
///
/// # Errors
/// Returns [`SparsedistError::SourceDead`] if the fault plan kills any of
/// the source ranks, plus the usual communication/validation failures.
///
/// # Panics
/// Panics if `nsources` is zero or exceeds the machine size, or on the
/// usual partition mismatches.
pub fn run_ed_multi_source(
    machine: &Multicomputer,
    global: &Dense2D,
    part: &dyn Partition,
    nsources: usize,
) -> Result<MultiSourceRun, SparsedistError> {
    run_ed_multi_source_with(machine, global, part, nsources, SchemeConfig::default())
}

/// [`run_ed_multi_source`] with an explicit wire format and host-parallelism
/// choice. The decoded state and the virtual-time phase totals are
/// independent of `config`; only host wall time and bytes on the wire move.
///
/// # Errors
/// Same failure modes as [`run_ed_multi_source`].
///
/// # Panics
/// Same conditions as [`run_ed_multi_source`].
pub fn run_ed_multi_source_with(
    machine: &Multicomputer,
    global: &Dense2D,
    part: &dyn Partition,
    nsources: usize,
    config: SchemeConfig,
) -> Result<MultiSourceRun, SparsedistError> {
    let p = machine.nprocs();
    assert!(
        nsources > 0 && nsources <= p,
        "nsources {nsources} out of 1..={p}"
    );
    assert_eq!(
        part.nparts(),
        p,
        "partition has {} parts, machine {p}",
        part.nparts()
    );
    assert_eq!(
        part.global_shape(),
        (global.rows(), global.cols()),
        "partition/array shape mismatch"
    );
    if let Some(plan) = machine.fault_plan() {
        if let Some(rank) = plan.dead_ranks().find(|&r| r < nsources) {
            return Err(SparsedistError::SourceDead { rank });
        }
    }

    let ctx = MultiCtx {
        global,
        part,
        nsources,
        config,
        policy: WirePolicy::new(config.wire, config.codec, machine.model()),
    };
    let (results, ledgers) = machine.run_tasks_with_ledgers(&ctx, |ctx, env| multi_task(ctx, env));
    let locals = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(MultiSourceRun {
        nsources,
        ledgers,
        locals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;
    use crate::partition::{ColBlock, Mesh2D, RowBlock, RowCyclic};
    use crate::schemes::{run_scheme, SchemeKind};
    use sparsedist_multicomputer::MachineModel;

    fn machine(p: usize) -> Multicomputer {
        Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
    }

    #[test]
    fn matches_single_source_ed_state() {
        let a = paper_array_a();
        let parts: Vec<Box<dyn Partition>> = vec![
            Box::new(RowBlock::new(10, 8, 4)),
            Box::new(ColBlock::new(10, 8, 4)),
            Box::new(Mesh2D::new(10, 8, 2, 2)),
            Box::new(RowCyclic::new(10, 8, 4)),
        ];
        for part in &parts {
            let single = run_scheme(
                SchemeKind::Ed,
                &machine(4),
                &a,
                part.as_ref(),
                CompressKind::Crs,
            )
            .unwrap();
            for k in [1, 2, 3, 4] {
                let multi = run_ed_multi_source(&machine(4), &a, part.as_ref(), k).unwrap();
                assert_eq!(multi.locals, single.locals, "k={k} {}", part.name());
                assert_eq!(multi.total_nnz(), 16);
            }
        }
    }

    #[test]
    fn encode_work_splits_across_sources() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let single = run_ed_multi_source(&machine(4), &a, &part, 1).unwrap();
        let multi = run_ed_multi_source(&machine(4), &a, &part, 4).unwrap();
        let encode_max = |r: &MultiSourceRun| -> f64 {
            r.ledgers
                .iter()
                .map(|l| l.get(Phase::Encode).as_micros())
                .fold(0.0, f64::max)
        };
        // 4 sources each scan ~1/4 of the cells.
        assert!(encode_max(&multi) < encode_max(&single) / 2.0);
        // Total encode work is unchanged (sum over sources).
        let total = |r: &MultiSourceRun| -> f64 {
            r.ledgers
                .iter()
                .map(|l| l.get(Phase::Encode).as_micros())
                .sum()
        };
        assert!((total(&multi) - total(&single)).abs() < 1e-9);
    }

    #[test]
    fn distribution_time_improves_with_sources() {
        // On a bigger array the encode+send pipeline parallelises.
        let mut a = Dense2D::zeros(64, 64);
        for i in 0..410 {
            a.set((i * 7) % 64, (i * 13 + i / 64) % 64, 1.0 + i as f64);
        }
        let part = RowBlock::new(64, 64, 8);
        let one = run_ed_multi_source(&machine(8), &a, &part, 1).unwrap();
        let four = run_ed_multi_source(&machine(8), &a, &part, 4).unwrap();
        assert!(
            four.t_distribution() < one.t_distribution(),
            "4 sources {} !< 1 source {}",
            four.t_distribution(),
            one.t_distribution()
        );
    }

    #[test]
    fn compact_parallel_config_matches_default_run() {
        // Wire format and host threading are transparent to both the
        // decoded state and the paper's clock: elements on the wire and
        // ops charged are identical under every config.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        for k in [1, 2, 4] {
            let base = run_ed_multi_source(&machine(4), &a, &part, k).unwrap();
            let v2 = run_ed_multi_source_with(
                &machine(4),
                &a,
                &part,
                k,
                SchemeConfig::compact_parallel(),
            )
            .unwrap();
            assert_eq!(base.locals, v2.locals, "k={k}");
            assert_eq!(base.t_distribution(), v2.t_distribution(), "k={k}");
        }
    }

    #[test]
    fn overlap_preserves_state_and_shrinks_distribution() {
        let mut a = Dense2D::zeros(64, 64);
        for i in 0..410 {
            a.set((i * 7) % 64, (i * 13 + i / 64) % 64, 1.0 + i as f64);
        }
        let part = RowBlock::new(64, 64, 8);
        for k in [1, 2, 4] {
            let plain = run_ed_multi_source(&machine(8), &a, &part, k).unwrap();
            let over =
                run_ed_multi_source_with(&machine(8), &a, &part, k, SchemeConfig::overlapped())
                    .unwrap();
            assert_eq!(plain.locals, over.locals, "k={k}");
            // Per-destination encode charges sum to the batch total (up to
            // f64 summation order), and the NIC hides transfers behind the
            // next stripe's encode.
            for (rank, (p, o)) in plain.ledgers.iter().zip(&over.ledgers).enumerate() {
                let (pe, oe) = (
                    p.get(Phase::Encode).as_micros(),
                    o.get(Phase::Encode).as_micros(),
                );
                assert!((pe - oe).abs() < 1e-6, "k={k} rank {rank}: {pe} vs {oe}");
                assert_eq!(p.get(Phase::Decode), o.get(Phase::Decode), "k={k} {rank}");
            }
            assert!(
                over.t_distribution() < plain.t_distribution(),
                "k={k}: {} !< {}",
                over.t_distribution(),
                plain.t_distribution()
            );
        }
    }

    #[test]
    fn chunking_preserves_state_and_adds_prefix_elements() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        for k in [1, 2, 4] {
            let plain = run_ed_multi_source(&machine(4), &a, &part, k).unwrap();
            let chunked = run_ed_multi_source_with(
                &machine(4),
                &a,
                &part,
                k,
                SchemeConfig {
                    chunk_elems: 3,
                    ..SchemeConfig::default()
                },
            )
            .unwrap();
            assert_eq!(plain.locals, chunked.locals, "k={k}");
            let elems =
                |r: &MultiSourceRun| -> u64 { r.ledgers.iter().map(|l| l.wire().elements).sum() };
            // One u64 chunk-count prefix per logical message: each of the
            // k sources sends one stripe buffer to each of the 4 ranks.
            assert_eq!(elems(&chunked), elems(&plain) + 4 * k as u64, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "nsources")]
    fn too_many_sources_rejected() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let _ = run_ed_multi_source(&machine(4), &a, &part, 5);
    }

    use crate::dense::Dense2D;
}
