//! The three data distribution schemes (paper §3) and their shared
//! reporting machinery.
//!
//! Every driver runs SPMD on a [`Multicomputer`], with rank 0 acting as the
//! source processor that holds the global array (the paper's host). All
//! three produce identical final state — each processor holding its
//! compressed local sparse array — but spend their time in different
//! phases, which is the whole point of the comparison:
//!
//! | scheme | source does | wire carries | receiver does |
//! |---|---|---|---|
//! | SFC | extract dense parts | `n²` dense elements | compress locally |
//! | CFS | compress all parts, pack `RO`/`CO`/`VL` | `≈ 2n²s` elements | unpack + convert indices |
//! | ED  | encode special buffers `B` | `≈ 2n²s` elements | decode `B` directly |
//!
//! [`SchemeRun::t_distribution`] and [`SchemeRun::t_compression`] aggregate
//! the per-rank ledgers exactly the way the paper's Tables 1–2 do, so the
//! regenerated tables are directly comparable.

mod cfs;
mod ed;
pub mod multi;
mod pipeline;
mod sfc;

use crate::compress::{CompressKind, LocalCompressed};
use crate::dense::Dense2D;
use crate::error::SparsedistError;
use crate::opcount::OpCounter;
use crate::partition::Partition;
use crate::wire::{CodecChoice, WireFormat};
use sparsedist_multicomputer::{Multicomputer, Phase, PhaseLedger, VirtualTime};
use std::fmt;

/// Tuning knobs for a scheme run that change *how* the work is done on the
/// host — never *what* is distributed or what the paper's cost model
/// charges for it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct SchemeConfig {
    /// Wire layout for every buffer the scheme sends. [`WireFormat::V1`]
    /// (the default) reproduces the seed byte streams exactly;
    /// [`WireFormat::V2`] negotiates compact index encodings per message;
    /// [`WireFormat::V3`] adds per-stream codecs chosen by [`Self::codec`].
    pub wire: WireFormat,
    /// Which v3 codec the sender picks per message: a forced codec, or
    /// [`CodecChoice::Auto`] to let the machine's α-β cost model decide
    /// whether encode CPU beats wire bytes. Ignored under v1/v2, whose
    /// layouts are fixed by the format.
    pub codec: CodecChoice,
    /// Encode/compress the per-part buffers on scoped host threads at the
    /// source (and decode in parallel on receivers owning several parts).
    /// Per-part op counts are merged in part order and charged once, so
    /// virtual-time phase totals are bit-identical to the sequential path.
    pub parallel: bool,
    /// Overlap encode/compress with the transfers: the source sends each
    /// part **as soon as it is encoded** via the engine's nonblocking
    /// [`sparsedist_multicomputer::engine::Env::isend`], draining the NIC
    /// once at the end. Locals, bytes on the wire and every non-`Send`
    /// phase total are unchanged; the `Send` total (and with it the
    /// makespan and `T_Distribution`) shrinks to the wire time the CPU
    /// could not hide. Fault plans compose: the NIC runs the ARQ schedule
    /// asynchronously, so posts stay nonblocking and recovery time
    /// (retransmissions plus timeouts) that the CPU could not hide is
    /// charged to `Phase::Retry` when the final `wait_all` drains the
    /// link — delivering the same payloads as the blocking path under the
    /// identical deterministic fate sequence.
    pub overlap: bool,
    /// When nonzero, split each part's wire buffer into framed chunks of at
    /// most this many elements ([`crate::schemes`] pipeline framing), so
    /// large parts travel as bounded messages instead of one. Costs one
    /// prefix element (8 bytes) per logical message plus `T_Startup` per
    /// additional chunk; retransmissions under a fault plan are then
    /// charged per chunk. `0` (the default) sends whole buffers — the seed
    /// byte streams.
    pub chunk_elems: usize,
}

impl SchemeConfig {
    /// The compact, parallel configuration: v2 wire format plus host-side
    /// parallel encode/compress — the distribution hot path at full tilt.
    pub fn compact_parallel() -> Self {
        SchemeConfig {
            wire: WireFormat::V2,
            parallel: true,
            ..SchemeConfig::default()
        }
    }

    /// The default configuration with communication/compute overlap on.
    pub fn overlapped() -> Self {
        SchemeConfig {
            overlap: true,
            ..SchemeConfig::default()
        }
    }
}

/// Map part ids `0..nparts` through `f`, sequentially or on scoped host
/// threads, preserving part order in the returned vector and additionally
/// returning each part's own op count (`counts[pid]`).
///
/// Each part — on either path — counts its ops into a private
/// [`OpCounter`]; the counts (plain `u64`s, so addition is associative)
/// are merged into `ops` in part order afterwards. The caller charges the
/// merged total exactly once, so the virtual clock cannot tell the two
/// paths apart, and the per-part counts feed the tracing layer's sub-span
/// attribution identically whether the parts ran sequentially or on host
/// threads.
pub(crate) fn map_parts_counted<T: Send>(
    nparts: usize,
    parallel: bool,
    ops: &mut OpCounter,
    f: &(dyn Fn(usize, &mut OpCounter) -> T + Sync),
) -> (Vec<T>, Vec<u64>) {
    let workers = if parallel {
        std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(nparts)
    } else {
        1
    };
    if workers < 2 || nparts < 2 {
        // Single-core hosts (and single parts) take the sequential path:
        // threads could only add overhead, and the results are identical
        // by construction.
        let mut out = Vec::with_capacity(nparts);
        let mut counts = Vec::with_capacity(nparts);
        for pid in 0..nparts {
            let mut local = OpCounter::new();
            out.push(f(pid, &mut local));
            let n = local.get();
            counts.push(n);
            ops.add(n);
        }
        return (out, counts);
    }
    // Contiguous part chunks, one scoped thread each — never more threads
    // than cores, so wide partitions don't oversubscribe the host.
    let chunk = nparts.div_ceil(workers);
    let per_chunk: Vec<Vec<(T, u64)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(nparts);
                    (lo..hi)
                        .map(|pid| {
                            let mut local = OpCounter::new();
                            let out = f(pid, &mut local);
                            (out, local.get())
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            // lint: allow(E002) — a panicked worker must abort the run; propagate it
            .map(|h| h.join().expect("part worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(nparts);
    let mut counts = Vec::with_capacity(nparts);
    for chunk_results in per_chunk {
        for (t, n) in chunk_results {
            ops.add(n);
            counts.push(n);
            out.push(t);
        }
    }
    (out, counts)
}

/// The source rank every provided driver distributes from.
pub(crate) const SOURCE: usize = 0;

/// Map each part to the rank that will own it, given the alive ranks.
///
/// Fault-free (every rank alive, one part per rank) this is the identity —
/// part `i` lives on rank `i`, exactly the paper's layout. When the fault
/// plan declares ranks dead, their parts are re-assigned to survivors by
/// greedy longest-processing-time bin packing over cell counts (the same
/// idiom as [`crate::partition::BalancedRows::bin_packed`]), so the
/// distribution degrades instead of deadlocking. Every rank computes this
/// from shared state (partition + fault plan), so no agreement protocol is
/// needed.
///
/// # Panics
/// Panics if `alive` is empty.
pub fn assign_owners(part: &dyn Partition, alive: &[usize]) -> Vec<usize> {
    assert!(!alive.is_empty(), "cannot place parts with no alive ranks");
    let nparts = part.nparts();
    if alive.len() == nparts && alive.iter().enumerate().all(|(i, &r)| i == r) {
        return (0..nparts).collect();
    }
    let alive_set: std::collections::BTreeSet<usize> = alive.iter().copied().collect();
    let mut owners: Vec<usize> = vec![usize::MAX; nparts];
    // Parts whose home rank survives stay put; dead parts get re-packed.
    let mut load: std::collections::BTreeMap<usize, usize> =
        alive.iter().map(|&r| (r, 0usize)).collect();
    let cells = |pid: usize| {
        let (r, c) = part.local_shape(pid);
        r * c
    };
    let mut orphans: Vec<usize> = Vec::new();
    for (pid, owner) in owners.iter_mut().enumerate() {
        // A part's home rank is the rank with its index (one part per rank).
        if alive_set.contains(&pid) {
            *owner = pid;
            // lint: allow(E002) — load was seeded with one slot per alive rank above
            *load.get_mut(&pid).expect("alive rank has a load slot") += cells(pid);
        } else {
            orphans.push(pid);
        }
    }
    // LPT: biggest orphan first, onto the least-loaded survivor (ties to
    // the lowest rank — BTreeMap iteration order makes this deterministic).
    orphans.sort_by_key(|&pid| std::cmp::Reverse(cells(pid)));
    for pid in orphans {
        let (&best, _) = load
            .iter()
            .min_by_key(|&(&r, &l)| (l, r))
            // lint: allow(E002) — `assert!(!alive.is_empty())` at entry keeps load non-empty
            .expect("at least one alive rank");
        owners[pid] = best;
        // lint: allow(E002) — best was drawn from load's own iterator just above
        *load.get_mut(&best).expect("chosen rank is alive") += cells(pid);
    }
    owners
}

/// The ranks alive under `machine`'s fault plan (all of them without one).
pub(crate) fn alive_ranks_of(machine: &Multicomputer) -> Vec<usize> {
    (0..machine.nprocs())
        .filter(|&r| !machine.fault_plan().is_some_and(|p| p.is_dead(r)))
        .collect()
}

/// Flatten per-rank `(pid, local)` contributions into a per-part vector,
/// surfacing the first rank error.
pub(crate) fn collect_parts(
    results: Vec<Result<Vec<(usize, LocalCompressed)>, SparsedistError>>,
    nparts: usize,
) -> Result<Vec<LocalCompressed>, SparsedistError> {
    let mut slots: Vec<Option<LocalCompressed>> = (0..nparts).map(|_| None).collect();
    for r in results {
        for (pid, local) in r? {
            slots[pid] = Some(local);
        }
    }
    Ok(slots
        .into_iter()
        // lint: allow(E002) — assign_owners gives every part exactly one alive owner
        .map(|s| s.expect("every part has exactly one alive owner"))
        .collect())
}

/// Which distribution scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Send Followed Compress (the baseline).
    Sfc,
    /// Compress Followed Send.
    Cfs,
    /// Encoding–Decoding.
    Ed,
}

impl SchemeKind {
    /// All three schemes, in the paper's presentation order.
    pub const ALL: [SchemeKind; 3] = [SchemeKind::Sfc, SchemeKind::Cfs, SchemeKind::Ed];

    /// Upper-case label as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Sfc => "SFC",
            SchemeKind::Cfs => "CFS",
            SchemeKind::Ed => "ED",
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The result of one distribution: each rank's compressed local array plus
/// the per-rank phase ledgers.
#[derive(Debug, Clone)]
pub struct SchemeRun {
    /// Which scheme ran.
    pub scheme: SchemeKind,
    /// Which compression method was used.
    pub compress_kind: CompressKind,
    /// The source rank (always 0 in the provided drivers).
    pub source: usize,
    /// Per-rank phase ledgers.
    pub ledgers: Vec<PhaseLedger>,
    /// Per-part compressed local arrays (`locals[pid]` is part `pid`).
    pub locals: Vec<LocalCompressed>,
    /// Which rank owns each part (`owners[pid]`). Identity fault-free;
    /// under rank death, parts of dead ranks move to survivors (see
    /// [`assign_owners`]).
    pub owners: Vec<usize>,
}

fn vmax(it: impl Iterator<Item = VirtualTime>) -> VirtualTime {
    it.fold(VirtualTime::ZERO, VirtualTime::max)
}

impl SchemeRun {
    /// The paper's `T_Distribution`: packing and sending at the source plus
    /// the slowest receiver's unpacking.
    pub fn t_distribution(&self) -> VirtualTime {
        let src = &self.ledgers[self.source];
        src.get(Phase::Pack)
            + src.get(Phase::Send)
            + vmax(self.ledgers.iter().map(|l| l.get(Phase::Unpack)))
    }

    /// The paper's `T_Compression`: for SFC the slowest receiver's local
    /// compression; for CFS the source's compression of every part; for ED
    /// the source's encoding plus the slowest receiver's decoding.
    pub fn t_compression(&self) -> VirtualTime {
        match self.scheme {
            SchemeKind::Sfc => vmax(self.ledgers.iter().map(|l| l.get(Phase::Compress))),
            SchemeKind::Cfs => self.ledgers[self.source].get(Phase::Compress),
            SchemeKind::Ed => {
                self.ledgers[self.source].get(Phase::Encode)
                    + vmax(self.ledgers.iter().map(|l| l.get(Phase::Decode)))
            }
        }
    }

    /// Overall cost: `T_Distribution + T_Compression` (what the paper's
    /// "overall performance" conclusions compare).
    pub fn t_total(&self) -> VirtualTime {
        self.t_distribution() + self.t_compression()
    }

    /// The simulated makespan: the latest finishing processor's clock
    /// (busy + wait). Unlike the paper's phase aggregates this captures
    /// pipelining effects — e.g. overlapping encode with send shortens the
    /// makespan without changing any phase total.
    pub fn t_makespan(&self) -> VirtualTime {
        vmax(
            self.ledgers
                .iter()
                .map(|l| l.busy_total() + l.get(Phase::Wait)),
        )
    }

    /// Total nonzeros across all local arrays.
    pub fn total_nnz(&self) -> usize {
        self.locals.iter().map(|l| l.nnz()).sum()
    }

    /// Rebuild the global dense array from the distributed compressed
    /// parts — the correctness check that all three schemes must pass.
    pub fn reassemble(&self, part: &dyn Partition) -> Dense2D {
        let (grows, gcols) = part.global_shape();
        let mut out = Dense2D::zeros(grows, gcols);
        for (pid, local) in self.locals.iter().enumerate() {
            let dense = local.to_dense();
            for (lr, lc, v) in dense.iter_nonzero() {
                let (gr, gc) = part.to_global(pid, lr, lc);
                out.set(gr, gc, v);
            }
        }
        out
    }
}

/// Distribute `global` over `machine` with the chosen scheme, partition and
/// compression method.
///
/// # Errors
/// Returns [`SparsedistError::SourceDead`] if the fault plan declares the
/// source rank dead, [`SparsedistError::Comm`] if the interconnect's retry
/// budget runs out, and compression/unpack errors if an accepted stream
/// fails validation.
///
/// # Panics
/// Panics if the partition's part count differs from the machine's
/// processor count, or if the partition was built for a different shape
/// (API misuse, not runtime faults).
pub fn run_scheme(
    scheme: SchemeKind,
    machine: &Multicomputer,
    global: &Dense2D,
    part: &dyn Partition,
    kind: CompressKind,
) -> Result<SchemeRun, SparsedistError> {
    run_scheme_with(scheme, machine, global, part, kind, SchemeConfig::default())
}

/// [`run_scheme`] with explicit [`SchemeConfig`] knobs: wire format and
/// host-side parallel encode/compress.
///
/// `run_scheme(…)` is exactly `run_scheme_with(…, SchemeConfig::default())`
/// — v1 wire bytes and sequential host execution, the seed behaviour.
///
/// # Errors
/// Same as [`run_scheme`].
///
/// # Panics
/// Same as [`run_scheme`].
pub fn run_scheme_with(
    scheme: SchemeKind,
    machine: &Multicomputer,
    global: &Dense2D,
    part: &dyn Partition,
    kind: CompressKind,
    config: SchemeConfig,
) -> Result<SchemeRun, SparsedistError> {
    assert_eq!(
        machine.nprocs(),
        part.nparts(),
        "partition has {} parts but the machine has {} processors",
        part.nparts(),
        machine.nprocs()
    );
    assert_eq!(
        part.global_shape(),
        (global.rows(), global.cols()),
        "partition shape {:?} does not match the array {}x{}",
        part.global_shape(),
        global.rows(),
        global.cols()
    );
    if machine.fault_plan().is_some_and(|p| p.is_dead(SOURCE)) {
        return Err(SparsedistError::SourceDead { rank: SOURCE });
    }
    match scheme {
        SchemeKind::Sfc => sfc::run(machine, global, part, kind, config),
        SchemeKind::Cfs => cfs::run(machine, global, part, kind, config),
        SchemeKind::Ed => ed::run(machine, global, part, kind, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;
    use crate::partition::{ColBlock, ColCyclic, Mesh2D, RowBlock, RowCyclic};
    use sparsedist_multicomputer::MachineModel;

    fn machine(p: usize) -> Multicomputer {
        Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
    }

    fn all_partitions(rows: usize, cols: usize) -> Vec<Box<dyn Partition>> {
        vec![
            Box::new(RowBlock::new(rows, cols, 4)),
            Box::new(ColBlock::new(rows, cols, 4)),
            Box::new(Mesh2D::new(rows, cols, 2, 2)),
            Box::new(RowCyclic::new(rows, cols, 4)),
            Box::new(ColCyclic::new(rows, cols, 4)),
        ]
    }

    #[test]
    fn all_schemes_reassemble_the_original() {
        let a = paper_array_a();
        for part in all_partitions(10, 8) {
            for kind in [CompressKind::Crs, CompressKind::Ccs] {
                for scheme in SchemeKind::ALL {
                    let run = run_scheme(scheme, &machine(4), &a, part.as_ref(), kind).unwrap();
                    assert_eq!(
                        run.reassemble(part.as_ref()),
                        a,
                        "{scheme} {kind} {}",
                        part.name()
                    );
                    assert_eq!(run.total_nnz(), 16);
                }
            }
        }
    }

    #[test]
    fn schemes_produce_identical_local_state() {
        // The final compressed local arrays must be bit-identical across
        // schemes: the ordering of phases must not change the result.
        let a = paper_array_a();
        for part in all_partitions(10, 8) {
            for kind in [CompressKind::Crs, CompressKind::Ccs] {
                let sfc =
                    run_scheme(SchemeKind::Sfc, &machine(4), &a, part.as_ref(), kind).unwrap();
                let cfs =
                    run_scheme(SchemeKind::Cfs, &machine(4), &a, part.as_ref(), kind).unwrap();
                let ed = run_scheme(SchemeKind::Ed, &machine(4), &a, part.as_ref(), kind).unwrap();
                assert_eq!(sfc.locals, cfs.locals, "{kind} {}", part.name());
                assert_eq!(cfs.locals, ed.locals, "{kind} {}", part.name());
            }
        }
    }

    #[test]
    fn distribution_time_ordering_matches_remark1_and_2() {
        // Remark 1: ED's distribution time beats CFS's and SFC's.
        // Remark 2: CFS's beats SFC's for s = 0.1 < 0.25 at T_Data/T_Op
        // = 1.2. The remarks drop O(n) terms, so use an array big enough
        // for the asymptotics (the 10×8 example is startup-dominated).
        let mut a = Dense2D::zeros(80, 80);
        for i in 0..640 {
            // A scattered pattern with exactly 640 nonzeros: s = 0.1.
            a.set((i * 7) % 80, (i * 13 + i / 80) % 80, 1.0 + i as f64);
        }
        assert_eq!(a.nnz(), 640);
        let part = RowBlock::new(80, 80, 4);
        let sfc = run_scheme(SchemeKind::Sfc, &machine(4), &a, &part, CompressKind::Crs).unwrap();
        let cfs = run_scheme(SchemeKind::Cfs, &machine(4), &a, &part, CompressKind::Crs).unwrap();
        let ed = run_scheme(SchemeKind::Ed, &machine(4), &a, &part, CompressKind::Crs).unwrap();
        assert!(ed.t_distribution() < cfs.t_distribution());
        assert!(cfs.t_distribution() < sfc.t_distribution());
    }

    #[test]
    fn compression_time_ordering_matches_remark3() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let sfc = run_scheme(SchemeKind::Sfc, &machine(4), &a, &part, CompressKind::Crs).unwrap();
        let cfs = run_scheme(SchemeKind::Cfs, &machine(4), &a, &part, CompressKind::Crs).unwrap();
        let ed = run_scheme(SchemeKind::Ed, &machine(4), &a, &part, CompressKind::Crs).unwrap();
        assert!(sfc.t_compression() < cfs.t_compression());
        assert!(cfs.t_compression() < ed.t_compression());
    }

    #[test]
    fn ed_beats_cfs_overall_matches_remark4() {
        let a = paper_array_a();
        for part in all_partitions(10, 8) {
            for kind in [CompressKind::Crs, CompressKind::Ccs] {
                let cfs =
                    run_scheme(SchemeKind::Cfs, &machine(4), &a, part.as_ref(), kind).unwrap();
                let ed = run_scheme(SchemeKind::Ed, &machine(4), &a, part.as_ref(), kind).unwrap();
                assert!(
                    ed.t_total() < cfs.t_total(),
                    "{kind} {}: ED {} !< CFS {}",
                    part.name(),
                    ed.t_total(),
                    cfs.t_total()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "parts but the machine")]
    fn mismatched_processor_count_panics() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 2);
        let _ = run_scheme(SchemeKind::Sfc, &machine(4), &a, &part, CompressKind::Crs);
    }

    #[test]
    #[should_panic(expected = "does not match the array")]
    fn mismatched_shape_panics() {
        let a = paper_array_a();
        let part = RowBlock::new(12, 8, 4);
        let _ = run_scheme(SchemeKind::Sfc, &machine(4), &a, &part, CompressKind::Crs);
    }

    #[test]
    fn wall_clock_mode_runs_and_reassembles() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = Multicomputer::wall_clock(4);
        for scheme in SchemeKind::ALL {
            let run = run_scheme(scheme, &m, &a, &part, CompressKind::Crs).unwrap();
            assert_eq!(run.reassemble(&part), a);
        }
    }

    #[test]
    fn virtual_runs_are_deterministic() {
        let a = paper_array_a();
        let part = Mesh2D::new(10, 8, 2, 2);
        let r1 = run_scheme(SchemeKind::Ed, &machine(4), &a, &part, CompressKind::Ccs).unwrap();
        let r2 = run_scheme(SchemeKind::Ed, &machine(4), &a, &part, CompressKind::Ccs).unwrap();
        assert_eq!(r1.ledgers, r2.ledgers);
        assert_eq!(r1.locals, r2.locals);
    }

    #[test]
    fn every_config_yields_identical_state_and_phase_totals() {
        // The SchemeConfig knobs tune *how* the host does the work — wire
        // layout and threading — never *what* is distributed or what the
        // paper's clock charges. Compare every config against the default
        // on every scheme × partition × kind: identical locals and
        // identical non-Wait phase totals. (Wait is excluded because the
        // parallel receiver path drains messages before decoding, which
        // legitimately reshuffles waiting between recv calls.)
        let a = paper_array_a();
        let configs = [
            SchemeConfig {
                wire: WireFormat::V2,
                ..SchemeConfig::default()
            },
            SchemeConfig {
                parallel: true,
                ..SchemeConfig::default()
            },
            SchemeConfig::compact_parallel(),
        ];
        let busy_phases = [
            Phase::Pack,
            Phase::Send,
            Phase::Unpack,
            Phase::Compress,
            Phase::Encode,
            Phase::Decode,
        ];
        for part in all_partitions(10, 8) {
            for kind in [CompressKind::Crs, CompressKind::Ccs] {
                for scheme in SchemeKind::ALL {
                    let base = run_scheme(scheme, &machine(4), &a, part.as_ref(), kind).unwrap();
                    for config in configs {
                        let run =
                            run_scheme_with(scheme, &machine(4), &a, part.as_ref(), kind, config)
                                .unwrap();
                        let tag = format!("{scheme} {kind} {} {config:?}", part.name());
                        assert_eq!(run.locals, base.locals, "{tag}");
                        for (l, b) in run.ledgers.iter().zip(&base.ledgers) {
                            for ph in busy_phases {
                                assert_eq!(l.get(ph), b.get(ph), "{tag} {ph:?}");
                            }
                            // Same logical elements on the wire under every
                            // config — T_Data cannot tell the formats apart.
                            assert_eq!(l.wire().elements, b.wire().elements, "{tag} wire elements");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn v2_wire_sends_fewer_bytes_for_compressed_schemes() {
        // The v2 saving on a sparse payload: CFS and ED index streams
        // narrow to delta varints, so the source transmits strictly fewer
        // bytes while SFC's pure-f64 stream only grows by the 3-byte
        // headers.
        let mut a = Dense2D::zeros(80, 80);
        for i in 0..640 {
            a.set((i * 7) % 80, (i * 13 + i / 80) % 80, 1.0 + i as f64);
        }
        let part = RowBlock::new(80, 80, 4);
        for scheme in [SchemeKind::Cfs, SchemeKind::Ed] {
            let v1 = run_scheme(scheme, &machine(4), &a, &part, CompressKind::Crs).unwrap();
            let v2 = run_scheme_with(
                scheme,
                &machine(4),
                &a,
                &part,
                CompressKind::Crs,
                SchemeConfig {
                    wire: WireFormat::V2,
                    ..SchemeConfig::default()
                },
            )
            .unwrap();
            let (b1, b2) = (v1.ledgers[0].wire().bytes, v2.ledgers[0].wire().bytes);
            assert!(
                (b2 as f64) < 0.7 * b1 as f64,
                "{scheme}: v2 {b2} bytes !< 70% of v1 {b1} bytes"
            );
            assert_eq!(v1.ledgers[0].wire().elements, v2.ledgers[0].wire().elements);
        }
    }

    #[test]
    fn parallel_receiver_path_matches_sequential_under_rank_death() {
        // Fault-free every receiver owns one part, so the parallel decode
        // path only wakes up when rank death re-homes parts. Kill a rank:
        // its survivor owns two parts and decodes them on host threads —
        // with the same state and the same busy-phase totals as the
        // sequential walk.
        use sparsedist_multicomputer::FaultPlan;
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = machine(4).with_faults(FaultPlan::new(7).with_dead_rank(2));
        for kind in [CompressKind::Crs, CompressKind::Ccs] {
            for scheme in SchemeKind::ALL {
                let base = run_scheme(scheme, &m, &a, &part, kind).unwrap();
                let par = run_scheme_with(
                    scheme,
                    &m,
                    &a,
                    &part,
                    kind,
                    SchemeConfig::compact_parallel(),
                )
                .unwrap();
                assert_eq!(par.locals, base.locals, "{scheme} {kind}");
                assert_eq!(par.reassemble(&part), a, "{scheme} {kind}");
                for (l, b) in par.ledgers.iter().zip(&base.ledgers) {
                    for ph in [Phase::Unpack, Phase::Compress, Phase::Decode] {
                        assert_eq!(l.get(ph), b.get(ph), "{scheme} {kind} {ph:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn compact_parallel_runs_are_deterministic() {
        let a = paper_array_a();
        let part = Mesh2D::new(10, 8, 2, 2);
        let cfg = SchemeConfig::compact_parallel();
        for scheme in SchemeKind::ALL {
            let r1 =
                run_scheme_with(scheme, &machine(4), &a, &part, CompressKind::Ccs, cfg).unwrap();
            let r2 =
                run_scheme_with(scheme, &machine(4), &a, &part, CompressKind::Ccs, cfg).unwrap();
            assert_eq!(r1.ledgers, r2.ledgers, "{scheme}");
            assert_eq!(r1.locals, r2.locals, "{scheme}");
        }
    }

    #[test]
    fn assign_owners_is_identity_when_all_alive() {
        let part = RowBlock::new(10, 8, 4);
        assert_eq!(assign_owners(&part, &[0, 1, 2, 3]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn assign_owners_moves_dead_parts_to_least_loaded_survivors() {
        let part = RowBlock::new(10, 8, 4);
        // Rank 2 dead: its part must land on some survivor.
        let owners = assign_owners(&part, &[0, 1, 3]);
        assert_eq!(owners[0], 0);
        assert_eq!(owners[1], 1);
        assert_eq!(owners[3], 3);
        assert!([0, 1, 3].contains(&owners[2]), "owners = {owners:?}");
        // Determinism: same inputs, same placement.
        assert_eq!(owners, assign_owners(&part, &[0, 1, 3]));
    }

    #[test]
    fn dead_rank_degrades_gracefully_for_all_schemes() {
        use sparsedist_multicomputer::FaultPlan;
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = machine(4).with_faults(FaultPlan::new(7).with_dead_rank(2));
        for kind in [CompressKind::Crs, CompressKind::Ccs] {
            for scheme in SchemeKind::ALL {
                let run = run_scheme(scheme, &m, &a, &part, kind)
                    .unwrap_or_else(|e| panic!("{scheme} {kind}: {e}"));
                // Part 2 was re-homed to a survivor, and no data was lost.
                assert_ne!(run.owners[2], 2, "{scheme} {kind}");
                assert_eq!(run.reassemble(&part), a, "{scheme} {kind}");
                assert_eq!(run.total_nnz(), 16);
            }
        }
    }

    #[test]
    fn dead_source_reports_source_dead() {
        use sparsedist_multicomputer::FaultPlan;
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = machine(4).with_faults(FaultPlan::new(7).with_dead_rank(0));
        let err = run_scheme(SchemeKind::Ed, &m, &a, &part, CompressKind::Crs);
        assert_eq!(
            err.unwrap_err(),
            crate::error::SparsedistError::SourceDead { rank: 0 }
        );
    }

    #[test]
    fn single_processor_degenerate_case() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 1);
        let m = machine(1);
        for scheme in SchemeKind::ALL {
            let run = run_scheme(scheme, &m, &a, &part, CompressKind::Crs).unwrap();
            assert_eq!(run.reassemble(&part), a);
        }
    }
}
