//! The Send Followed Compress scheme (paper §3.1) — the baseline, as used
//! by the Block Row Scatter distribution of Zapata et al.
//!
//! The source extracts each processor's **dense** local array and sends it
//! whole; each receiver compresses its local array after arrival. For the
//! row partition the local array is a contiguous row band of the global
//! array and is sent "without packing into buffers" (§4.1.1) — modelled as
//! zero per-element packing cost. Every other partition must gather strided
//! elements, charged at one operation per element on each side (this is the
//! reason the paper's measured SFC distribution time in Tables 4–5 is so
//! much higher than in Table 3).
//!
//! The driver flow (pack → send → unpack → compress) lives in the shared
//! [`pipeline`] module; this file only supplies the stage hooks.

use crate::compress::{compress_dense, CompressKind, LocalCompressed};
use crate::dense::Dense2D;
use crate::error::SparsedistError;
use crate::opcount::OpCounter;
use crate::partition::Partition;
use crate::schemes::pipeline::{self, SchemeStages, SourcePolicy};
use crate::schemes::{SchemeConfig, SchemeKind, SchemeRun};
use crate::wire::{self, WireFormat};
use sparsedist_multicomputer::pack::UnpackError;
use sparsedist_multicomputer::{Multicomputer, PackBuffer, Phase};

pub(crate) struct Stages<'a> {
    global: &'a Dense2D,
    part: &'a dyn Partition,
    kind: CompressKind,
    wire: WireFormat,
}

impl SchemeStages for Stages<'_> {
    type Mid = Dense2D;

    fn scheme(&self) -> SchemeKind {
        SchemeKind::Sfc
    }

    fn source_policy(&self) -> SourcePolicy {
        SourcePolicy::Fused(Phase::Pack)
    }

    fn recv_phase(&self) -> Phase {
        Phase::Unpack
    }

    fn batch_decode_inside_phase(&self) -> bool {
        true
    }

    fn buf_capacity(&self, pid: usize) -> usize {
        let (lrows, lcols) = self.part.local_shape(pid);
        lrows * lcols * 8 + wire::HEADER_LEN
    }

    /// Pack one part's dense local array for the wire.
    ///
    /// SFC payloads are pure `f64` runs, which v2 cannot shrink — under
    /// [`WireFormat::V2`] only the self-describing header is added (with no
    /// flag bits in play), so the stream is still recognisably v2 to a
    /// receiver that negotiates per message.
    fn encode_part(
        &self,
        buf: &mut PackBuffer,
        pid: usize,
        ops: &mut OpCounter,
    ) -> Result<(), SparsedistError> {
        let (lrows, lcols) = self.part.local_shape(pid);
        if self.wire == WireFormat::V2 {
            wire::write_header(buf, wire::FLAG_DELTA | wire::FLAG_IDX32);
        }
        if self.part.row_contiguous() {
            // A contiguous row band: DMA straight from the global array.
            for lr in 0..lrows {
                let (gr, _) = self.part.to_global(pid, lr, 0);
                buf.push_f64_slice(self.global.row(gr));
            }
        } else {
            for lr in 0..lrows {
                for lc in 0..lcols {
                    let (gr, gc) = self.part.to_global(pid, lr, lc);
                    buf.push_f64(self.global.get(gr, gc));
                    ops.tick();
                }
            }
        }
        Ok(())
    }

    /// Unpack a received dense local array.
    fn decode_part(
        &self,
        payload: &PackBuffer,
        pid: usize,
        ops: &mut OpCounter,
    ) -> Result<Dense2D, SparsedistError> {
        let (lrows, lcols) = self.part.local_shape(pid);
        let mut cursor = payload.cursor();
        if self.wire == WireFormat::V2 {
            let _flags = wire::read_header(&mut cursor)?;
        }
        let data = cursor.try_read_f64_vec(lrows * lcols)?;
        if !cursor.is_exhausted() {
            // Longer than the local shape: a framing mismatch, not just noise.
            return Err(UnpackError {
                at: payload.byte_len() - cursor.remaining(),
                remaining: cursor.remaining(),
            }
            .into());
        }
        if !self.part.row_contiguous() {
            ops.add((lrows * lcols) as u64);
        }
        Ok(Dense2D::from_vec(lrows, lcols, data))
    }

    fn finish_phase(&self) -> Option<Phase> {
        Some(Phase::Compress)
    }

    fn finish_part(&self, mid: &Dense2D, ops: &mut OpCounter) -> LocalCompressed {
        compress_dense(self.kind, mid, ops)
    }

    fn local_from(&self, mid: Dense2D) -> LocalCompressed {
        // Never reached (finish_phase is Some), but semantically correct.
        compress_dense(self.kind, &mid, &mut OpCounter::new())
    }
}

pub(crate) fn run(
    machine: &Multicomputer,
    global: &Dense2D,
    part: &dyn Partition,
    kind: CompressKind,
    config: SchemeConfig,
) -> Result<SchemeRun, SparsedistError> {
    let stages = Stages {
        global,
        part,
        kind,
        wire: config.wire,
    };
    pipeline::run_pipeline(machine, &stages, part, kind, config)
}
