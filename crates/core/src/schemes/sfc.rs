//! The Send Followed Compress scheme (paper §3.1) — the baseline, as used
//! by the Block Row Scatter distribution of Zapata et al.
//!
//! The source extracts each processor's **dense** local array and sends it
//! whole; each receiver compresses its local array after arrival. For the
//! row partition the local array is a contiguous row band of the global
//! array and is sent "without packing into buffers" (§4.1.1) — modelled as
//! zero per-element packing cost. Every other partition must gather strided
//! elements, charged at one operation per element on each side (this is the
//! reason the paper's measured SFC distribution time in Tables 4–5 is so
//! much higher than in Table 3).
//!
//! The driver flow (pack → send → unpack → compress) lives in the shared
//! [`pipeline`] module; this file only supplies the stage hooks.

use crate::compress::{compress_dense, CompressKind, LocalCompressed};
use crate::dense::Dense2D;
use crate::error::SparsedistError;
use crate::opcount::OpCounter;
use crate::partition::Partition;
use crate::schemes::pipeline::{self, SchemeStages, SourcePolicy};
use crate::schemes::{SchemeConfig, SchemeKind, SchemeRun};
use crate::wire::{self, WirePolicy};
use sparsedist_multicomputer::pack::UnpackError;
use sparsedist_multicomputer::{Multicomputer, PackBuffer, Phase};

pub(crate) struct Stages<'a> {
    global: &'a Dense2D,
    part: &'a dyn Partition,
    kind: CompressKind,
    policy: WirePolicy,
}

impl SchemeStages for Stages<'_> {
    type Mid = Dense2D;

    fn scheme(&self) -> SchemeKind {
        SchemeKind::Sfc
    }

    fn source_policy(&self) -> SourcePolicy {
        SourcePolicy::Fused(Phase::Pack)
    }

    fn recv_phase(&self) -> Phase {
        Phase::Unpack
    }

    fn batch_decode_inside_phase(&self) -> bool {
        true
    }

    fn buf_capacity(&self, pid: usize) -> usize {
        let (lrows, lcols) = self.part.local_shape(pid);
        lrows * lcols * 8 + wire::HEADER_LEN
    }

    /// Pack one part's dense local array for the wire.
    ///
    /// SFC payloads are pure value streams — no index side — so the codec
    /// only sees `encode_values`: under v1 the bytes are the bare `f64`
    /// run, v2 adds only its self-describing header, and v3 may
    /// byte-transpose the values into planes (dense payloads are mostly
    /// zeros, which RLE-compress hard). Gathering into the staging vector
    /// charges one op per element only on the strided path, exactly as
    /// the per-cell packing loop did.
    fn encode_part(
        &self,
        buf: &mut PackBuffer,
        pid: usize,
        ops: &mut OpCounter,
    ) -> Result<(), SparsedistError> {
        let (lrows, lcols) = self.part.local_shape(pid);
        let mut values = Vec::with_capacity(lrows * lcols);
        if self.part.row_contiguous() {
            // A contiguous row band: DMA straight from the global array.
            for lr in 0..lrows {
                let (gr, _) = self.part.to_global(pid, lr, 0);
                values.extend_from_slice(self.global.row(gr));
            }
        } else {
            for lr in 0..lrows {
                for lc in 0..lcols {
                    let (gr, gc) = self.part.to_global(pid, lr, lc);
                    values.push(self.global.get(gr, gc));
                    ops.tick();
                }
            }
        }
        wire::pack_values_into(buf, &values, &self.policy);
        Ok(())
    }

    /// Unpack a received dense local array.
    fn decode_part(
        &self,
        payload: &PackBuffer,
        pid: usize,
        ops: &mut OpCounter,
    ) -> Result<Dense2D, SparsedistError> {
        let (lrows, lcols) = self.part.local_shape(pid);
        let mut cursor = payload.cursor();
        let data = wire::unpack_values(&mut cursor, lrows * lcols, self.policy.format)?;
        if !cursor.is_exhausted() {
            // Longer than the local shape: a framing mismatch, not just noise.
            return Err(UnpackError {
                at: payload.byte_len() - cursor.remaining(),
                remaining: cursor.remaining(),
            }
            .into());
        }
        if !self.part.row_contiguous() {
            ops.add((lrows * lcols) as u64);
        }
        Ok(Dense2D::from_vec(lrows, lcols, data))
    }

    fn finish_phase(&self) -> Option<Phase> {
        Some(Phase::Compress)
    }

    fn finish_part(&self, mid: &Dense2D, ops: &mut OpCounter) -> LocalCompressed {
        compress_dense(self.kind, mid, ops)
    }

    fn local_from(&self, mid: Dense2D) -> LocalCompressed {
        // Never reached (finish_phase is Some), but semantically correct.
        compress_dense(self.kind, &mid, &mut OpCounter::new())
    }
}

pub(crate) fn run(
    machine: &Multicomputer,
    global: &Dense2D,
    part: &dyn Partition,
    kind: CompressKind,
    config: SchemeConfig,
) -> Result<SchemeRun, SparsedistError> {
    let stages = Stages {
        global,
        part,
        kind,
        policy: WirePolicy::new(config.wire, config.codec, machine.model()),
    };
    pipeline::run_pipeline(machine, &stages, part, kind, config)
}
