//! The Send Followed Compress scheme (paper §3.1) — the baseline, as used
//! by the Block Row Scatter distribution of Zapata et al.
//!
//! The source extracts each processor's **dense** local array and sends it
//! whole; each receiver compresses its local array after arrival. For the
//! row partition the local array is a contiguous row band of the global
//! array and is sent "without packing into buffers" (§4.1.1) — modelled as
//! zero per-element packing cost. Every other partition must gather strided
//! elements, charged at one operation per element on each side (this is the
//! reason the paper's measured SFC distribution time in Tables 4–5 is so
//! much higher than in Table 3).

use crate::compress::{compress_dense, CompressKind, LocalCompressed};
use crate::dense::Dense2D;
use crate::error::SparsedistError;
use crate::opcount::OpCounter;
use crate::partition::Partition;
use crate::schemes::{
    alive_ranks_of, assign_owners, collect_parts, map_parts_counted, SchemeConfig, SchemeKind,
    SchemeRun, SOURCE,
};
use crate::wire::{self, WireFormat};
use sparsedist_multicomputer::pack::UnpackError;
use sparsedist_multicomputer::{Multicomputer, PackBuffer, Phase};

/// Pack one part's dense local array for the wire into `buf`.
///
/// SFC payloads are pure `f64` runs, which v2 cannot shrink — under
/// [`WireFormat::V2`] only the self-describing header is added (with no
/// flag bits in play), so the stream is still recognisably v2 to a
/// receiver that negotiates per message.
fn pack_dense_part(
    buf: &mut PackBuffer,
    global: &Dense2D,
    part: &dyn Partition,
    pid: usize,
    format: WireFormat,
    ops: &mut OpCounter,
) {
    let (lrows, lcols) = part.local_shape(pid);
    if format == WireFormat::V2 {
        wire::write_header(buf, wire::FLAG_DELTA | wire::FLAG_IDX32);
    }
    if part.row_contiguous() {
        // A contiguous row band: DMA straight from the global array.
        for lr in 0..lrows {
            let (gr, _) = part.to_global(pid, lr, 0);
            buf.push_f64_slice(global.row(gr));
        }
    } else {
        for lr in 0..lrows {
            for lc in 0..lcols {
                let (gr, gc) = part.to_global(pid, lr, lc);
                buf.push_f64(global.get(gr, gc));
                ops.tick();
            }
        }
    }
}

/// Unpack a received dense local array.
fn unpack_dense(
    buf: &PackBuffer,
    part: &dyn Partition,
    pid: usize,
    format: WireFormat,
    ops: &mut OpCounter,
) -> Result<Dense2D, SparsedistError> {
    let (lrows, lcols) = part.local_shape(pid);
    let mut cursor = buf.cursor();
    if format == WireFormat::V2 {
        let _flags = wire::read_header(&mut cursor)?;
    }
    let data = cursor.try_read_f64_vec(lrows * lcols)?;
    if !cursor.is_exhausted() {
        // Longer than the local shape: a framing mismatch, not just noise.
        return Err(UnpackError {
            at: buf.byte_len() - cursor.remaining(),
            remaining: cursor.remaining(),
        }
        .into());
    }
    if !part.row_contiguous() {
        ops.add((lrows * lcols) as u64);
    }
    Ok(Dense2D::from_vec(lrows, lcols, data))
}

pub(crate) fn run(
    machine: &Multicomputer,
    global: &Dense2D,
    part: &dyn Partition,
    kind: CompressKind,
    config: SchemeConfig,
) -> Result<SchemeRun, SparsedistError> {
    let nparts = part.nparts();
    let owners = assign_owners(part, &alive_ranks_of(machine));
    let owners_ref = &owners;
    let (results, ledgers) = machine.run_with_ledgers(
        |env| -> Result<Vec<(usize, LocalCompressed)>, SparsedistError> {
            let me = env.rank();
            env.trace_scope("SFC");
            if env.is_rank_dead(me) {
                return Ok(Vec::new());
            }
            if me == SOURCE {
                let bufs: Vec<PackBuffer> = env.phase(Phase::Pack, |env| {
                    let mut ops = OpCounter::new();
                    let (bufs, counts) = {
                        let arena = env.arena();
                        map_parts_counted(nparts, config.parallel, &mut ops, &|pid, ops| {
                            let (lrows, lcols) = part.local_shape(pid);
                            let mut buf = arena.checkout(lrows * lcols * 8 + wire::HEADER_LEN);
                            pack_dense_part(&mut buf, global, part, pid, config.wire, ops);
                            buf
                        })
                    };
                    if env.is_tracing() {
                        let pairs: Vec<(usize, u64)> = counts.into_iter().enumerate().collect();
                        env.trace_part_ops(&pairs);
                    }
                    env.charge_ops(ops.take());
                    bufs
                });
                env.phase(Phase::Send, |env| -> Result<(), SparsedistError> {
                    for (pid, buf) in bufs.into_iter().enumerate() {
                        env.send(owners_ref[pid], buf)?;
                    }
                    Ok(())
                })?;
            }
            let mine: Vec<usize> = (0..nparts).filter(|&pid| owners_ref[pid] == me).collect();
            let mut out = Vec::with_capacity(mine.len());
            if config.parallel && mine.len() >= 2 {
                // Receive everything first, then unpack and compress the
                // parts on scoped host threads; each phase's merged op
                // total equals the sequential path's sum of per-part
                // charges, so the virtual clock cannot tell them apart.
                let mut msgs = Vec::with_capacity(mine.len());
                for &pid in &mine {
                    msgs.push((pid, env.recv(SOURCE)?));
                }
                let denses = env.phase(Phase::Unpack, |env| {
                    let mut ops = OpCounter::new();
                    let (d, counts) = {
                        let msgs_ref = &msgs;
                        map_parts_counted(msgs.len(), true, &mut ops, &|i, ops| {
                            let (pid, msg) = &msgs_ref[i];
                            unpack_dense(&msg.payload, part, *pid, config.wire, ops)
                        })
                    };
                    if env.is_tracing() {
                        let pairs: Vec<(usize, u64)> =
                            msgs.iter().map(|(pid, _)| *pid).zip(counts).collect();
                        env.trace_part_ops(&pairs);
                    }
                    env.charge_ops(ops.take());
                    d
                });
                let mut locals = Vec::with_capacity(denses.len());
                for (dense, (pid, msg)) in denses.into_iter().zip(msgs) {
                    env.arena().recycle_bytes(msg.payload.into_bytes());
                    locals.push((pid, dense?));
                }
                let compressed = env.phase(Phase::Compress, |env| {
                    let mut ops = OpCounter::new();
                    let (c, counts) = {
                        let locals_ref = &locals;
                        map_parts_counted(locals.len(), true, &mut ops, &|i, ops| {
                            compress_dense(kind, &locals_ref[i].1, ops)
                        })
                    };
                    if env.is_tracing() {
                        let pairs: Vec<(usize, u64)> =
                            locals.iter().map(|(pid, _)| *pid).zip(counts).collect();
                        env.trace_part_ops(&pairs);
                    }
                    env.charge_ops(ops.take());
                    c
                });
                out.extend(locals.iter().map(|(pid, _)| *pid).zip(compressed));
            } else {
                for pid in mine {
                    let msg = env.recv(SOURCE)?;
                    let local_dense = env.phase(Phase::Unpack, |env| {
                        let mut ops = OpCounter::new();
                        let d = unpack_dense(&msg.payload, part, pid, config.wire, &mut ops);
                        let n = ops.take();
                        env.trace_part_ops(&[(pid, n)]);
                        env.charge_ops(n);
                        d
                    })?;
                    env.arena().recycle_bytes(msg.payload.into_bytes());
                    let c = env.phase(Phase::Compress, |env| {
                        let mut ops = OpCounter::new();
                        let c = compress_dense(kind, &local_dense, &mut ops);
                        let n = ops.take();
                        env.trace_part_ops(&[(pid, n)]);
                        env.charge_ops(n);
                        c
                    });
                    out.push((pid, c));
                }
            }
            Ok(out)
        },
    );
    let locals = collect_parts(results, nparts)?;
    Ok(SchemeRun {
        scheme: SchemeKind::Sfc,
        compress_kind: kind,
        source: SOURCE,
        ledgers,
        locals,
        owners,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;
    use crate::partition::{ColBlock, RowBlock};
    use sparsedist_multicomputer::MachineModel;

    fn sp2(p: usize) -> Multicomputer {
        Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
    }

    #[test]
    fn row_partition_matches_table1_closed_form() {
        // Table 1 SFC: T_Distribution = p·T_Startup + n²·T_Data,
        // T_Compression = ⌈n/p⌉·n·(1+3s')·T_Operation.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = super::run(
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        )
        .unwrap();

        let dist = run.t_distribution().as_micros();
        let expect_dist = 4.0 * m.t_startup + 80.0 * m.t_data;
        assert!(
            (dist - expect_dist).abs() < 1e-9,
            "dist {dist} vs {expect_dist}"
        );

        // The slowest *compressor* is the part maximising cells + 3·nnz:
        // P0/P1/P2 have 24 cells; P2 has 6 nonzeros → 24 + 18 = 42 ops.
        let comp = run.t_compression().as_micros();
        let expect_comp = 42.0 * m.t_op;
        assert!(
            (comp - expect_comp).abs() < 1e-9,
            "comp {comp} vs {expect_comp}"
        );
    }

    #[test]
    fn row_partition_charges_no_pack_ops() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let run = super::run(
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        )
        .unwrap();
        assert_eq!(run.ledgers[0].get(Phase::Pack).as_micros(), 0.0);
        for l in &run.ledgers {
            assert_eq!(l.get(Phase::Unpack).as_micros(), 0.0);
        }
    }

    #[test]
    fn column_partition_charges_strided_pack() {
        let a = paper_array_a();
        let part = ColBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = super::run(
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        )
        .unwrap();
        // Source packs all 80 cells at 1 op each.
        let pack = run.ledgers[0].get(Phase::Pack).as_micros();
        assert!((pack - 80.0 * m.t_op).abs() < 1e-9);
        // Each receiver unpacks its 10×2 = 20 cells.
        for l in &run.ledgers {
            assert!((l.get(Phase::Unpack).as_micros() - 20.0 * m.t_op).abs() < 1e-9);
        }
    }

    #[test]
    fn wire_volume_is_the_full_dense_array() {
        // SFC always ships n·m dense elements regardless of sparsity.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let m = MachineModel::ibm_sp2();
        let run = super::run(
            &sp2(4),
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::default(),
        )
        .unwrap();
        let send = run.ledgers[0].get(Phase::Send).as_micros();
        assert!((send - (4.0 * m.t_startup + 80.0 * m.t_data)).abs() < 1e-9);
    }
}
