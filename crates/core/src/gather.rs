//! **Gathering**: collecting a distributed sparse array back onto the
//! source processor — the inverse of the distribution phase, needed at the
//! end of any compute pipeline (write the result, checkpoint, hand off to
//! a sequential post-processing stage).
//!
//! The paper's three orderings have exact mirror images here, and the same
//! trade-offs apply in reverse:
//!
//! * [`GatherStrategy::Dense`] — each processor expands its local array to
//!   dense and ships every cell (`n²` elements total), the SFC mirror;
//! * [`GatherStrategy::Compressed`] — each processor ships its local
//!   `RO`/`CO`/`VL` with indices converted to **global** on the sender
//!   (the CFS mirror; conversion now happens before the send);
//! * [`GatherStrategy::Encoded`] — each processor encodes the ED special
//!   buffer of its local array with global indices; the source decodes all
//!   `p` buffers straight into the global compressed array.

use crate::compress::{Ccs, CompressKind, Crs, LocalCompressed};
use crate::convert::conversion_case;
use crate::convert::ConversionCase;
use crate::error::SparsedistError;
use crate::opcount::OpCounter;
use crate::partition::Partition;
use crate::schemes::{alive_ranks_of, assign_owners};
use sparsedist_multicomputer::pack::UnpackError;
use sparsedist_multicomputer::{Multicomputer, PackBuffer, Phase, PhaseLedger, VirtualTime};

/// How the local arrays travel back to the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherStrategy {
    /// Ship dense local arrays (`n²` elements) — the SFC mirror.
    Dense,
    /// Ship `RO`/`CO`/`VL` with sender-side index globalisation — the CFS
    /// mirror.
    Compressed,
    /// Ship the ED special buffer with global indices — the ED mirror.
    Encoded,
}

/// Result of a gather: the reassembled global array at the source plus
/// per-rank ledgers.
#[derive(Debug, Clone)]
pub struct GatherRun {
    /// Which strategy ran.
    pub strategy: GatherStrategy,
    /// Per-rank phase ledgers.
    pub ledgers: Vec<PhaseLedger>,
    /// The global array, compressed in the requested kind (held by the
    /// source; replicated here for inspection).
    pub global: LocalCompressed,
}

impl GatherRun {
    /// The source processor's busy time (it does the merging) — the
    /// gather analogue of the paper's `T_Distribution` focus.
    pub fn t_gather(&self) -> VirtualTime {
        self.ledgers[0].busy_total()
    }
}

/// Convert one local nonzero's travelling index to global at the sender:
/// the exact inverse of the receive-side Cases 3.2.x/3.3.x, charged the
/// same one op when (and only when) the distribution direction would have
/// charged it.
fn globalise(
    part: &dyn Partition,
    me: usize,
    kind: CompressKind,
    lr: usize,
    lc: usize,
    ops: &mut OpCounter,
) -> usize {
    let (gr, gc) = part.to_global(me, lr, lc);
    match (kind, conversion_case(part, kind)) {
        (CompressKind::Crs, ConversionCase::None) => gc,
        (CompressKind::Ccs, ConversionCase::None) => gr,
        (CompressKind::Crs, _) => {
            ops.tick();
            gc
        }
        (CompressKind::Ccs, _) => {
            ops.tick();
            gr
        }
    }
}

/// Gather `locals` (owned under `part`) back to rank 0 as one global
/// compressed array.
///
/// ```
/// use sparsedist_core::dense::paper_array_a;
/// use sparsedist_core::partition::RowBlock;
/// use sparsedist_core::compress::CompressKind;
/// use sparsedist_core::gather::{gather_global, GatherStrategy};
/// use sparsedist_core::schemes::{run_scheme, SchemeKind};
/// use sparsedist_multicomputer::{MachineModel, Multicomputer};
///
/// let a = paper_array_a();
/// let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
/// let part = RowBlock::new(10, 8, 4);
/// let run = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Crs).unwrap();
/// let g = gather_global(&machine, &run.locals, &part, CompressKind::Crs,
///                       GatherStrategy::Encoded).unwrap();
/// assert_eq!(g.global.to_dense(), a); // gather inverts distribution
/// ```
///
/// # Errors
/// Returns [`SparsedistError::SourceDead`] when the collecting rank 0 is
/// dead, plus the usual communication/validation failures. Dead sender
/// ranks degrade gracefully: each part travels from the rank that owns it
/// under [`assign_owners`], so survivors cover for the dead.
///
/// # Panics
/// Panics if the machine size disagrees with the partition or `locals`.
pub fn gather_global(
    machine: &Multicomputer,
    locals: &[LocalCompressed],
    part: &dyn Partition,
    kind: CompressKind,
    strategy: GatherStrategy,
) -> Result<GatherRun, SparsedistError> {
    let p = machine.nprocs();
    assert_eq!(
        part.nparts(),
        p,
        "partition has {} parts, machine {p}",
        part.nparts()
    );
    assert_eq!(locals.len(), p, "need one local array per processor");
    for (pid, l) in locals.iter().enumerate() {
        assert_eq!(
            l.kind(),
            kind,
            "local array {pid} is {} but gather kind is {kind}",
            l.kind()
        );
    }
    let (grows, gcols) = part.global_shape();
    if machine.fault_plan().is_some_and(|pl| pl.is_dead(0)) {
        return Err(SparsedistError::SourceDead { rank: 0 });
    }
    let owners = assign_owners(part, &alive_ranks_of(machine));
    let owners_ref = &owners;

    let (globals, ledgers) =
        machine.run_with_ledgers(|env| -> Result<Option<LocalCompressed>, SparsedistError> {
            let me = env.rank();
            if env.is_rank_dead(me) {
                return Ok(None);
            }

            // Sender side: build and ship one buffer per owned part (exactly
            // one — this rank's own — when every rank is alive).
            let mine: Vec<usize> = (0..p).filter(|&pid| owners_ref[pid] == me).collect();
            for &pid in &mine {
                let buf = env.phase(Phase::Pack, |env| {
                    let mut ops = OpCounter::new();
                    let buf = match strategy {
                        GatherStrategy::Dense => {
                            let dense = locals[pid].to_dense();
                            let (lr, lc) = (dense.rows(), dense.cols());
                            let mut buf = PackBuffer::with_capacity(lr * lc);
                            for r in 0..lr {
                                buf.push_f64_slice(dense.row(r));
                            }
                            // Expansion cost: one op per cell written.
                            ops.add((lr * lc) as u64);
                            buf
                        }
                        GatherStrategy::Compressed => {
                            // Ship count + (travelling-global index, value) runs per
                            // segment pointer, i.e. the CFS layout in reverse:
                            // pointer array then indices (globalised) then values.
                            let mut buf = PackBuffer::new();
                            match &locals[pid] {
                                LocalCompressed::Crs(a) => {
                                    buf.push_usize_slice(a.ro());
                                    ops.add(a.ro().len() as u64);
                                    for (lr, lc, _) in a.iter() {
                                        let g = globalise(part, pid, kind, lr, lc, &mut ops);
                                        buf.push_u64(g as u64);
                                        ops.tick();
                                    }
                                    buf.push_f64_slice(a.vl());
                                    ops.add(a.vl().len() as u64);
                                }
                                LocalCompressed::Ccs(a) => {
                                    buf.push_usize_slice(a.cp());
                                    ops.add(a.cp().len() as u64);
                                    for (lr, lc, _) in a.iter() {
                                        let g = globalise(part, pid, kind, lr, lc, &mut ops);
                                        buf.push_u64(g as u64);
                                        ops.tick();
                                    }
                                    buf.push_f64_slice(a.vl());
                                    ops.add(a.vl().len() as u64);
                                }
                            }
                            buf
                        }
                        GatherStrategy::Encoded => {
                            // ED layout per segment: count, then (global index,
                            // value) pairs.
                            let mut buf = PackBuffer::new();
                            match &locals[pid] {
                                LocalCompressed::Crs(a) => {
                                    for r in 0..a.rows() {
                                        buf.push_u64(a.row_nnz(r) as u64);
                                        ops.tick();
                                        for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
                                            let g = globalise(part, pid, kind, r, c, &mut ops);
                                            buf.push_u64(g as u64);
                                            buf.push_f64(v);
                                            ops.add(2);
                                        }
                                    }
                                }
                                LocalCompressed::Ccs(a) => {
                                    for c in 0..a.cols() {
                                        buf.push_u64(a.col_nnz(c) as u64);
                                        ops.tick();
                                        for (&r, &v) in a.col_rows(c).iter().zip(a.col_vals(c)) {
                                            let g = globalise(part, pid, kind, r, c, &mut ops);
                                            buf.push_u64(g as u64);
                                            buf.push_f64(v);
                                            ops.add(2);
                                        }
                                    }
                                }
                            }
                            buf
                        }
                    };
                    env.charge_ops(ops.take());
                    buf
                });
                env.phase(Phase::Send, |env| env.send(0, buf))?;
            }

            if me != 0 {
                return Ok(None);
            }

            // Source side: merge one message per part (arriving from each
            // part's owner) into global triplets.
            let mut trips: Vec<(usize, usize, f64)> = Vec::new();
            let mut ops = OpCounter::new();
            for (src, &owner) in owners_ref.iter().enumerate().take(p) {
                let msg = env.recv(owner)?;
                env.phase(Phase::Unpack, |_env| -> Result<(), SparsedistError> {
                    let mut cursor = msg.payload.cursor();
                    let (lrows, lcols) = part.local_shape(src);
                    match strategy {
                        GatherStrategy::Dense => {
                            for lr in 0..lrows {
                                for lc in 0..lcols {
                                    let v = cursor.try_read_f64()?;
                                    ops.tick();
                                    if v != 0.0 {
                                        let (gr, gc) = part.to_global(src, lr, lc);
                                        trips.push((gr, gc, v));
                                        ops.add(2);
                                    }
                                }
                            }
                        }
                        GatherStrategy::Compressed => {
                            let nsegs = match kind {
                                CompressKind::Crs => lrows,
                                CompressKind::Ccs => lcols,
                            };
                            let pointer = cursor.try_read_usize_vec(nsegs + 1)?;
                            ops.add((nsegs + 1) as u64);
                            let nnz = pointer[nsegs];
                            let travelling = cursor.try_read_usize_vec(nnz)?;
                            let values = cursor.try_read_f64_vec(nnz)?;
                            ops.add(2 * nnz as u64);
                            let mut k = 0;
                            for seg in 0..nsegs {
                                for _ in pointer[seg]..pointer[seg + 1] {
                                    let (gr, gc) = match kind {
                                        CompressKind::Crs => {
                                            let (gr, _) = part.to_global(src, seg, 0);
                                            (gr, travelling[k])
                                        }
                                        CompressKind::Ccs => {
                                            let (_, gc) = part.to_global(src, 0, seg);
                                            (travelling[k], gc)
                                        }
                                    };
                                    trips.push((gr, gc, values[k]));
                                    ops.tick();
                                    k += 1;
                                }
                            }
                        }
                        GatherStrategy::Encoded => {
                            let nsegs = match kind {
                                CompressKind::Crs => lrows,
                                CompressKind::Ccs => lcols,
                            };
                            for seg in 0..nsegs {
                                let count = cursor.try_read_usize()?;
                                ops.tick();
                                for _ in 0..count {
                                    let g = cursor.try_read_usize()?;
                                    let v = cursor.try_read_f64()?;
                                    ops.add(2);
                                    let (gr, gc) = match kind {
                                        CompressKind::Crs => {
                                            let (gr, _) = part.to_global(src, seg, 0);
                                            (gr, g)
                                        }
                                        CompressKind::Ccs => {
                                            let (_, gc) = part.to_global(src, 0, seg);
                                            (g, gc)
                                        }
                                    };
                                    trips.push((gr, gc, v));
                                    ops.tick();
                                }
                            }
                        }
                    }
                    if !cursor.is_exhausted() {
                        return Err(UnpackError {
                            at: 0,
                            remaining: cursor.remaining(),
                        }
                        .into());
                    }
                    Ok(())
                })?;
            }
            env.phase(Phase::Unpack, |env| env.charge_ops(ops.take()));

            // Build the global compressed array.
            Ok(Some(env.phase(Phase::Compress, |env| {
                let mut ops = OpCounter::new();
                let global = match kind {
                    CompressKind::Crs => {
                        LocalCompressed::Crs(Crs::from_triplets(grows, gcols, &trips, &mut ops))
                    }
                    CompressKind::Ccs => {
                        LocalCompressed::Ccs(Ccs::from_triplets(grows, gcols, &trips, &mut ops))
                    }
                };
                env.charge_ops(ops.take());
                global
            })))
        });

    let mut iter = globals.into_iter();
    let global = match iter.next() {
        Some(Ok(Some(g))) => {
            for r in iter {
                r?;
            }
            g
        }
        Some(Err(e)) => return Err(e),
        _ => unreachable!("rank 0 is alive and returns the global array"),
    };
    Ok(GatherRun {
        strategy,
        ledgers,
        global,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;
    use crate::partition::{ColBlock, Mesh2D, RowBlock, RowCyclic};
    use crate::schemes::{run_scheme, SchemeKind};
    use sparsedist_multicomputer::MachineModel;

    fn machine(p: usize) -> Multicomputer {
        Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
    }

    #[test]
    fn gather_inverts_distribution() {
        let a = paper_array_a();
        let parts: Vec<Box<dyn Partition>> = vec![
            Box::new(RowBlock::new(10, 8, 4)),
            Box::new(ColBlock::new(10, 8, 4)),
            Box::new(Mesh2D::new(10, 8, 2, 2)),
            Box::new(RowCyclic::new(10, 8, 4)),
        ];
        for part in &parts {
            for kind in [CompressKind::Crs, CompressKind::Ccs] {
                let run = run_scheme(SchemeKind::Ed, &machine(4), &a, part.as_ref(), kind).unwrap();
                for strategy in [
                    GatherStrategy::Dense,
                    GatherStrategy::Compressed,
                    GatherStrategy::Encoded,
                ] {
                    let g = gather_global(&machine(4), &run.locals, part.as_ref(), kind, strategy)
                        .unwrap();
                    assert_eq!(
                        g.global.to_dense(),
                        a,
                        "{kind} {:?} {}",
                        strategy,
                        part.name()
                    );
                    assert_eq!(g.global.kind(), kind);
                }
            }
        }
    }

    #[test]
    fn compressed_gather_ships_less_than_dense() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let run = run_scheme(SchemeKind::Ed, &machine(4), &a, &part, CompressKind::Crs).unwrap();
        let dense = gather_global(
            &machine(4),
            &run.locals,
            &part,
            CompressKind::Crs,
            GatherStrategy::Dense,
        )
        .unwrap();
        let enc = gather_global(
            &machine(4),
            &run.locals,
            &part,
            CompressKind::Crs,
            GatherStrategy::Encoded,
        )
        .unwrap();
        let send = |g: &GatherRun| -> f64 {
            g.ledgers
                .iter()
                .map(|l| l.get(Phase::Send).as_micros())
                .sum()
        };
        assert!(send(&enc) < send(&dense));
    }

    #[test]
    fn encoded_gather_beats_compressed_on_the_wire() {
        // Same margin as in the forward direction: no separate pointer
        // array, counts only.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let run = run_scheme(SchemeKind::Ed, &machine(4), &a, &part, CompressKind::Crs).unwrap();
        let comp = gather_global(
            &machine(4),
            &run.locals,
            &part,
            CompressKind::Crs,
            GatherStrategy::Compressed,
        )
        .unwrap();
        let enc = gather_global(
            &machine(4),
            &run.locals,
            &part,
            CompressKind::Crs,
            GatherStrategy::Encoded,
        )
        .unwrap();
        let send = |g: &GatherRun| -> f64 {
            g.ledgers
                .iter()
                .map(|l| l.get(Phase::Send).as_micros())
                .sum()
        };
        assert!(send(&enc) < send(&comp));
    }

    #[test]
    fn gather_of_empty_array() {
        let a = crate::dense::Dense2D::zeros(12, 12);
        let part = RowBlock::new(12, 12, 4);
        let run = run_scheme(SchemeKind::Cfs, &machine(4), &a, &part, CompressKind::Crs).unwrap();
        let g = gather_global(
            &machine(4),
            &run.locals,
            &part,
            CompressKind::Crs,
            GatherStrategy::Encoded,
        )
        .unwrap();
        assert_eq!(g.global.nnz(), 0);
        assert_eq!(g.global.shape(), (12, 12));
    }
}
