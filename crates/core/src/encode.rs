//! The ED scheme's special buffer `B` (paper §3.3, Figure 6).
//!
//! For the CRS method the buffer holds, for each row `i` of a local sparse
//! array: the nonzero count `R_i`, followed by the row's pairs
//! `C_i0, V_i0, C_i1, V_i1, …` where each `C_ij` is a **global** index of
//! the global sparse array. For CCS the same layout runs over columns,
//! with `C_ij` a global row index.
//!
//! *Encoding* scans the global array once at the paper's
//! `(1 + 3s)·cells` cost, collecting the logical streams, then hands them
//! to the wire codec the [`WirePolicy`] selects ([`Codec::encode_pairs`])
//! — under v1 the bytes are identical to the seed's single-pass layout.
//! *Decoding* opens the message header to find the codec that wrote the
//! stream, reads the segments back, and converts each `C_ij` per the
//! Cases in [`crate::convert`] with the op accounting of Tables 1–2.

use crate::compress::{Ccs, CompressKind, Crs, LocalCompressed};
use crate::convert::IndexConverter;
use crate::error::SparsedistError;
use crate::opcount::OpCounter;
use crate::partition::Partition;
use crate::wire::{self, WireFormat, WirePolicy};
use sparsedist_multicomputer::pack::PackBuffer;

/// Encode part `pid` of the global array into a special buffer in the
/// seed v1 layout.
///
/// Op accounting: one op per cell scanned, three per nonzero (push `C`,
/// push `V`, bump the running `R_i`) — summed over all parts this is the
/// paper's encoding cost `n²(1 + 3s)·T_Operation`.
pub fn encode_part(
    global: &crate::dense::Dense2D,
    part: &dyn Partition,
    pid: usize,
    kind: CompressKind,
    ops: &mut OpCounter,
) -> PackBuffer {
    let (lrows, lcols) = part.local_shape(pid);
    let (outer, inner) = match kind {
        CompressKind::Crs => (lrows, lcols),
        CompressKind::Ccs => (lcols, lrows),
    };
    let mut buf = PackBuffer::with_capacity(outer + 2 * (outer * inner) / 8 + 1);
    encode_part_into(
        &mut buf,
        global,
        part,
        pid,
        kind,
        &WirePolicy::of(WireFormat::V1),
        ops,
    );
    buf
}

/// Encode part `pid` of the global array into `buf` under the chosen
/// [`WirePolicy`] — the wire-aware, buffer-reusing core behind
/// [`encode_part`].
///
/// `buf` is typically checked out of a `PackArena` so repeated runs reuse
/// their allocations. Under [`WireFormat::V1`] the bytes appended are
/// exactly [`encode_part`]'s; newer formats write a header and the
/// codec's negotiated segment encodings. The logical element count and op
/// accounting are identical in every format.
pub fn encode_part_into(
    buf: &mut PackBuffer,
    global: &crate::dense::Dense2D,
    part: &dyn Partition,
    pid: usize,
    kind: CompressKind,
    policy: &WirePolicy,
    ops: &mut OpCounter,
) {
    let (lrows, lcols) = part.local_shape(pid);
    let (outer, inner) = match kind {
        CompressKind::Crs => (lrows, lcols),
        CompressKind::Ccs => (lcols, lrows),
    };
    let (grows, gcols) = part.global_shape();
    let mut pointer = Vec::with_capacity(outer + 1);
    pointer.push(0usize);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for o in 0..outer {
        for i in 0..inner {
            ops.tick();
            let (lr, lc) = match kind {
                CompressKind::Crs => (o, i),
                CompressKind::Ccs => (i, o),
            };
            let (gr, gc) = part.to_global(pid, lr, lc);
            let v = global.get(gr, gc);
            if v != 0.0 {
                let travelling = match kind {
                    CompressKind::Crs => gc,
                    CompressKind::Ccs => gr,
                };
                indices.push(travelling);
                values.push(v);
                ops.add(3);
            }
        }
        pointer.push(indices.len());
    }
    let codec = wire::codec_for(policy.format);
    let desc = codec.plan(grows.max(gcols), &pointer, &indices, &values, policy);
    codec.begin_message(buf, desc);
    codec.encode_pairs(buf, &pointer, &indices, &values, desc);
}

/// Decode a received special buffer (v1 layout) into a compressed local
/// array.
///
/// Op accounting (matching Tables 1–2): one op to initialise the pointer
/// array, one per segment for `RO[i+1] = RO[i] + R_i`, one per moved
/// `C_ij`, one per moved `V_ij`, plus one per index conversion when the
/// partition requires it.
pub fn decode_part(
    buf: &PackBuffer,
    part: &dyn Partition,
    pid: usize,
    kind: CompressKind,
    ops: &mut OpCounter,
) -> Result<LocalCompressed, SparsedistError> {
    decode_part_wire(buf, part, pid, kind, WireFormat::V1, ops)
}

/// Decode a received special buffer in the chosen [`WireFormat`] — the
/// wire-aware core behind [`decode_part`].
///
/// The message header is validated first ([`CompressError::WireHeader`]
/// on mismatch) and names the codec that actually wrote the stream, so a
/// v3-configured receiver also accepts a v2 stream from an older sender.
/// Op accounting is identical in every format.
///
/// # Errors
/// Same as [`decode_part`], plus [`CompressError::WireHeader`] for a
/// stream whose header is missing or malformed, and the codec's typed
/// errors for structurally invalid payloads.
pub fn decode_part_wire(
    buf: &PackBuffer,
    part: &dyn Partition,
    pid: usize,
    kind: CompressKind,
    format: WireFormat,
    ops: &mut OpCounter,
) -> Result<LocalCompressed, SparsedistError> {
    let (lrows, lcols) = part.local_shape(pid);
    let outer = match kind {
        CompressKind::Crs => lrows,
        CompressKind::Ccs => lcols,
    };
    let converter = IndexConverter::new(part, pid, kind);
    let bound = converter.local_index_bound(kind);

    let mut cursor = buf.cursor();
    let head = wire::codec_for(format).open_message(&mut cursor)?;
    let (pointer, raw_indices, values) = head.codec.decode_pairs(&mut cursor, outer, head.desc)?;

    ops.tick(); // pointer[0] initialisation (the formulas' trailing +1)
    let mut indices = Vec::with_capacity(raw_indices.len());
    for seg in 0..outer {
        ops.tick(); // RO[i+1] = RO[i] + R_i
        for &travelling in &raw_indices[pointer[seg]..pointer[seg + 1]] {
            ops.tick(); // move C_ij
            indices.push(converter.to_local(travelling, ops));
            ops.tick(); // move V_ij
        }
    }

    let state = match kind {
        CompressKind::Crs => {
            Crs::from_raw(lrows, bound, pointer, indices, values).map(LocalCompressed::Crs)
        }
        CompressKind::Ccs => {
            Ccs::from_raw(bound, lcols, pointer, indices, values).map(LocalCompressed::Ccs)
        }
    };
    Ok(state?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::CompressError;
    use crate::dense::{paper_array_a, Dense2D};
    use crate::partition::{ColBlock, Mesh2D, RowBlock};

    /// Read the raw u64/f64 stream of a buffer as (counts, pairs) for
    /// inspection.
    fn raw_stream(buf: &PackBuffer, outer: usize) -> Vec<(u64, Vec<(u64, f64)>)> {
        let mut cursor = buf.cursor();
        let mut out = Vec::new();
        for _ in 0..outer {
            let count = cursor.read_u64();
            let pairs = (0..count)
                .map(|_| (cursor.read_u64(), cursor.read_f64()))
                .collect();
            out.push((count, pairs));
        }
        assert!(cursor.is_exhausted());
        out
    }

    #[test]
    fn paper_figure7_p1_ccs_buffer() {
        // Figure 7(b): ED with row partition + CCS for P1 (global rows
        // 3..6). Columns 0..8 hold counts 0,0,0,1,1,1,0,0 with pairs
        // (global row, value): col3 → (4, 6), col4 → (5, 7), col5 → (3, 5).
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let buf = encode_part(&a, &part, 1, CompressKind::Ccs, &mut OpCounter::new());
        let stream = raw_stream(&buf, 8);
        let counts: Vec<u64> = stream.iter().map(|(c, _)| *c).collect();
        assert_eq!(counts, vec![0, 0, 0, 1, 1, 1, 0, 0]);
        assert_eq!(stream[3].1, vec![(4, 6.0)]);
        assert_eq!(stream[4].1, vec![(5, 7.0)]);
        assert_eq!(stream[5].1, vec![(3, 5.0)]);
        // Element count: 8 R_i + 2·3 pairs = 14.
        assert_eq!(buf.elem_count(), 14);
    }

    #[test]
    fn paper_figure7_p1_decode_subtracts_three() {
        // Figure 7(d): P1 converts C_ij by subtracting 3 (Case 3.3.2) and
        // obtains RO = [1,1,1,1,2,3,4,4,4] (1-based), CO = [2,3,1]
        // (1-based local rows), VL = [6,7,5].
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let buf = encode_part(&a, &part, 1, CompressKind::Ccs, &mut OpCounter::new());
        let got = decode_part(&buf, &part, 1, CompressKind::Ccs, &mut OpCounter::new()).unwrap();
        let ccs = got.as_ccs();
        assert_eq!(ccs.cp_paper(), vec![1, 1, 1, 1, 2, 3, 4, 4, 4]);
        assert_eq!(ccs.ri_paper(), vec![2, 3, 1]);
        assert_eq!(ccs.vl(), &[6.0, 7.0, 5.0]);
        // The decoded local array matches the extracted dense part.
        assert_eq!(ccs.to_dense(), part.extract_dense(&a, 1));
    }

    #[test]
    fn encode_decode_round_trip_all_parts_and_kinds() {
        let a = paper_array_a();
        let parts: Vec<Box<dyn Partition>> = vec![
            Box::new(RowBlock::new(10, 8, 4)),
            Box::new(ColBlock::new(10, 8, 4)),
            Box::new(Mesh2D::new(10, 8, 2, 2)),
        ];
        for part in &parts {
            for kind in [CompressKind::Crs, CompressKind::Ccs] {
                for pid in 0..part.nparts() {
                    let buf = encode_part(&a, part.as_ref(), pid, kind, &mut OpCounter::new());
                    let got =
                        decode_part(&buf, part.as_ref(), pid, kind, &mut OpCounter::new()).unwrap();
                    assert_eq!(
                        got.to_dense(),
                        part.extract_dense(&a, pid),
                        "{} {} part {pid}",
                        part.name(),
                        kind
                    );
                }
            }
        }
    }

    #[test]
    fn encode_op_total_matches_compression_cost() {
        // Summed over parts, encoding costs exactly (1+3s)·n² ops.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let mut ops = OpCounter::new();
        for pid in 0..4 {
            let _ = encode_part(&a, &part, pid, CompressKind::Crs, &mut ops);
        }
        assert_eq!(ops.get(), 80 + 3 * 16);
    }

    #[test]
    fn decode_op_count_row_crs() {
        // Row partition + CRS (Case 3.3.1, no conversion): decode of part
        // pid costs 1 + rows + 2·nnz ops.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let buf = encode_part(&a, &part, 2, CompressKind::Crs, &mut OpCounter::new());
        let mut ops = OpCounter::new();
        let _ = decode_part(&buf, &part, 2, CompressKind::Crs, &mut ops).unwrap();
        // P2: 3 rows, 6 nonzeros → 1 + 3 + 12 = 16.
        assert_eq!(ops.get(), 16);
    }

    #[test]
    fn decode_op_count_row_ccs_includes_conversion() {
        // Row partition + CCS (Case 3.3.2): 1 + cols + 3·nnz.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let buf = encode_part(&a, &part, 1, CompressKind::Ccs, &mut OpCounter::new());
        let mut ops = OpCounter::new();
        let _ = decode_part(&buf, &part, 1, CompressKind::Ccs, &mut ops).unwrap();
        // P1: 8 columns, 3 nonzeros → 1 + 8 + 9 = 18.
        assert_eq!(ops.get(), 18);
    }

    #[test]
    fn element_count_is_segments_plus_two_nnz() {
        let a = paper_array_a();
        let part = ColBlock::new(10, 8, 4);
        for pid in 0..4 {
            let buf = encode_part(&a, &part, pid, CompressKind::Crs, &mut OpCounter::new());
            let nnz = part.nnz_profile(&a).per_part[pid] as u64;
            // CRS over a column part: 10 rows per part.
            assert_eq!(buf.elem_count(), 10 + 2 * nnz);
        }
    }

    #[test]
    fn truncated_buffer_is_detected() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let buf = encode_part(&a, &part, 0, CompressKind::Crs, &mut OpCounter::new());
        // Rebuild a truncated copy: drop the last 8 bytes.
        let mut t = PackBuffer::new();
        let bytes = buf.as_bytes();
        let mut cursor = buf.cursor();
        let n_words = bytes.len() / 8 - 1;
        for _ in 0..n_words {
            t.push_u64(cursor.read_u64());
        }
        let err = decode_part(&t, &part, 0, CompressKind::Crs, &mut OpCounter::new());
        assert!(err.is_err(), "truncation must be reported, got {err:?}");
    }

    #[test]
    fn corrupted_count_is_detected() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let mut buf = encode_part(&a, &part, 0, CompressKind::Crs, &mut OpCounter::new());
        // Inflate the first R_i: the decoder will run off the end.
        buf.patch_u64(0, 1_000).unwrap();
        let err = decode_part(&buf, &part, 0, CompressKind::Crs, &mut OpCounter::new());
        assert!(err.is_err());
    }

    #[test]
    fn compact_formats_round_trip_with_same_elements_and_fewer_bytes() {
        let a = paper_array_a();
        let parts: Vec<Box<dyn Partition>> = vec![
            Box::new(RowBlock::new(10, 8, 4)),
            Box::new(ColBlock::new(10, 8, 4)),
            Box::new(Mesh2D::new(10, 8, 2, 2)),
        ];
        for part in &parts {
            for kind in [CompressKind::Crs, CompressKind::Ccs] {
                for pid in 0..part.nparts() {
                    let v1 = encode_part(&a, part.as_ref(), pid, kind, &mut OpCounter::new());
                    let mut v1_ops = OpCounter::new();
                    let mut check = PackBuffer::new();
                    encode_part_into(
                        &mut check,
                        &a,
                        part.as_ref(),
                        pid,
                        kind,
                        &WirePolicy::of(WireFormat::V1),
                        &mut v1_ops,
                    );
                    assert_eq!(check, v1, "V1 via encode_part_into must be byte-identical");
                    let mut v1_dec_ops = OpCounter::new();
                    let from_v1 =
                        decode_part(&v1, part.as_ref(), pid, kind, &mut v1_dec_ops).unwrap();

                    for format in [WireFormat::V2, WireFormat::V3] {
                        let mut compact = PackBuffer::new();
                        let mut ops = OpCounter::new();
                        encode_part_into(
                            &mut compact,
                            &a,
                            part.as_ref(),
                            pid,
                            kind,
                            &WirePolicy::of(format),
                            &mut ops,
                        );
                        assert_eq!(
                            compact.elem_count(),
                            v1.elem_count(),
                            "{format}: elements are format-free"
                        );
                        assert_eq!(
                            ops.get(),
                            v1_ops.get(),
                            "{format}: op accounting is format-free"
                        );
                        assert!(
                            compact.byte_len() < v1.byte_len(),
                            "{} {kind} part {pid}: {format} {} !< v1 {}",
                            part.name(),
                            compact.byte_len(),
                            v1.byte_len()
                        );
                        let mut dec_ops = OpCounter::new();
                        let decoded = decode_part_wire(
                            &compact,
                            part.as_ref(),
                            pid,
                            kind,
                            format,
                            &mut dec_ops,
                        )
                        .unwrap();
                        assert_eq!(decoded, from_v1, "{format}: decoded state is format-free");
                        assert_eq!(
                            dec_ops.get(),
                            v1_dec_ops.get(),
                            "{format}: decode ops are format-free"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn v3_buffers_beat_v2_in_total_bytes() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let mut total = [0usize; 2];
        for (slot, format) in [(0, WireFormat::V2), (1, WireFormat::V3)] {
            for pid in 0..4 {
                let mut buf = PackBuffer::new();
                encode_part_into(
                    &mut buf,
                    &a,
                    &part,
                    pid,
                    CompressKind::Crs,
                    &WirePolicy::of(format),
                    &mut OpCounter::new(),
                );
                total[slot] += buf.byte_len();
            }
        }
        assert!(total[1] < total[0], "v3 {} !< v2 {}", total[1], total[0]);
    }

    #[test]
    fn v3_decoder_accepts_v2_buffers() {
        // Mixed-version negotiation at the ED layer: a v3-configured
        // receiver decodes a v2 sender's stream through the header.
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let mut v2 = PackBuffer::new();
        encode_part_into(
            &mut v2,
            &a,
            &part,
            0,
            CompressKind::Crs,
            &WirePolicy::of(WireFormat::V2),
            &mut OpCounter::new(),
        );
        let as_v3 = decode_part_wire(
            &v2,
            &part,
            0,
            CompressKind::Crs,
            WireFormat::V3,
            &mut OpCounter::new(),
        )
        .unwrap();
        let as_v2 = decode_part_wire(
            &v2,
            &part,
            0,
            CompressKind::Crs,
            WireFormat::V2,
            &mut OpCounter::new(),
        )
        .unwrap();
        assert_eq!(as_v3, as_v2);
    }

    #[test]
    fn v2_decode_rejects_headerless_stream() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let v1 = encode_part(&a, &part, 0, CompressKind::Crs, &mut OpCounter::new());
        let err = decode_part_wire(
            &v1,
            &part,
            0,
            CompressKind::Crs,
            WireFormat::V2,
            &mut OpCounter::new(),
        );
        assert!(
            matches!(
                err,
                Err(SparsedistError::Compress(CompressError::WireHeader { .. }))
            ),
            "a v1 stream read as v2 must fail on the header, got {err:?}"
        );
    }

    #[test]
    fn empty_part_encodes_to_empty_buffer() {
        let a = Dense2D::zeros(9, 4);
        let part = RowBlock::new(9, 4, 4); // part 3 is empty
        let buf = encode_part(&a, &part, 3, CompressKind::Crs, &mut OpCounter::new());
        assert_eq!(buf.elem_count(), 0);
        let got = decode_part(&buf, &part, 3, CompressKind::Crs, &mut OpCounter::new()).unwrap();
        assert_eq!(got.nnz(), 0);
        assert_eq!(got.shape(), (0, 4));
    }
}
