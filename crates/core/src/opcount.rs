//! Element-operation counting.
//!
//! The paper's analysis charges `T_Operation` per elementary action on an
//! array element (a memory access, an add, a subtract, …). Rather than
//! charging the *closed forms* to the simulated machine — which would make
//! the reproduced tables a tautology — the hot loops in [`crate::compress`],
//! [`crate::encode`] and the scheme drivers increment an [`OpCounter`] as
//! they execute, and the driver charges whatever was counted. Unit tests in
//! [`crate::cost`] then verify that the counted totals match the paper's
//! closed forms, which is a real check on both the code and the formulas.

/// A running count of element operations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCounter {
    ops: u64,
}

impl OpCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        OpCounter::default()
    }

    /// Count `n` more operations.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.ops += n;
    }

    /// Count a single operation.
    #[inline]
    pub fn tick(&mut self) {
        self.ops += 1;
    }

    /// The count so far.
    pub fn get(&self) -> u64 {
        self.ops
    }

    /// Return the count and reset to zero — the pattern scheme drivers use
    /// between phases (`env.charge_ops(counter.take())`).
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut c = OpCounter::new();
        c.add(5);
        c.tick();
        c.add(2);
        assert_eq!(c.get(), 8);
    }

    #[test]
    fn take_resets() {
        let mut c = OpCounter::new();
        c.add(3);
        assert_eq!(c.take(), 3);
        assert_eq!(c.get(), 0);
        c.tick();
        assert_eq!(c.take(), 1);
    }
}
