//! Load-balanced row partition.
//!
//! The paper's related work (Ziantz, Ozturan & Szymanski, PARLE 1994) uses
//! "the block data distribution scheme with a bin-packing algorithm" to
//! even out per-processor nonzero counts. Ceil-block row bands ignore the
//! nonzero structure entirely, so a skewed array gives one processor most
//! of the work — the paper's own `s'` (max local ratio) term. This module
//! provides two structure-aware row partitions:
//!
//! * [`BalancedRows::contiguous`] — contiguous row bands with *variable*
//!   band heights chosen so each band holds ≈ `nnz/p` nonzeros (keeps the
//!   SFC scheme's "no packing" property);
//! * [`BalancedRows::bin_packed`] — greedy longest-processing-time bin
//!   packing of individual rows (best balance, rows no longer contiguous).
//!
//! Both implement [`Partition`], so every scheme, the redistribution and
//! the gather paths work on them unchanged.

use super::Partition;
use crate::dense::Dense2D;

/// A row partition driven by the array's nonzero structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalancedRows {
    rows: usize,
    cols: usize,
    p: usize,
    contiguous: bool,
    /// row → owning part.
    owner: Vec<usize>,
    /// row → local row index within its part.
    local_of: Vec<usize>,
    /// part → global rows it owns, in local order.
    rows_of: Vec<Vec<usize>>,
}

impl BalancedRows {
    fn from_assignment(a: &Dense2D, p: usize, owner: Vec<usize>, contiguous: bool) -> Self {
        let mut rows_of: Vec<Vec<usize>> = vec![Vec::new(); p];
        let mut local_of = vec![0usize; a.rows()];
        for (r, &part) in owner.iter().enumerate() {
            local_of[r] = rows_of[part].len();
            rows_of[part].push(r);
        }
        BalancedRows {
            rows: a.rows(),
            cols: a.cols(),
            p,
            contiguous,
            owner,
            local_of,
            rows_of,
        }
    }

    /// Contiguous variable-height row bands with ≈ equal nonzero counts.
    ///
    /// Sweeps the rows once, cutting a new band whenever the running count
    /// passes the ideal share (and leaving enough rows for the remaining
    /// processors).
    ///
    /// # Panics
    /// Panics if `p` is zero or exceeds the row count... `p` may exceed the
    /// row count; trailing parts are then empty, like the ceil-block case.
    pub fn contiguous(a: &Dense2D, p: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        let row_nnz: Vec<usize> = (0..a.rows())
            .map(|r| a.row(r).iter().filter(|&&v| v != 0.0).count())
            .collect();
        let total: usize = row_nnz.iter().sum();
        let mut owner = vec![0usize; a.rows()];
        let mut part = 0usize;
        let mut acc = 0usize;
        let mut assigned: usize = 0; // nonzeros already closed off
        for r in 0..a.rows() {
            // Rows remaining must not outnumber parts remaining... the
            // reverse: ensure every remaining part can still be non-empty
            // only when rows suffice; otherwise later parts stay empty.
            let parts_left = p - part;
            let ideal = (total - assigned).div_ceil(parts_left.max(1));
            if part + 1 < p && acc >= ideal && acc > 0 {
                assigned += acc;
                acc = 0;
                part += 1;
            }
            owner[r] = part;
            acc += row_nnz[r];
        }
        Self::from_assignment(a, p, owner, true)
    }

    /// Greedy bin packing: rows sorted by decreasing nonzero count, each
    /// placed on the currently lightest processor.
    ///
    /// # Panics
    /// Panics if `p` is zero.
    pub fn bin_packed(a: &Dense2D, p: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        let mut rows: Vec<(usize, usize)> = (0..a.rows())
            .map(|r| (r, a.row(r).iter().filter(|&&v| v != 0.0).count()))
            .collect();
        rows.sort_by_key(|&(r, n)| (std::cmp::Reverse(n), r));
        let mut load = vec![0usize; p];
        let mut owner = vec![0usize; a.rows()];
        for (r, n) in rows {
            // lint: allow(E002) — `assert!(p > 0)` at entry makes 0..p non-empty
            let lightest = (0..p).min_by_key(|&k| (load[k], k)).expect("p > 0");
            owner[r] = lightest;
            load[lightest] += n;
        }
        Self::from_assignment(a, p, owner, false)
    }

    /// Per-part nonzero load this partition was built for (recomputed).
    pub fn loads(&self, a: &Dense2D) -> Vec<usize> {
        self.nnz_profile(a).per_part
    }
}

impl Partition for BalancedRows {
    fn name(&self) -> &'static str {
        if self.contiguous {
            "balanced-rows"
        } else {
            "bin-packed-rows"
        }
    }

    fn nparts(&self) -> usize {
        self.p
    }

    fn global_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn local_shape(&self, part: usize) -> (usize, usize) {
        assert!(part < self.p, "part {part} out of {}", self.p);
        (self.rows_of[part].len(), self.cols)
    }

    fn owner_of(&self, r: usize, _c: usize) -> usize {
        self.owner[r]
    }

    fn to_local(&self, r: usize, c: usize) -> (usize, usize, usize) {
        (self.owner[r], self.local_of[r], c)
    }

    fn to_global(&self, part: usize, lr: usize, lc: usize) -> (usize, usize) {
        (self.rows_of[part][lr], lc)
    }

    fn splits_rows(&self) -> bool {
        self.p > 1
    }

    fn splits_cols(&self) -> bool {
        false
    }

    fn row_to_local(&self, _part: usize, gr: usize) -> usize {
        self.local_of[gr]
    }

    fn col_to_local(&self, _part: usize, gc: usize) -> usize {
        gc
    }

    fn row_contiguous(&self) -> bool {
        self.contiguous
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::lawtests::check_laws;
    use crate::partition::RowBlock;

    /// A strongly row-skewed array: row r holds r nonzeros (mod cols).
    fn skewed(rows: usize, cols: usize) -> Dense2D {
        let mut a = Dense2D::zeros(rows, cols);
        for r in 0..rows {
            for k in 0..(r % (cols + 1)) {
                a.set(r, (k * 7 + r) % cols, 1.0 + r as f64);
            }
        }
        a
    }

    #[test]
    fn laws_hold_for_both_variants() {
        let a = skewed(17, 9);
        check_laws(&BalancedRows::contiguous(&a, 4));
        check_laws(&BalancedRows::bin_packed(&a, 4));
        check_laws(&BalancedRows::contiguous(&a, 1));
        check_laws(&BalancedRows::bin_packed(&a, 23)); // more parts than rows
    }

    #[test]
    fn balances_better_than_ceil_blocks() {
        let a = skewed(64, 32);
        let imbalance = |per: &[usize]| -> f64 {
            let max = *per.iter().max().expect("non-empty") as f64;
            let avg = per.iter().sum::<usize>() as f64 / per.len() as f64;
            max / avg
        };
        let block = RowBlock::new(64, 32, 4).nnz_profile(&a).per_part;
        let contiguous = BalancedRows::contiguous(&a, 4).nnz_profile(&a).per_part;
        let packed = BalancedRows::bin_packed(&a, 4).nnz_profile(&a).per_part;
        assert!(imbalance(&contiguous) < imbalance(&block));
        assert!(imbalance(&packed) <= imbalance(&contiguous) + 1e-12);
        // Greedy LPT should be within a few % of perfect on this input.
        assert!(imbalance(&packed) < 1.05, "{packed:?}");
    }

    #[test]
    fn contiguous_variant_keeps_bands_contiguous() {
        let a = skewed(40, 16);
        let part = BalancedRows::contiguous(&a, 4);
        assert!(part.row_contiguous());
        // Owners must be non-decreasing down the rows.
        let owners: Vec<usize> = (0..40).map(|r| part.owner_of(r, 0)).collect();
        assert!(owners.windows(2).all(|w| w[0] <= w[1]), "{owners:?}");
    }

    #[test]
    fn bin_packed_is_not_contiguous_but_balanced() {
        let a = skewed(40, 16);
        let part = BalancedRows::bin_packed(&a, 4);
        assert!(!part.row_contiguous());
        let loads = part.loads(&a);
        let max = *loads.iter().max().expect("non-empty");
        let min = *loads.iter().min().expect("non-empty");
        assert!(max - min <= 40, "loads {loads:?}"); // within one max-row
    }

    #[test]
    fn schemes_run_on_balanced_partitions() {
        use crate::compress::CompressKind;
        use crate::schemes::{run_scheme, SchemeKind};
        use sparsedist_multicomputer::{MachineModel, Multicomputer};
        let a = skewed(24, 12);
        let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
        for part in [
            BalancedRows::contiguous(&a, 4),
            BalancedRows::bin_packed(&a, 4),
        ] {
            for scheme in SchemeKind::ALL {
                for kind in [CompressKind::Crs, CompressKind::Ccs] {
                    let run = run_scheme(scheme, &machine, &a, &part, kind).unwrap();
                    assert_eq!(run.reassemble(&part), a, "{scheme} {kind} {}", part.name());
                }
            }
        }
    }

    #[test]
    fn balanced_partition_reduces_sfc_compression_time() {
        use crate::compress::CompressKind;
        use crate::schemes::{run_scheme, SchemeKind};
        use sparsedist_multicomputer::{MachineModel, Multicomputer};
        // SFC's T_Compression is the slowest receiver: balancing nnz
        // directly shrinks it.
        let a = skewed(64, 64);
        let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
        let block = run_scheme(
            SchemeKind::Sfc,
            &machine,
            &a,
            &RowBlock::new(64, 64, 4),
            CompressKind::Crs,
        )
        .unwrap();
        let packed = run_scheme(
            SchemeKind::Sfc,
            &machine,
            &a,
            &BalancedRows::bin_packed(&a, 4),
            CompressKind::Crs,
        )
        .unwrap();
        assert!(
            packed.t_compression() < block.t_compression(),
            "packed {} !< block {}",
            packed.t_compression(),
            block.t_compression()
        );
    }

    #[test]
    fn empty_array_all_zero_loads() {
        let a = Dense2D::zeros(10, 10);
        let part = BalancedRows::contiguous(&a, 4);
        check_laws(&part);
        assert_eq!(part.loads(&a), vec![0, 0, 0, 0]);
    }
}
