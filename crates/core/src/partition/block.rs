//! The paper's three block partition methods: row, column and 2-D mesh.

use super::{block_extent, block_start, ceil_div, Partition};

/// Row partition `(Block, *)`: processor `i` owns the contiguous row band
/// `[i·⌈m/p⌉, (i+1)·⌈m/p⌉)` and every column (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowBlock {
    rows: usize,
    cols: usize,
    p: usize,
}

impl RowBlock {
    /// Partition an `rows × cols` array over `p` processors.
    ///
    /// # Panics
    /// Panics if any argument is zero.
    pub fn new(rows: usize, cols: usize, p: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        assert!(p > 0, "need at least one processor");
        RowBlock { rows, cols, p }
    }

    fn band(&self) -> usize {
        ceil_div(self.rows, self.p)
    }
}

impl Partition for RowBlock {
    fn name(&self) -> &'static str {
        "row"
    }

    fn nparts(&self) -> usize {
        self.p
    }

    fn global_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn local_shape(&self, part: usize) -> (usize, usize) {
        assert!(part < self.p, "part {part} out of {}", self.p);
        (block_extent(self.rows, self.p, part), self.cols)
    }

    fn owner_of(&self, r: usize, _c: usize) -> usize {
        assert!(r < self.rows);
        r / self.band()
    }

    fn to_local(&self, r: usize, c: usize) -> (usize, usize, usize) {
        let part = self.owner_of(r, c);
        (part, r - block_start(self.rows, self.p, part), c)
    }

    fn to_global(&self, part: usize, lr: usize, lc: usize) -> (usize, usize) {
        (block_start(self.rows, self.p, part) + lr, lc)
    }

    fn splits_rows(&self) -> bool {
        self.p > 1
    }

    fn splits_cols(&self) -> bool {
        false
    }

    fn row_to_local(&self, part: usize, gr: usize) -> usize {
        gr - block_start(self.rows, self.p, part)
    }

    fn col_to_local(&self, _part: usize, gc: usize) -> usize {
        gc
    }

    fn row_contiguous(&self) -> bool {
        true
    }
}

/// Column partition `(*, Block)`: processor `i` owns the contiguous column
/// band `[i·⌈n/p⌉, (i+1)·⌈n/p⌉)` and every row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColBlock {
    rows: usize,
    cols: usize,
    p: usize,
}

impl ColBlock {
    /// Partition an `rows × cols` array over `p` processors.
    ///
    /// # Panics
    /// Panics if any argument is zero.
    pub fn new(rows: usize, cols: usize, p: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        assert!(p > 0, "need at least one processor");
        ColBlock { rows, cols, p }
    }

    fn band(&self) -> usize {
        ceil_div(self.cols, self.p)
    }
}

impl Partition for ColBlock {
    fn name(&self) -> &'static str {
        "column"
    }

    fn nparts(&self) -> usize {
        self.p
    }

    fn global_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn local_shape(&self, part: usize) -> (usize, usize) {
        assert!(part < self.p, "part {part} out of {}", self.p);
        (self.rows, block_extent(self.cols, self.p, part))
    }

    fn owner_of(&self, _r: usize, c: usize) -> usize {
        assert!(c < self.cols);
        c / self.band()
    }

    fn to_local(&self, r: usize, c: usize) -> (usize, usize, usize) {
        let part = self.owner_of(r, c);
        (part, r, c - block_start(self.cols, self.p, part))
    }

    fn to_global(&self, part: usize, lr: usize, lc: usize) -> (usize, usize) {
        (lr, block_start(self.cols, self.p, part) + lc)
    }

    fn splits_rows(&self) -> bool {
        false
    }

    fn splits_cols(&self) -> bool {
        self.p > 1
    }

    fn row_to_local(&self, _part: usize, gr: usize) -> usize {
        gr
    }

    fn col_to_local(&self, part: usize, gc: usize) -> usize {
        gc - block_start(self.cols, self.p, part)
    }
}

/// 2-D mesh partition `(Block, Block)`: a `pr × pc` processor grid, with
/// processor `P_{i,j}` (rank `i·pc + j`) owning row band `i` and column
/// band `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh2D {
    rows: usize,
    cols: usize,
    pr: usize,
    pc: usize,
}

impl Mesh2D {
    /// Partition an `rows × cols` array over a `pr × pc` grid.
    ///
    /// # Panics
    /// Panics if any argument is zero.
    pub fn new(rows: usize, cols: usize, pr: usize, pc: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        assert!(pr > 0 && pc > 0, "grid dimensions must be positive");
        Mesh2D { rows, cols, pr, pc }
    }

    /// The processor grid shape `(pr, pc)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.pr, self.pc)
    }

    /// Grid coordinates `(i, j)` of `part`.
    pub fn grid_coords(&self, part: usize) -> (usize, usize) {
        assert!(part < self.pr * self.pc);
        (part / self.pc, part % self.pc)
    }
}

impl Partition for Mesh2D {
    fn name(&self) -> &'static str {
        "mesh"
    }

    fn nparts(&self) -> usize {
        self.pr * self.pc
    }

    fn global_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn local_shape(&self, part: usize) -> (usize, usize) {
        let (i, j) = self.grid_coords(part);
        (
            block_extent(self.rows, self.pr, i),
            block_extent(self.cols, self.pc, j),
        )
    }

    fn owner_of(&self, r: usize, c: usize) -> usize {
        assert!(r < self.rows && c < self.cols);
        let i = r / ceil_div(self.rows, self.pr);
        let j = c / ceil_div(self.cols, self.pc);
        i * self.pc + j
    }

    fn to_local(&self, r: usize, c: usize) -> (usize, usize, usize) {
        let part = self.owner_of(r, c);
        let (i, j) = self.grid_coords(part);
        (
            part,
            r - block_start(self.rows, self.pr, i),
            c - block_start(self.cols, self.pc, j),
        )
    }

    fn to_global(&self, part: usize, lr: usize, lc: usize) -> (usize, usize) {
        let (i, j) = self.grid_coords(part);
        (
            block_start(self.rows, self.pr, i) + lr,
            block_start(self.cols, self.pc, j) + lc,
        )
    }

    fn splits_rows(&self) -> bool {
        self.pr > 1
    }

    fn splits_cols(&self) -> bool {
        self.pc > 1
    }

    fn row_to_local(&self, part: usize, gr: usize) -> usize {
        let (i, _) = self.grid_coords(part);
        gr - block_start(self.rows, self.pr, i)
    }

    fn col_to_local(&self, part: usize, gc: usize) -> usize {
        let (_, j) = self.grid_coords(part);
        gc - block_start(self.cols, self.pc, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{paper_array_a, Dense2D};
    use crate::partition::lawtests::check_laws;

    #[test]
    fn row_block_laws() {
        for (rows, cols, p) in [
            (10, 8, 4),
            (9, 4, 4),
            (16, 16, 4),
            (7, 3, 7),
            (5, 5, 1),
            (3, 3, 5),
        ] {
            check_laws(&RowBlock::new(rows, cols, p));
        }
    }

    #[test]
    fn col_block_laws() {
        for (rows, cols, p) in [(10, 8, 4), (4, 9, 4), (16, 16, 8), (3, 7, 7), (5, 5, 1)] {
            check_laws(&ColBlock::new(rows, cols, p));
        }
    }

    #[test]
    fn mesh_laws() {
        for (rows, cols, pr, pc) in [
            (10, 8, 2, 2),
            (12, 12, 3, 4),
            (9, 7, 4, 2),
            (6, 6, 1, 3),
            (5, 5, 5, 5),
        ] {
            check_laws(&Mesh2D::new(rows, cols, pr, pc));
        }
    }

    #[test]
    fn paper_row_partition_figure2() {
        // Figure 2: the 10×8 array over 4 processors splits into row bands
        // of 3,3,3,1 rows; P1 owns global rows 3..6.
        let part = RowBlock::new(10, 8, 4);
        assert_eq!(part.local_shape(0), (3, 8));
        assert_eq!(part.local_shape(3), (1, 8));
        assert_eq!(part.owner_of(3, 0), 1);
        assert_eq!(part.owner_of(9, 7), 3);
        assert_eq!(part.to_global(1, 0, 0), (3, 0));
    }

    #[test]
    fn paper_row_partition_nnz_per_processor() {
        // From Figure 3: P0 receives 4 nonzeros (1,2,3,4), P1 three
        // (5,6,7), P2 six (8..13), P3 three (14,15,16).
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let prof = part.nnz_profile(&a);
        assert_eq!(prof.per_part, vec![4, 3, 6, 3]);
        // s' is the max local ratio: P2 has 6/(3*8) = 0.25... but P3 has
        // 3/(1*8) = 0.375, the true max.
        assert!((prof.s_max - 0.375).abs() < 1e-12);
    }

    #[test]
    fn extract_dense_row_band() {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let p1 = part.extract_dense(&a, 1);
        assert_eq!(p1.rows(), 3);
        assert_eq!(p1.get(0, 5), 5.0); // global (3,5)
        assert_eq!(p1.get(1, 3), 6.0); // global (4,3)
        assert_eq!(p1.get(2, 4), 7.0); // global (5,4)
        assert_eq!(p1.nnz(), 3);
    }

    #[test]
    fn mesh_grid_coords_row_major() {
        let m = Mesh2D::new(8, 8, 2, 4);
        assert_eq!(m.nparts(), 8);
        assert_eq!(m.grid_coords(0), (0, 0));
        assert_eq!(m.grid_coords(3), (0, 3));
        assert_eq!(m.grid_coords(4), (1, 0));
        assert_eq!(m.grid(), (2, 4));
    }

    #[test]
    fn mesh_extract_block() {
        let a = Dense2D::from_rows(&[
            &[1., 2., 3., 4.],
            &[5., 6., 7., 8.],
            &[9., 10., 11., 12.],
            &[13., 14., 15., 16.],
        ]);
        let m = Mesh2D::new(4, 4, 2, 2);
        let p3 = m.extract_dense(&a, 3); // bottom-right block
        assert_eq!(p3, Dense2D::from_rows(&[&[11., 12.], &[15., 16.]]));
    }

    #[test]
    fn splits_flags() {
        assert!(RowBlock::new(8, 8, 4).splits_rows());
        assert!(!RowBlock::new(8, 8, 4).splits_cols());
        assert!(!RowBlock::new(8, 8, 1).splits_rows()); // single part: nothing split
        assert!(ColBlock::new(8, 8, 4).splits_cols());
        assert!(!ColBlock::new(8, 8, 4).splits_rows());
        let m = Mesh2D::new(8, 8, 2, 2);
        assert!(m.splits_rows() && m.splits_cols());
        assert!(!Mesh2D::new(8, 8, 1, 4).splits_rows());
    }

    #[test]
    fn row_contiguity() {
        assert!(RowBlock::new(8, 8, 2).row_contiguous());
        assert!(!ColBlock::new(8, 8, 2).row_contiguous());
        assert!(!Mesh2D::new(8, 8, 2, 2).row_contiguous());
    }

    #[test]
    fn ragged_partition_has_empty_trailing_part() {
        // 9 rows over 4 procs with ⌈9/4⌉=3: sizes 3,3,3,0.
        let part = RowBlock::new(9, 4, 4);
        assert_eq!(part.local_shape(3), (0, 4));
        let a = Dense2D::zeros(9, 4);
        let e = part.extract_dense(&a, 3);
        assert!(e.is_empty());
    }

    #[test]
    fn column_partition_paper_bands() {
        // 8 columns over 4 processors: bands of 2.
        let part = ColBlock::new(10, 8, 4);
        assert_eq!(part.local_shape(0), (10, 2));
        assert_eq!(part.owner_of(0, 7), 3);
        assert_eq!(part.col_to_local(3, 7), 1);
    }
}
