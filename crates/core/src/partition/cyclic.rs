//! Cyclic and block-cyclic partition methods.
//!
//! The paper's §1 notes that "many partition methods as block or cyclic
//! partition methods can be used for these three schemes"; its related work
//! (the BRS scheme of Zapata et al.) scatters *blocks* cyclically. These
//! implementations extend the scheme drivers beyond the three block methods
//! the paper measures. Index conversion for cyclic methods is not a single
//! subtraction (the paper's Cases only cover blocks), so the drivers fall
//! back to the general [`Partition::row_to_local`] / `col_to_local` mapping
//! at the same 1-op-per-index charge.

use super::{ceil_div, Partition};

/// Row-cyclic partition: global row `r` belongs to processor `r mod p`,
/// local row `r div p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowCyclic {
    rows: usize,
    cols: usize,
    p: usize,
}

impl RowCyclic {
    /// Partition an `rows × cols` array cyclically by rows over `p`
    /// processors.
    ///
    /// # Panics
    /// Panics if any argument is zero.
    pub fn new(rows: usize, cols: usize, p: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        assert!(p > 0, "need at least one processor");
        RowCyclic { rows, cols, p }
    }
}

impl Partition for RowCyclic {
    fn name(&self) -> &'static str {
        "row-cyclic"
    }

    fn nparts(&self) -> usize {
        self.p
    }

    fn global_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn local_shape(&self, part: usize) -> (usize, usize) {
        assert!(part < self.p);
        // Rows r with r % p == part: count = ceil((rows - part) / p).
        let nrows = if part < self.rows {
            ceil_div(self.rows - part, self.p)
        } else {
            0
        };
        (nrows, self.cols)
    }

    fn owner_of(&self, r: usize, _c: usize) -> usize {
        assert!(r < self.rows);
        r % self.p
    }

    fn to_local(&self, r: usize, c: usize) -> (usize, usize, usize) {
        (r % self.p, r / self.p, c)
    }

    fn to_global(&self, part: usize, lr: usize, lc: usize) -> (usize, usize) {
        (lr * self.p + part, lc)
    }

    fn splits_rows(&self) -> bool {
        self.p > 1
    }

    fn splits_cols(&self) -> bool {
        false
    }

    fn row_to_local(&self, _part: usize, gr: usize) -> usize {
        gr / self.p
    }

    fn col_to_local(&self, _part: usize, gc: usize) -> usize {
        gc
    }
}

/// Column-cyclic partition: global column `c` belongs to processor
/// `c mod p`, local column `c div p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColCyclic {
    rows: usize,
    cols: usize,
    p: usize,
}

impl ColCyclic {
    /// Partition an `rows × cols` array cyclically by columns over `p`
    /// processors.
    ///
    /// # Panics
    /// Panics if any argument is zero.
    pub fn new(rows: usize, cols: usize, p: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        assert!(p > 0, "need at least one processor");
        ColCyclic { rows, cols, p }
    }
}

impl Partition for ColCyclic {
    fn name(&self) -> &'static str {
        "column-cyclic"
    }

    fn nparts(&self) -> usize {
        self.p
    }

    fn global_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn local_shape(&self, part: usize) -> (usize, usize) {
        assert!(part < self.p);
        let ncols = if part < self.cols {
            ceil_div(self.cols - part, self.p)
        } else {
            0
        };
        (self.rows, ncols)
    }

    fn owner_of(&self, _r: usize, c: usize) -> usize {
        assert!(c < self.cols);
        c % self.p
    }

    fn to_local(&self, r: usize, c: usize) -> (usize, usize, usize) {
        (c % self.p, r, c / self.p)
    }

    fn to_global(&self, part: usize, lr: usize, lc: usize) -> (usize, usize) {
        (lr, lc * self.p + part)
    }

    fn splits_rows(&self) -> bool {
        false
    }

    fn splits_cols(&self) -> bool {
        self.p > 1
    }

    fn row_to_local(&self, _part: usize, gr: usize) -> usize {
        gr
    }

    fn col_to_local(&self, _part: usize, gc: usize) -> usize {
        gc / self.p
    }
}

/// 2-D block-cyclic partition over a `pr × pc` grid with `br × bc` blocks —
/// the distribution underlying the Block Row Scatter scheme of the paper's
/// related work (and ScaLAPACK).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCyclic {
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    pr: usize,
    pc: usize,
}

impl BlockCyclic {
    /// Partition an `rows × cols` array into `br × bc` blocks dealt
    /// round-robin over a `pr × pc` processor grid.
    ///
    /// # Panics
    /// Panics if any argument is zero.
    pub fn new(rows: usize, cols: usize, br: usize, bc: usize, pr: usize, pc: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        assert!(br > 0 && bc > 0, "block dimensions must be positive");
        assert!(pr > 0 && pc > 0, "grid dimensions must be positive");
        BlockCyclic {
            rows,
            cols,
            br,
            bc,
            pr,
            pc,
        }
    }

    /// Local extent along one dimension: how many of `len` indices land on
    /// grid coordinate `g` when dealt in blocks of `b` over `np` grid rows.
    fn local_extent(len: usize, b: usize, np: usize, g: usize) -> usize {
        let stride = b * np;
        let full_cycles = len / stride;
        let rem = len % stride;
        let extra = rem.saturating_sub(g * b).min(b);
        full_cycles * b + extra
    }
}

impl Partition for BlockCyclic {
    fn name(&self) -> &'static str {
        "block-cyclic"
    }

    fn nparts(&self) -> usize {
        self.pr * self.pc
    }

    fn global_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn local_shape(&self, part: usize) -> (usize, usize) {
        assert!(part < self.nparts());
        let (i, j) = (part / self.pc, part % self.pc);
        (
            Self::local_extent(self.rows, self.br, self.pr, i),
            Self::local_extent(self.cols, self.bc, self.pc, j),
        )
    }

    fn owner_of(&self, r: usize, c: usize) -> usize {
        assert!(r < self.rows && c < self.cols);
        let i = (r / self.br) % self.pr;
        let j = (c / self.bc) % self.pc;
        i * self.pc + j
    }

    fn to_local(&self, r: usize, c: usize) -> (usize, usize, usize) {
        let part = self.owner_of(r, c);
        (part, self.row_to_local(part, r), self.col_to_local(part, c))
    }

    fn to_global(&self, part: usize, lr: usize, lc: usize) -> (usize, usize) {
        let (i, j) = (part / self.pc, part % self.pc);
        let r = (lr / self.br) * self.br * self.pr + i * self.br + lr % self.br;
        let c = (lc / self.bc) * self.bc * self.pc + j * self.bc + lc % self.bc;
        (r, c)
    }

    fn splits_rows(&self) -> bool {
        self.pr > 1
    }

    fn splits_cols(&self) -> bool {
        self.pc > 1
    }

    fn row_to_local(&self, _part: usize, gr: usize) -> usize {
        (gr / (self.br * self.pr)) * self.br + gr % self.br
    }

    fn col_to_local(&self, _part: usize, gc: usize) -> usize {
        (gc / (self.bc * self.pc)) * self.bc + gc % self.bc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::paper_array_a;
    use crate::partition::lawtests::check_laws;

    #[test]
    fn row_cyclic_laws() {
        for (rows, cols, p) in [(10, 8, 4), (9, 4, 4), (7, 3, 7), (5, 5, 1), (3, 3, 5)] {
            check_laws(&RowCyclic::new(rows, cols, p));
        }
    }

    #[test]
    fn col_cyclic_laws() {
        for (rows, cols, p) in [(10, 8, 4), (4, 9, 4), (3, 7, 7), (5, 5, 1), (3, 3, 5)] {
            check_laws(&ColCyclic::new(rows, cols, p));
        }
    }

    #[test]
    fn block_cyclic_laws() {
        for (rows, cols, br, bc, pr, pc) in [
            (10, 8, 2, 2, 2, 2),
            (12, 12, 3, 2, 2, 3),
            (9, 7, 2, 3, 4, 2),
            (6, 6, 1, 1, 2, 2), // pure cyclic-cyclic
            (8, 8, 8, 8, 2, 2), // blocks bigger than one cycle row
            (5, 5, 2, 2, 1, 1), // single processor
        ] {
            check_laws(&BlockCyclic::new(rows, cols, br, bc, pr, pc));
        }
    }

    #[test]
    fn row_cyclic_deals_rows_round_robin() {
        let p = RowCyclic::new(10, 8, 4);
        assert_eq!(p.owner_of(0, 0), 0);
        assert_eq!(p.owner_of(5, 0), 1);
        assert_eq!(p.owner_of(7, 0), 3);
        // Processor 0 gets rows {0,4,8}: 3 rows; processor 3 gets {3,7}: 2.
        assert_eq!(p.local_shape(0), (3, 8));
        assert_eq!(p.local_shape(3), (2, 8));
    }

    #[test]
    fn row_cyclic_balances_paper_array() {
        // Cyclic row distribution of the paper's array balances nonzeros
        // better than the block partition (4,3,6,3 → block vs cyclic).
        let a = paper_array_a();
        let prof = RowCyclic::new(10, 8, 4).nnz_profile(&a);
        assert_eq!(prof.per_part.iter().sum::<usize>(), 16);
        // P0 owns rows {0,4,8} → 1+1+3 = 5; P1 rows {1,5,9} → 1+1+3 = 5;
        // P2 rows {2,6} → 2+1 = 3; P3 rows {3,7} → 1+2 = 3.
        assert_eq!(prof.per_part, vec![5, 5, 3, 3]);
    }

    #[test]
    fn block_cyclic_degenerates_to_mesh_when_blocks_cover() {
        use crate::partition::Mesh2D;
        // With block size = band size and one cycle, block-cyclic == mesh.
        let bcyc = BlockCyclic::new(8, 8, 4, 4, 2, 2);
        let mesh = Mesh2D::new(8, 8, 2, 2);
        for r in 0..8 {
            for c in 0..8 {
                assert_eq!(bcyc.owner_of(r, c), mesh.owner_of(r, c));
                assert_eq!(bcyc.to_local(r, c), mesh.to_local(r, c));
            }
        }
    }

    #[test]
    fn block_cyclic_local_extent_examples() {
        // 10 indices, blocks of 2, 2 grid rows: deal 2-2/2-2/2 →
        // grid row 0 gets blocks {0,2,4} = 6, grid row 1 gets {1,3} = 4.
        assert_eq!(BlockCyclic::local_extent(10, 2, 2, 0), 6);
        assert_eq!(BlockCyclic::local_extent(10, 2, 2, 1), 4);
        // Remainder smaller than a block.
        assert_eq!(BlockCyclic::local_extent(5, 2, 2, 0), 3);
        assert_eq!(BlockCyclic::local_extent(5, 2, 2, 1), 2);
    }
}
