//! Data partition methods (phase 1 of every distribution scheme).
//!
//! The paper evaluates three partition methods — **row** `(Block, *)`,
//! **column** `(*, Block)` and **2-D mesh** `(Block, Block)` in Fortran 90
//! notation — and notes (§1) that the schemes work with any partition,
//! block or cyclic. This module provides the three block methods the paper
//! measures plus cyclic and block-cyclic extensions (the latter matches the
//! Block Row Scatter distribution of the paper's related work), and the
//! structure-aware [`BalancedRows`] partitions after Ziantz et al.'s
//! bin-packing optimisation.
//!
//! Block sizes follow the paper exactly: a row partition of an `m × n`
//! array over `p` processors gives each processor a `⌈m/p⌉ × n` local
//! array, with the final processor(s) taking whatever remains (possibly
//! fewer rows, possibly none).

mod balanced;
mod block;
mod cyclic;

pub use balanced::BalancedRows;
pub use block::{ColBlock, Mesh2D, RowBlock};
pub use cyclic::{BlockCyclic, ColCyclic, RowCyclic};

use crate::dense::Dense2D;

/// A mapping of a global `rows × cols` array onto `p` local arrays.
///
/// Implementations must be pure functions of their parameters: the same
/// `(part, lr, lc)` always maps to the same global cell, every global cell
/// is owned by exactly one part, and `to_local`/`to_global` are inverse to
/// each other. The property tests in this module's submodules check those
/// laws for every implementation.
pub trait Partition: Sync + std::fmt::Debug {
    /// Human-readable method name (e.g. `"row"`).
    fn name(&self) -> &'static str;

    /// Number of parts (= processors).
    fn nparts(&self) -> usize;

    /// Global array shape `(rows, cols)`.
    fn global_shape(&self) -> (usize, usize);

    /// Local array shape of `part`.
    fn local_shape(&self, part: usize) -> (usize, usize);

    /// Which part owns global cell `(r, c)`.
    fn owner_of(&self, r: usize, c: usize) -> usize;

    /// Map a global cell to `(part, local_row, local_col)`.
    fn to_local(&self, r: usize, c: usize) -> (usize, usize, usize);

    /// Map a local cell of `part` back to global coordinates.
    fn to_global(&self, part: usize, lr: usize, lc: usize) -> (usize, usize);

    /// True if different parts own different global rows.
    ///
    /// Determines whether *row* indices travelling in a CCS stream need
    /// conversion at the receiver (the paper's Cases 3.2.2/3.3.2 for the
    /// row partition, 3.2.3/3.3.3 for the mesh).
    fn splits_rows(&self) -> bool;

    /// True if different parts own different global columns (the CRS
    /// analogue of [`Partition::splits_rows`]).
    fn splits_cols(&self) -> bool;

    /// Convert a global row index to `part`'s local row index.
    ///
    /// Only meaningful for rows actually owned by `part`.
    fn row_to_local(&self, part: usize, gr: usize) -> usize;

    /// Convert a global column index to `part`'s local column index.
    fn col_to_local(&self, part: usize, gc: usize) -> usize;

    /// True if every part's cells form one contiguous row-major run of the
    /// global array (only the row block partition). The SFC scheme sends
    /// such parts "without packing into buffers" (§4.1.1), i.e. at zero
    /// per-element CPU cost.
    fn row_contiguous(&self) -> bool {
        false
    }

    /// Copy `part`'s local array out of the global array.
    fn extract_dense(&self, global: &Dense2D, part: usize) -> Dense2D {
        let (gr, gc) = self.global_shape();
        assert_eq!(
            (global.rows(), global.cols()),
            (gr, gc),
            "partition built for {gr}x{gc} but array is {}x{}",
            global.rows(),
            global.cols()
        );
        let (lr, lc) = self.local_shape(part);
        let mut out = Dense2D::zeros(lr, lc);
        for r in 0..lr {
            for c in 0..lc {
                let (r0, c0) = self.to_global(part, r, c);
                out.set(r, c, global.get(r0, c0));
            }
        }
        out
    }

    /// Number of nonzero elements each part owns, and the paper's `s'`
    /// (the largest local sparse ratio, over non-empty parts).
    fn nnz_profile(&self, global: &Dense2D) -> NnzProfile {
        let mut per_part = vec![0usize; self.nparts()];
        for (r, c, _) in global.iter_nonzero() {
            per_part[self.owner_of(r, c)] += 1;
        }
        let mut s_max = 0.0f64;
        for (part, &nnz) in per_part.iter().enumerate() {
            let (lr, lc) = self.local_shape(part);
            if lr * lc > 0 {
                s_max = s_max.max(nnz as f64 / (lr * lc) as f64);
            }
        }
        NnzProfile { per_part, s_max }
    }
}

/// Per-part nonzero counts (see [`Partition::nnz_profile`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NnzProfile {
    /// Nonzeros owned by each part.
    pub per_part: Vec<usize>,
    /// The paper's `s'`: the largest local sparse ratio.
    pub s_max: f64,
}

/// Ceiling division, the paper's `⌈a/b⌉`.
pub(crate) fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Shared helper for ceil-block splits along one dimension: the extent of
/// block `i` when `len` is cut into `p` blocks of size `⌈len/p⌉`.
pub(crate) fn block_extent(len: usize, p: usize, i: usize) -> usize {
    let b = ceil_div(len, p);
    (len.saturating_sub(i * b)).min(b)
}

/// Start offset of block `i` (see [`block_extent`]).
pub(crate) fn block_start(len: usize, p: usize, i: usize) -> usize {
    (ceil_div(len, p) * i).min(len)
}

#[cfg(test)]
pub(crate) mod lawtests {
    //! Reusable law-checking helpers shared by the partition submodules'
    //! tests.
    use super::*;

    /// Check the core partition laws on an exhaustive sweep of the global
    /// index space.
    pub fn check_laws(p: &dyn Partition) {
        let (rows, cols) = p.global_shape();
        // Every global cell maps to exactly one (part, lr, lc) and back.
        let mut seen = vec![0usize; p.nparts()];
        for r in 0..rows {
            for c in 0..cols {
                let (part, lr, lc) = p.to_local(r, c);
                assert_eq!(
                    part,
                    p.owner_of(r, c),
                    "to_local/owner_of disagree at ({r},{c})"
                );
                let (lr_max, lc_max) = p.local_shape(part);
                assert!(lr < lr_max && lc < lc_max, "local index out of local shape");
                assert_eq!(
                    p.to_global(part, lr, lc),
                    (r, c),
                    "round trip failed at ({r},{c})"
                );
                assert_eq!(
                    p.row_to_local(part, r),
                    lr,
                    "row_to_local inconsistent at ({r},{c})"
                );
                assert_eq!(
                    p.col_to_local(part, c),
                    lc,
                    "col_to_local inconsistent at ({r},{c})"
                );
                seen[part] += 1;
            }
        }
        // Local shapes account for every cell exactly once.
        let mut total = 0usize;
        for (part, &seen_cells) in seen.iter().enumerate() {
            let (lr, lc) = p.local_shape(part);
            assert_eq!(
                seen_cells,
                lr * lc,
                "part {part} shape does not match owned cells"
            );
            total += lr * lc;
        }
        assert_eq!(total, rows * cols, "parts must tile the global array");
    }

    #[test]
    fn block_extent_covers_exactly() {
        for len in 1..40 {
            for p in 1..10 {
                let total: usize = (0..p).map(|i| block_extent(len, p, i)).sum();
                assert_eq!(total, len, "len={len} p={p}");
                for i in 0..p {
                    let s = block_start(len, p, i);
                    let e = block_extent(len, p, i);
                    if e > 0 {
                        assert!(s + e <= len);
                    }
                }
            }
        }
    }

    #[test]
    fn paper_block_sizes() {
        // 10 rows over 4 processors: ⌈10/4⌉ = 3 → sizes 3,3,3,1 (Figure 2).
        let sizes: Vec<usize> = (0..4).map(|i| block_extent(10, 4, i)).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }
}
