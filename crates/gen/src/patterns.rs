//! Structured sparsity patterns from the application domains the paper's
//! introduction motivates (molecular dynamics, finite-element methods,
//! climate modeling).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sparsedist_core::dense::Dense2D;

/// A banded `n × n` array: cells within `bandwidth` of the diagonal are
/// nonzero (value = 1 + distance from the diagonal start, deterministic).
///
/// # Panics
/// Panics if `n == 0`.
pub fn banded(n: usize, bandwidth: usize) -> Dense2D {
    assert!(n > 0, "array dimension must be positive");
    let mut a = Dense2D::zeros(n, n);
    for r in 0..n {
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth + 1).min(n);
        for c in lo..hi {
            a.set(r, c, 1.0 + (r + c) as f64 / n as f64);
        }
    }
    a
}

/// A tridiagonal `n × n` system (`banded` with bandwidth 1, but with the
/// classic `[-1, 2, -1]` stencil values).
pub fn tridiagonal(n: usize) -> Dense2D {
    assert!(n > 0, "array dimension must be positive");
    let mut a = Dense2D::zeros(n, n);
    for r in 0..n {
        a.set(r, r, 2.0);
        if r > 0 {
            a.set(r, r - 1, -1.0);
        }
        if r + 1 < n {
            a.set(r, r + 1, -1.0);
        }
    }
    a
}

/// The 5-point Laplacian stencil on a `k × k` grid: the `k² × k²` matrix of
/// a 2-D Poisson problem (the archetypal finite-element/climate-model
/// sparse system). Row `i·k + j` couples grid point `(i, j)` to its four
/// neighbours.
pub fn five_point_laplacian(k: usize) -> Dense2D {
    assert!(k > 0, "grid dimension must be positive");
    let n = k * k;
    let mut a = Dense2D::zeros(n, n);
    for i in 0..k {
        for j in 0..k {
            let row = i * k + j;
            a.set(row, row, 4.0);
            if i > 0 {
                a.set(row, row - k, -1.0);
            }
            if i + 1 < k {
                a.set(row, row + k, -1.0);
            }
            if j > 0 {
                a.set(row, row - 1, -1.0);
            }
            if j + 1 < k {
                a.set(row, row + 1, -1.0);
            }
        }
    }
    a
}

/// Block-clustered sparsity: an `n × n` array whose nonzeros concentrate in
/// `nblocks` randomly placed `bsize × bsize` dense blocks (molecular-
/// dynamics-style interaction locality). Values are random in `[1, 2)`.
pub fn block_clustered(n: usize, bsize: usize, nblocks: usize, seed: u64) -> Dense2D {
    assert!(n > 0 && bsize > 0, "dimensions must be positive");
    assert!(bsize <= n, "block must fit in the array");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Dense2D::zeros(n, n);
    for _ in 0..nblocks {
        let r0 = rng.random_range(0..=n - bsize);
        let c0 = rng.random_range(0..=n - bsize);
        for r in r0..r0 + bsize {
            for c in c0..c0 + bsize {
                a.set(r, c, rng.random_range(1.0..2.0));
            }
        }
    }
    a
}

/// Row-skewed sparsity: row `r` holds `max_row_nnz · (r+1) / n` random
/// nonzeros, producing the unbalanced per-processor loads that make the
/// paper's `s'` (max local ratio) diverge from `s`.
pub fn row_skewed(n: usize, max_row_nnz: usize, seed: u64) -> Dense2D {
    assert!(n > 0, "array dimension must be positive");
    assert!(
        max_row_nnz <= n,
        "row nonzeros cannot exceed the column count"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Dense2D::zeros(n, n);
    for r in 0..n {
        let want = (max_row_nnz * (r + 1)).div_ceil(n);
        let mut placed = 0;
        while placed < want {
            let c = rng.random_range(0..n);
            if a.get(r, c) == 0.0 {
                a.set(r, c, rng.random_range(1.0..2.0));
                placed += 1;
            }
        }
    }
    a
}

/// Zipf-distributed row loads: row weights follow `1/(rank+1)^alpha` with
/// the rank-to-row assignment shuffled, approximating the power-law
/// degree distributions of graph adjacency matrices. Exactly `total_nnz`
/// nonzeros are placed (columns uniform within a row, capped at `n` per
/// row).
///
/// # Panics
/// Panics if `n == 0`, `alpha` is not finite/positive, or `total_nnz`
/// exceeds `n²`.
pub fn zipf_rows(n: usize, total_nnz: usize, alpha: f64, seed: u64) -> Dense2D {
    assert!(n > 0, "array dimension must be positive");
    assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
    assert!(
        total_nnz <= n * n,
        "cannot place {total_nnz} nonzeros in {n}x{n}"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Zipf weights over shuffled row ranks.
    let mut rows: Vec<usize> = (0..n).collect();
    for k in (1..n).rev() {
        let j = rng.random_range(0..=k);
        rows.swap(k, j);
    }
    let weights: Vec<f64> = (0..n)
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(alpha))
        .collect();
    let wsum: f64 = weights.iter().sum();

    // Ideal per-row counts, then distribute the rounding remainder.
    let mut want: Vec<usize> = weights
        .iter()
        .map(|w| ((w / wsum) * total_nnz as f64).floor() as usize)
        .map(|c| c.min(n))
        .collect();
    let mut placed: usize = want.iter().sum();
    let mut rank = 0usize;
    while placed < total_nnz {
        if want[rank % n] < n {
            want[rank % n] += 1;
            placed += 1;
        }
        rank += 1;
    }

    let mut a = Dense2D::zeros(n, n);
    for (rank, &row) in rows.iter().enumerate() {
        let mut need = want[rank];
        while need > 0 {
            let c = rng.random_range(0..n);
            if a.get(row, c) == 0.0 {
                a.set(row, c, rng.random_range(1.0..2.0));
                need -= 1;
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsedist_core::partition::{Partition, RowBlock};

    #[test]
    fn zipf_places_exact_count_and_skews() {
        let a = zipf_rows(64, 600, 1.2, 3);
        assert_eq!(a.nnz(), 600);
        // The heaviest row holds far more than the mean.
        let row_nnz: Vec<usize> = (0..64)
            .map(|r| a.row(r).iter().filter(|&&v| v != 0.0).count())
            .collect();
        let max = *row_nnz.iter().max().expect("non-empty");
        assert!(max > 3 * 600 / 64, "max row {max}");
        // Determinism.
        assert_eq!(a, zipf_rows(64, 600, 1.2, 3));
    }

    #[test]
    fn zipf_full_density_edge() {
        let a = zipf_rows(6, 36, 1.0, 1);
        assert_eq!(a.nnz(), 36);
    }

    #[test]
    fn banded_nnz_count() {
        let a = banded(10, 1);
        // Tridiagonal shape: 10 + 9 + 9 = 28 nonzeros.
        assert_eq!(a.nnz(), 28);
        assert_eq!(banded(10, 0).nnz(), 10);
        // Bandwidth >= n-1 is fully dense.
        assert_eq!(banded(5, 4).nnz(), 25);
    }

    #[test]
    fn tridiagonal_stencil_values() {
        let a = tridiagonal(4);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(1, 2), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.nnz(), 10);
    }

    #[test]
    fn laplacian_row_sums() {
        // Interior rows of the 5-point Laplacian sum to 0; boundary rows
        // are positive.
        let k = 4;
        let a = five_point_laplacian(k);
        assert_eq!(a.rows(), 16);
        let interior = k + 1; // grid point (1,1)
        let sum: f64 = (0..16).map(|c| a.get(interior, c)).sum();
        assert_eq!(sum, 0.0);
        let corner_sum: f64 = (0..16).map(|c| a.get(0, c)).sum();
        assert!(corner_sum > 0.0);
        // Each row has at most 5 nonzeros.
        for r in 0..16 {
            let nnz = (0..16).filter(|&c| a.get(r, c) != 0.0).count();
            assert!((3..=5).contains(&nnz));
        }
    }

    #[test]
    fn laplacian_is_symmetric() {
        let a = five_point_laplacian(5);
        for r in 0..25 {
            for c in 0..25 {
                assert_eq!(a.get(r, c), a.get(c, r));
            }
        }
    }

    #[test]
    fn block_clustered_is_clustered() {
        let a = block_clustered(64, 8, 4, 5);
        assert!(a.nnz() > 0);
        assert!(a.nnz() <= 4 * 64);
        // Determinism.
        assert_eq!(a, block_clustered(64, 8, 4, 5));
    }

    #[test]
    fn row_skewed_increases_down_rows() {
        let a = row_skewed(64, 32, 1);
        let top: usize = (0..8)
            .map(|r| a.row(r).iter().filter(|&&v| v != 0.0).count())
            .sum();
        let bottom: usize = (56..64)
            .map(|r| a.row(r).iter().filter(|&&v| v != 0.0).count())
            .sum();
        assert!(bottom > top * 2, "bottom {bottom} top {top}");
        // And it produces the s' > s imbalance the paper's analysis keys on.
        let part = RowBlock::new(64, 64, 4);
        let prof = part.nnz_profile(&a);
        assert!(prof.s_max > a.sparse_ratio() * 1.5);
    }
}
