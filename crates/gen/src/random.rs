//! Seeded uniform random sparse arrays.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sparsedist_core::dense::Dense2D;
use std::collections::HashSet;

/// How the requested sparse ratio is realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatioMode {
    /// Exactly `round(s · rows · cols)` nonzeros, placed uniformly without
    /// replacement (what the paper's fixed `s = 0.1` suggests).
    Exact,
    /// Each cell is nonzero independently with probability `s` (the actual
    /// nonzero count fluctuates around the target).
    Bernoulli,
}

/// Builder for uniform random sparse arrays.
///
/// ```
/// use sparsedist_gen::{SparseRandom, RatioMode};
/// let a = SparseRandom::new(100, 100)
///     .sparse_ratio(0.1)
///     .seed(42)
///     .generate();
/// assert_eq!(a.nnz(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct SparseRandom {
    rows: usize,
    cols: usize,
    s: f64,
    seed: u64,
    mode: RatioMode,
    value_range: (f64, f64),
}

impl SparseRandom {
    /// A generator for `rows × cols` arrays (default: `s = 0.1`, exact
    /// mode, seed 0, values in `[1, 2)`).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        SparseRandom {
            rows,
            cols,
            s: 0.1,
            seed: 0,
            mode: RatioMode::Exact,
            value_range: (1.0, 2.0),
        }
    }

    /// Target sparse ratio in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `s` is outside `[0, 1]`.
    pub fn sparse_ratio(mut self, s: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&s),
            "sparse ratio must be in [0,1], got {s}"
        );
        self.s = s;
        self
    }

    /// RNG seed (same seed → same array).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Ratio realisation mode.
    pub fn mode(mut self, mode: RatioMode) -> Self {
        self.mode = mode;
        self
    }

    /// Half-open range nonzero values are drawn from. Must exclude zero
    /// (zero values would silently change the sparse ratio).
    ///
    /// # Panics
    /// Panics if the range is empty or contains zero.
    pub fn value_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "empty value range");
        assert!(lo > 0.0 || hi <= 0.0, "value range must exclude zero");
        self.value_range = (lo, hi);
        self
    }

    /// Generate the array.
    pub fn generate(&self) -> Dense2D {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut a = Dense2D::zeros(self.rows, self.cols);
        let (lo, hi) = self.value_range;
        let draw = |rng: &mut StdRng| rng.random_range(lo..hi);
        match self.mode {
            RatioMode::Bernoulli => {
                for r in 0..self.rows {
                    for c in 0..self.cols {
                        if rng.random::<f64>() < self.s {
                            a.set(r, c, draw(&mut rng));
                        }
                    }
                }
            }
            RatioMode::Exact => {
                let cells = self.rows * self.cols;
                let nnz = (self.s * cells as f64).round() as usize;
                if nnz * 3 < cells {
                    // Sparse case: rejection-sample distinct cells.
                    let mut taken = HashSet::with_capacity(nnz * 2);
                    while taken.len() < nnz {
                        let idx = rng.random_range(0..cells);
                        if taken.insert(idx) {
                            a.set(idx / self.cols, idx % self.cols, draw(&mut rng));
                        }
                    }
                } else {
                    // Dense case: partial Fisher–Yates over all cells.
                    let mut idx: Vec<usize> = (0..cells).collect();
                    for k in 0..nnz {
                        let j = rng.random_range(k..cells);
                        idx.swap(k, j);
                        a.set(idx[k] / self.cols, idx[k] % self.cols, draw(&mut rng));
                    }
                }
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_mode_hits_ratio_exactly() {
        for s in [0.01, 0.1, 0.5, 0.9] {
            let a = SparseRandom::new(50, 40).sparse_ratio(s).seed(7).generate();
            assert_eq!(a.nnz(), (s * 2000.0).round() as usize, "s={s}");
        }
    }

    #[test]
    fn bernoulli_mode_is_close() {
        let a = SparseRandom::new(200, 200)
            .sparse_ratio(0.1)
            .mode(RatioMode::Bernoulli)
            .seed(3)
            .generate();
        let got = a.sparse_ratio();
        assert!((got - 0.1).abs() < 0.02, "ratio {got}");
    }

    #[test]
    fn same_seed_same_array() {
        let a = SparseRandom::new(30, 30).seed(11).generate();
        let b = SparseRandom::new(30, 30).seed(11).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_array() {
        let a = SparseRandom::new(30, 30).seed(1).generate();
        let b = SparseRandom::new(30, 30).seed(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn extreme_ratios() {
        let empty = SparseRandom::new(10, 10).sparse_ratio(0.0).generate();
        assert_eq!(empty.nnz(), 0);
        let full = SparseRandom::new(10, 10).sparse_ratio(1.0).generate();
        assert_eq!(full.nnz(), 100);
    }

    #[test]
    fn values_in_requested_range() {
        let a = SparseRandom::new(40, 40)
            .value_range(5.0, 6.0)
            .seed(9)
            .generate();
        for (_, _, v) in a.iter_nonzero() {
            assert!((5.0..6.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "exclude zero")]
    fn zero_straddling_range_rejected() {
        let _ = SparseRandom::new(4, 4).value_range(-1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "sparse ratio")]
    fn bad_ratio_rejected() {
        let _ = SparseRandom::new(4, 4).sparse_ratio(1.5);
    }
}
