//! MatrixMarket coordinate-format I/O.
//!
//! The paper motivates its sparse-ratio assumptions with the
//! Harwell–Boeing Sparse Matrix Collection; its successor ecosystem
//! distributes matrices in the MatrixMarket exchange format, which this
//! module reads and writes (`matrix coordinate real general`, 1-based
//! indices, `%` comments).

use sparsedist_core::compress::Coo;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Error from parsing or writing a MatrixMarket stream.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the text, with a line number (1-based).
    Parse {
        /// 1-based line number (0 for document-level problems).
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Header describes a format this reader does not support.
    Unsupported(String),
}

impl fmt::Display for MmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "i/o error: {e}"),
            MmError::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
            MmError::Unsupported(what) => write!(f, "unsupported MatrixMarket variant: {what}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(line: usize, reason: impl Into<String>) -> MmError {
    MmError::Parse {
        line,
        reason: reason.into(),
    }
}

/// Parse a MatrixMarket `coordinate real general` document.
///
/// `pattern` matrices get value 1.0 per entry; `symmetric` matrices are
/// expanded (the mirrored entry is materialised). `integer` values are
/// accepted as reals.
pub fn parse(text: &str) -> Result<Coo, MmError> {
    let mut lines = text.lines().enumerate();

    let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty document"))?;
    let h: Vec<&str> = header.split_whitespace().collect();
    if h.len() != 5 || !h[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(parse_err(
            1,
            "expected '%%MatrixMarket matrix coordinate <field> <symmetry>'",
        ));
    }
    if !h[1].eq_ignore_ascii_case("matrix") || !h[2].eq_ignore_ascii_case("coordinate") {
        return Err(MmError::Unsupported(format!("{} {}", h[1], h[2])));
    }
    let field = h[3].to_ascii_lowercase();
    if !matches!(field.as_str(), "real" | "integer" | "pattern") {
        return Err(MmError::Unsupported(format!("field '{field}'")));
    }
    let symmetry = h[4].to_ascii_lowercase();
    if !matches!(symmetry.as_str(), "general" | "symmetric") {
        return Err(MmError::Unsupported(format!("symmetry '{symmetry}'")));
    }

    // Size line: first non-comment line.
    let mut size = None;
    for (i, line) in lines.by_ref() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(parse_err(i + 1, "size line must be 'rows cols nnz'"));
        }
        let rows: usize = parts[0]
            .parse()
            .map_err(|_| parse_err(i + 1, "bad row count"))?;
        let cols: usize = parts[1]
            .parse()
            .map_err(|_| parse_err(i + 1, "bad col count"))?;
        let nnz: usize = parts[2]
            .parse()
            .map_err(|_| parse_err(i + 1, "bad nnz count"))?;
        size = Some((rows, cols, nnz));
        break;
    }
    let (rows, cols, nnz) = size.ok_or_else(|| parse_err(0, "missing size line"))?;

    let mut coo = Coo::new(rows, cols);
    let mut seen = 0usize;
    for (i, line) in lines {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        let want = if field == "pattern" { 2 } else { 3 };
        if parts.len() != want {
            return Err(parse_err(i + 1, format!("entry must have {want} fields")));
        }
        let r: usize = parts[0]
            .parse()
            .map_err(|_| parse_err(i + 1, "bad row index"))?;
        let c: usize = parts[1]
            .parse()
            .map_err(|_| parse_err(i + 1, "bad col index"))?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(parse_err(
                i + 1,
                format!("index ({r},{c}) out of 1..={rows} x 1..={cols}"),
            ));
        }
        let v: f64 = if field == "pattern" {
            1.0
        } else {
            parts[2]
                .parse()
                .map_err(|_| parse_err(i + 1, "bad value"))?
        };
        coo.push(r - 1, c - 1, v);
        if symmetry == "symmetric" && r != c {
            coo.push(c - 1, r - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(
            0,
            format!("header promised {nnz} entries, found {seen}"),
        ));
    }
    Ok(coo)
}

/// Render a [`Coo`] as a `matrix coordinate real general` document.
pub fn render(coo: &Coo) -> String {
    let mut out = String::new();
    out.push_str("%%MatrixMarket matrix coordinate real general\n");
    out.push_str("% written by sparsedist-gen\n");
    out.push_str(&format!("{} {} {}\n", coo.rows(), coo.cols(), coo.nnz()));
    for &(r, c, v) in coo.entries() {
        out.push_str(&format!("{} {} {}\n", r + 1, c + 1, v));
    }
    out
}

/// Read a MatrixMarket file.
pub fn read_file(path: impl AsRef<Path>) -> Result<Coo, MmError> {
    parse(&fs::read_to_string(path)?)
}

/// Write a MatrixMarket file.
pub fn write_file(path: impl AsRef<Path>, coo: &Coo) -> Result<(), MmError> {
    let mut f = fs::File::create(path)?;
    f.write_all(render(coo).as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsedist_core::dense::paper_array_a;

    #[test]
    fn round_trip_paper_array() {
        let coo = Coo::from_dense(&paper_array_a());
        let text = render(&coo);
        let back = parse(&text).unwrap();
        assert_eq!(back.to_dense(), paper_array_a());
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    \n\
                    2 3 2\n\
                    % another\n\
                    1 1 1.5\n\
                    2 3 -2.5\n";
        let coo = parse(text).unwrap();
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.to_dense().get(1, 2), -2.5);
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let coo = parse(text).unwrap();
        assert_eq!(coo.to_dense().get(0, 0), 1.0);
        assert_eq!(coo.to_dense().get(1, 1), 1.0);
    }

    #[test]
    fn symmetric_matrices_are_expanded() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 5\n3 1 7\n";
        let coo = parse(text).unwrap();
        let d = coo.to_dense();
        assert_eq!(d.get(0, 0), 5.0);
        assert_eq!(d.get(2, 0), 7.0);
        assert_eq!(d.get(0, 2), 7.0);
    }

    #[test]
    fn error_on_bad_header() {
        assert!(matches!(
            parse("garbage\n"),
            Err(MmError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse("%%MatrixMarket matrix array real general\n"),
            Err(MmError::Unsupported(_))
        ));
        assert!(matches!(
            parse("%%MatrixMarket matrix coordinate complex general\n2 2 0\n"),
            Err(MmError::Unsupported(_))
        ));
    }

    #[test]
    fn error_on_out_of_bounds_entry() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("out of"), "{err}");
    }

    #[test]
    fn error_on_count_mismatch() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1.0\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("promised 5"), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sparsedist_mm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.mtx");
        let coo = Coo::from_dense(&paper_array_a());
        write_file(&path, &coo).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.to_dense(), paper_array_a());
        std::fs::remove_dir_all(&dir).ok();
    }
}
