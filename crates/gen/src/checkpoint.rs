//! Checkpointing distributed sparse state to disk.
//!
//! Long-running sparse pipelines checkpoint their distributed arrays so a
//! later run (possibly with a different processor count, via
//! redistribution) can resume without repeating the distribution phase.
//! The format is deliberately simple and fully self-describing:
//!
//! ```text
//! <dir>/manifest.txt      "sparsedist-checkpoint v1\nranks <p>\n"
//! <dir>/rank_<i>.sdc      MAGIC, VERSION, kind, rows, cols,
//!                         pointer_len, pointer…, nnz, indices…, values…,
//!                         CRC32 (over everything before it)
//! ```
//!
//! All integers are little-endian `u64`, values are `f64` — the same wire
//! encoding the simulated machine uses, so the pack/unpack machinery is
//! reused verbatim. The trailing CRC32 word catches single-bit flips that
//! the structural validators cannot (e.g. a corrupted `f64` value).

use sparsedist_core::compress::{Ccs, CompressError, Crs, LocalCompressed};
use sparsedist_multicomputer::pack::crc32;
use sparsedist_multicomputer::PackBuffer;
use std::fmt;
use std::fs;
use std::path::Path;

const MAGIC: u64 = 0x5344_434b_3031_7673; // "SDCK01vs"
const VERSION: u64 = 2;

/// Error from saving or loading a checkpoint.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A rank file is malformed.
    Corrupt {
        /// Which rank's file.
        rank: usize,
        /// What was wrong.
        reason: String,
    },
    /// The manifest is missing or malformed.
    BadManifest(String),
    /// A rank file failed compressed-array validation.
    Invalid {
        /// Which rank's file.
        rank: usize,
        /// The structural violation.
        source: CompressError,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "i/o error: {e}"),
            CkptError::Corrupt { rank, reason } => write!(f, "rank {rank} file corrupt: {reason}"),
            CkptError::BadManifest(why) => write!(f, "bad manifest: {why}"),
            CkptError::Invalid { rank, source } => {
                write!(f, "rank {rank} array invalid: {source}")
            }
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

fn encode(local: &LocalCompressed) -> PackBuffer {
    let mut buf = PackBuffer::new();
    buf.push_u64(MAGIC);
    buf.push_u64(VERSION);
    match local {
        LocalCompressed::Crs(a) => {
            buf.push_u64(0);
            buf.push_u64(a.rows() as u64);
            buf.push_u64(a.cols() as u64);
            buf.push_u64(a.ro().len() as u64);
            buf.push_usize_slice(a.ro());
            buf.push_u64(a.nnz() as u64);
            buf.push_usize_slice(a.co());
            buf.push_f64_slice(a.vl());
        }
        LocalCompressed::Ccs(a) => {
            buf.push_u64(1);
            buf.push_u64(a.rows() as u64);
            buf.push_u64(a.cols() as u64);
            buf.push_u64(a.cp().len() as u64);
            buf.push_usize_slice(a.cp());
            buf.push_u64(a.nnz() as u64);
            buf.push_usize_slice(a.ri());
            buf.push_f64_slice(a.vl());
        }
    }
    let crc = buf.crc32();
    buf.push_u64(u64::from(crc));
    buf
}

fn decode(rank: usize, bytes: &[u8]) -> Result<LocalCompressed, CkptError> {
    let corrupt = |reason: &str| CkptError::Corrupt {
        rank,
        reason: reason.into(),
    };
    if bytes.len() % 8 != 0 {
        return Err(corrupt("length not a multiple of 8"));
    }
    // The last word is a CRC32 over everything before it; reject early on a
    // mismatch so bit flips surface as a checksum error, not a parse error.
    if bytes.len() < 3 * 8 {
        return Err(corrupt("too short for header and checksum"));
    }
    let (body, footer) = bytes.split_at(bytes.len() - 8);
    // Identify the file type before integrity-checking it, so a wrong-magic
    // file reads as "not a checkpoint" rather than "corrupt checkpoint".
    let mut w = [0u8; 8];
    w.copy_from_slice(&body[..8]);
    if u64::from_le_bytes(w) != MAGIC {
        return Err(corrupt("bad magic"));
    }
    w.copy_from_slice(&body[8..16]);
    if u64::from_le_bytes(w) != VERSION {
        return Err(corrupt("unsupported version"));
    }
    w.copy_from_slice(footer);
    let stored = u64::from_le_bytes(w);
    let computed = u64::from(crc32(body));
    if stored != computed {
        return Err(corrupt(&format!(
            "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
        )));
    }
    let mut buf = PackBuffer::new();
    for chunk in body.chunks_exact(8) {
        let mut w = [0u8; 8];
        w.copy_from_slice(chunk);
        buf.push_u64(u64::from_le_bytes(w));
    }
    let mut c = buf.cursor();
    let mut next = |what: &str| {
        c.try_read_u64().map_err(|_| CkptError::Corrupt {
            rank,
            reason: format!("truncated at {what}"),
        })
    };
    if next("magic")? != MAGIC {
        return Err(corrupt("bad magic"));
    }
    if next("version")? != VERSION {
        return Err(corrupt("unsupported version"));
    }
    let kind = next("kind")?;
    let rows = next("rows")? as usize;
    let cols = next("cols")? as usize;
    let plen = next("pointer length")? as usize;
    if plen > bytes.len() / 8 {
        return Err(corrupt("pointer length exceeds file"));
    }
    let mut pointer = Vec::with_capacity(plen);
    for _ in 0..plen {
        pointer.push(next("pointer entries")? as usize);
    }
    let nnz = next("nnz")? as usize;
    if nnz > bytes.len() / 8 {
        return Err(corrupt("nnz exceeds file"));
    }
    let mut indices = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        indices.push(next("indices")? as usize);
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(c.try_read_f64().map_err(|_| CkptError::Corrupt {
            rank,
            reason: "truncated at values".into(),
        })?);
    }
    if !c.is_exhausted() {
        return Err(corrupt("trailing bytes"));
    }
    match kind {
        0 => Crs::from_raw(rows, cols, pointer, indices, values)
            .map(LocalCompressed::Crs)
            .map_err(|source| CkptError::Invalid { rank, source }),
        1 => Ccs::from_raw(rows, cols, pointer, indices, values)
            .map(LocalCompressed::Ccs)
            .map_err(|source| CkptError::Invalid { rank, source }),
        k => Err(corrupt(&format!("unknown kind {k}"))),
    }
}

/// Save a distributed array's local parts into `dir` (created if absent).
pub fn save(dir: impl AsRef<Path>, locals: &[LocalCompressed]) -> Result<(), CkptError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    fs::write(
        dir.join("manifest.txt"),
        format!("sparsedist-checkpoint v1\nranks {}\n", locals.len()),
    )?;
    for (rank, local) in locals.iter().enumerate() {
        fs::write(
            dir.join(format!("rank_{rank}.sdc")),
            encode(local).as_bytes(),
        )?;
    }
    Ok(())
}

/// Load a checkpoint saved by [`save`].
pub fn load(dir: impl AsRef<Path>) -> Result<Vec<LocalCompressed>, CkptError> {
    let dir = dir.as_ref();
    let manifest = fs::read_to_string(dir.join("manifest.txt"))
        .map_err(|e| CkptError::BadManifest(format!("cannot read manifest: {e}")))?;
    let mut lines = manifest.lines();
    if lines.next() != Some("sparsedist-checkpoint v1") {
        return Err(CkptError::BadManifest("unknown header line".into()));
    }
    let ranks: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("ranks "))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| CkptError::BadManifest("missing 'ranks <p>' line".into()))?;
    let mut out = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        let bytes = fs::read(dir.join(format!("rank_{rank}.sdc")))?;
        out.push(decode(rank, &bytes)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsedist_core::compress::CompressKind;
    use sparsedist_core::dense::paper_array_a;
    use sparsedist_core::partition::{Partition, RowBlock};
    use sparsedist_core::schemes::{run_scheme, SchemeKind};
    use sparsedist_multicomputer::{MachineModel, Multicomputer};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir()
            .join("sparsedist_ckpt_tests")
            .join(name);
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample_locals(kind: CompressKind) -> Vec<LocalCompressed> {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
        run_scheme(SchemeKind::Ed, &machine, &a, &part, kind)
            .unwrap()
            .locals
    }

    #[test]
    fn round_trip_crs_and_ccs() {
        for kind in [CompressKind::Crs, CompressKind::Ccs] {
            let dir = tmpdir(&format!("rt_{kind}"));
            let locals = sample_locals(kind);
            save(&dir, &locals).unwrap();
            let back = load(&dir).unwrap();
            assert_eq!(back, locals);
            fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn resumed_state_reassembles() {
        let dir = tmpdir("resume");
        let locals = sample_locals(CompressKind::Crs);
        save(&dir, &locals).unwrap();
        let back = load(&dir).unwrap();
        let part = RowBlock::new(10, 8, 4);
        let mut global = sparsedist_core::dense::Dense2D::zeros(10, 8);
        for (pid, local) in back.iter().enumerate() {
            for (lr, lc, v) in local.to_dense().iter_nonzero() {
                let (gr, gc) = part.to_global(pid, lr, lc);
                global.set(gr, gc, v);
            }
        }
        assert_eq!(global, paper_array_a());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_rank_file_detected() {
        let dir = tmpdir("corrupt");
        let locals = sample_locals(CompressKind::Crs);
        save(&dir, &locals).unwrap();
        // Truncate rank 2's file mid-stream.
        let path = dir.join("rank_2.sdc");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let err = load(&dir).unwrap_err();
        assert!(err.to_string().contains("rank 2"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_detected() {
        let dir = tmpdir("magic");
        let locals = sample_locals(CompressKind::Crs);
        save(&dir, &locals).unwrap();
        let path = dir.join("rank_0.sdc");
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let err = load(&dir).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    /// Rewrite `bytes` so its CRC footer matches its (possibly tampered)
    /// body again — models an attacker-consistent file, which must then be
    /// caught by the structural validators instead of the checksum.
    fn refresh_crc(bytes: &mut [u8]) {
        let n = bytes.len();
        let crc = u64::from(crc32(&bytes[..n - 8]));
        bytes[n - 8..].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn tampered_indices_fail_validation() {
        let dir = tmpdir("tamper");
        let locals = sample_locals(CompressKind::Crs);
        save(&dir, &locals).unwrap();
        let path = dir.join("rank_0.sdc");
        let mut bytes = fs::read(&path).unwrap();
        // Overwrite the first column index (after magic, version, kind,
        // rows, cols, plen, pointer(5), nnz = 11 words) with a huge value,
        // then make the checksum consistent so validation is what trips.
        let off = 8 * 11;
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        refresh_crc(&mut bytes);
        fs::write(&path, &bytes).unwrap();
        let err = load(&dir).unwrap_err();
        assert!(matches!(err, CkptError::Invalid { rank: 0, .. }), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_bit_flip_fails_checksum() {
        let dir = tmpdir("bitflip");
        let locals = sample_locals(CompressKind::Crs);
        save(&dir, &locals).unwrap();
        let path = dir.join("rank_1.sdc");
        let mut bytes = fs::read(&path).unwrap();
        // Flip one bit inside the values region — structurally harmless (a
        // valid f64 stays a valid f64), so only the CRC can catch it.
        let mid = bytes.len() - 24;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = load(&dir).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        assert!(err.to_string().contains("rank 1"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_detected() {
        let dir = tmpdir("nomanifest");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(load(&dir), Err(CkptError::BadManifest(_))));
        fs::remove_dir_all(&dir).ok();
    }
}
