#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Workload generators and I/O for the `sparsedist` benchmarks.
//!
//! The paper evaluates on synthetic two-dimensional sparse arrays with a
//! fixed sparse ratio of 0.1 ("The sparse ratio is set to 0.1 for all
//! two-dimensional sparse arrays used as test samples", §5). This crate
//! provides:
//!
//! * [`random`] — seeded uniform random sparse arrays with an exact or
//!   Bernoulli-sampled sparse ratio;
//! * [`patterns`] — structured sparsity from the application domains the
//!   paper's introduction motivates (banded systems, block-clustered
//!   meshes, 5-point stencils from finite-element/climate codes);
//! * [`matrixmarket`] — MatrixMarket coordinate-format reading and writing,
//!   standing in for the Harwell–Boeing collection the paper cites;
//! * [`checkpoint`] — saving/loading a distributed array's compressed
//!   local parts so a later run can resume without redistributing.

pub mod checkpoint;
pub mod matrixmarket;
pub mod patterns;
pub mod random;

pub use random::{RatioMode, SparseRandom};
