//! Deterministic fault injection for the simulated interconnect.
//!
//! The paper's IBM SP2 experiments assume a perfectly reliable network;
//! this module removes that assumption in a controlled way. A [`FaultPlan`]
//! is a *seeded, deterministic* description of what goes wrong on the wire:
//! message drops, payload corruption, delivery delays, and dead ranks,
//! configurable globally, per-link (`src→dst`), and per-phase. The engine
//! consults the plan between `send` and `recv`; because every decision is a
//! pure hash of `(seed, src, dst, seq, attempt)`, two runs with the same
//! plan inject byte-identical fault sequences no matter how the host
//! schedules the simulated processors — virtual-time ledgers stay exactly
//! reproducible.
//!
//! Recovery is driven by a [`RetryPolicy`]: the reliable-delivery layer in
//! [`crate::engine`] retransmits a faulted frame after a timeout that backs
//! off exponentially, up to a retry budget, charging every retransmission
//! and timeout to the virtual clock (see `Phase::Retry`).

use crate::timing::Phase;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One kind of injected communication fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The frame is lost on the wire: the receiver never sees it and the
    /// sender's ARQ timeout fires.
    Drop,
    /// The frame arrives with flipped payload bits; the receiver's CRC32
    /// check rejects it and a nack is returned.
    Corrupt,
    /// The frame arrives intact but late by the given extra microseconds.
    Delay(f64),
}

/// Fault probabilities for one direction of one link.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkProbs {
    /// Probability a frame is dropped.
    pub drop: f64,
    /// Probability a frame is corrupted.
    pub corrupt: f64,
    /// Probability a frame is delayed.
    pub delay: f64,
}

impl LinkProbs {
    fn validate(&self) {
        for (name, p) in [
            ("drop", self.drop),
            ("corrupt", self.corrupt),
            ("delay", self.delay),
        ] {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "{name} probability must be in [0, 1], got {p}"
            );
        }
        assert!(
            self.drop + self.corrupt + self.delay <= 1.0 + 1e-12,
            "fault probabilities must sum to at most 1"
        );
    }
}

/// A seeded, deterministic description of interconnect faults.
///
/// Build one with the fluent setters, or parse the CLI syntax with
/// [`FaultPlan::parse`]:
///
/// ```
/// use sparsedist_multicomputer::fault::FaultPlan;
/// let plan = FaultPlan::parse("seed=7,drop=0.2,corrupt=0.05,delay=0.1:250,dead=3,drop@0-2=0.8")
///     .unwrap();
/// assert_eq!(plan.seed(), 7);
/// assert!(plan.is_dead(3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    base: LinkProbs,
    delay_us: f64,
    dead: BTreeSet<usize>,
    /// Mid-run deaths: rank → the virtual-time instant (µs) it dies.
    deaths: BTreeMap<usize, f64>,
    /// Per-link overrides, keyed by `(src, dst)`.
    links: Vec<(usize, usize, LinkProbs)>,
    /// When set, faults are only injected on sends issued inside this
    /// ledger phase (per-phase scoping; `None` = every phase).
    only_phase: Option<Phase>,
}

impl FaultPlan {
    /// A plan that injects nothing (but still routes traffic through the
    /// reliable-delivery layer: CRC framing and acks become active).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            base: LinkProbs::default(),
            delay_us: 100.0,
            dead: BTreeSet::new(),
            deaths: BTreeMap::new(),
            links: Vec::new(),
            only_phase: None,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Set the global drop probability.
    ///
    /// # Panics
    /// Panics if the resulting probabilities are invalid.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.base.drop = p;
        self.base.validate();
        self
    }

    /// Set the global corruption probability.
    ///
    /// # Panics
    /// Panics if the resulting probabilities are invalid.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.base.corrupt = p;
        self.base.validate();
        self
    }

    /// Set the global delay probability and the extra delivery latency (µs)
    /// a delayed frame suffers.
    ///
    /// # Panics
    /// Panics if the probabilities become invalid or `extra_us` is not a
    /// finite non-negative number.
    pub fn with_delay(mut self, p: f64, extra_us: f64) -> Self {
        assert!(
            extra_us.is_finite() && extra_us >= 0.0,
            "delay must be finite and non-negative, got {extra_us}"
        );
        self.base.delay = p;
        self.delay_us = extra_us;
        self.base.validate();
        self
    }

    /// Declare `rank` dead for the whole run: it never sends or receives.
    pub fn with_dead_rank(mut self, rank: usize) -> Self {
        self.dead.insert(rank);
        self
    }

    /// Schedule `rank` to die at virtual-time `t_us` (µs). Unlike
    /// [`FaultPlan::with_dead_rank`] the rank participates normally until
    /// then: frames that would arrive after the death instant fail with
    /// `PeerDead` at the sender, and the engine pushes a death notice so
    /// the dying receiver observes its own death deterministically. Only
    /// meaningful in virtual-time mode.
    ///
    /// # Panics
    /// Panics if `t_us` is not a finite non-negative number.
    pub fn with_death_at(mut self, rank: usize, t_us: f64) -> Self {
        assert!(
            t_us.is_finite() && t_us >= 0.0,
            "death time must be finite and non-negative, got {t_us}"
        );
        self.deaths.insert(rank, t_us);
        self
    }

    /// Override the probabilities on the directed link `src → dst`.
    ///
    /// # Panics
    /// Panics if `probs` is invalid.
    pub fn with_link(mut self, src: usize, dst: usize, probs: LinkProbs) -> Self {
        probs.validate();
        self.links.retain(|&(s, d, _)| (s, d) != (src, dst));
        self.links.push((src, dst, probs));
        self
    }

    /// Restrict injection to sends issued while the sender is inside
    /// `phase` (as set by [`crate::engine::Env::phase`]).
    pub fn only_during(mut self, phase: Phase) -> Self {
        self.only_phase = Some(phase);
        self
    }

    /// True if `rank` is declared dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead.contains(&rank)
    }

    /// The dead ranks, ascending.
    pub fn dead_ranks(&self) -> impl Iterator<Item = usize> + '_ {
        self.dead.iter().copied()
    }

    /// The virtual-time instant (µs) `rank` dies mid-run, if scheduled.
    pub fn death_time(&self, rank: usize) -> Option<f64> {
        self.deaths.get(&rank).copied()
    }

    /// True if any rank is scheduled to die mid-run — the signal for the
    /// pipeline driver to run its routed recovery protocol.
    pub fn has_timed_deaths(&self) -> bool {
        !self.deaths.is_empty()
    }

    /// The `(rank, death time µs)` pairs scheduled to die mid-run,
    /// ascending by rank.
    pub fn dying_ranks(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.deaths.iter().map(|(&r, &t)| (r, t))
    }

    /// Effective probabilities on `src → dst`.
    pub fn link_probs(&self, src: usize, dst: usize) -> LinkProbs {
        self.links
            .iter()
            .find(|&&(s, d, _)| (s, d) == (src, dst))
            .map(|&(_, _, p)| p)
            .unwrap_or(self.base)
    }

    /// The extra latency (µs) a delayed frame suffers.
    pub fn delay_us(&self) -> f64 {
        self.delay_us
    }

    /// Decide the fate of attempt `attempt` of the `seq`-th frame on
    /// `src → dst`, sent while the sender was in `phase`. Pure function of
    /// the plan — the cornerstone of deterministic replay.
    pub fn decide(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
        phase: Phase,
    ) -> Option<FaultKind> {
        if self.only_phase.is_some_and(|ph| ph != phase) {
            return None;
        }
        let probs = self.link_probs(src, dst);
        let h = mix(&[self.seed, src as u64, dst as u64, seq, attempt as u64]);
        // 53 uniform bits → [0, 1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < probs.drop {
            Some(FaultKind::Drop)
        } else if u < probs.drop + probs.corrupt {
            Some(FaultKind::Corrupt)
        } else if u < probs.drop + probs.corrupt + probs.delay {
            Some(FaultKind::Delay(self.delay_us))
        } else {
            None
        }
    }

    /// A deterministic auxiliary roll for enacting a decided fault (e.g.
    /// picking which payload bit to flip).
    pub fn aux_roll(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> u64 {
        mix(&[!self.seed, src as u64, dst as u64, seq, attempt as u64])
    }

    /// Parse the CLI fault syntax: comma-separated `key=value` tokens.
    ///
    /// | token | meaning |
    /// |---|---|
    /// | `seed=N` | plan seed (default 0) |
    /// | `drop=P` | global drop probability |
    /// | `corrupt=P` | global corruption probability |
    /// | `delay=P` or `delay=P:US` | global delay probability (+ extra µs) |
    /// | `dead=R` or `dead=R+R+…` | dead rank(s) |
    /// | `die=R:T` or `die=R:T+R:T+…` | rank `R` dies at virtual-time `T` µs |
    /// | `drop@S-D=P` | per-link drop override on `S → D` |
    /// | `corrupt@S-D=P`, `delay@S-D=P` | other per-link overrides |
    /// | `phase=NAME` | inject only during ledger phase `NAME` |
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::new(0);
        let bad = |tok: &str, why: &str| FaultSpecError {
            token: tok.to_string(),
            reason: why.to_string(),
        };
        let prob = |tok: &str, v: &str| -> Result<f64, FaultSpecError> {
            let p: f64 = v.parse().map_err(|_| bad(tok, "expected a probability"))?;
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(bad(tok, "probability must be in [0, 1]"));
            }
            Ok(p)
        };
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| bad(tok, "expected key=value"))?;
            if let Some((fault, link)) = key.split_once('@') {
                let (s, d) = link
                    .split_once('-')
                    .ok_or_else(|| bad(tok, "link must be SRC-DST"))?;
                let src: usize = s.parse().map_err(|_| bad(tok, "bad source rank"))?;
                let dst: usize = d.parse().map_err(|_| bad(tok, "bad destination rank"))?;
                let mut probs = plan.link_probs(src, dst);
                let p = prob(tok, value)?;
                match fault {
                    "drop" => probs.drop = p,
                    "corrupt" => probs.corrupt = p,
                    "delay" => probs.delay = p,
                    _ => return Err(bad(tok, "unknown per-link fault kind")),
                }
                if probs.drop + probs.corrupt + probs.delay > 1.0 {
                    return Err(bad(tok, "link probabilities sum past 1"));
                }
                plan = plan.with_link(src, dst, probs);
                continue;
            }
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| bad(tok, "expected an integer seed"))?;
                }
                "drop" => {
                    plan.base.drop = prob(tok, value)?;
                }
                "corrupt" => {
                    plan.base.corrupt = prob(tok, value)?;
                }
                "delay" => {
                    let (p, us) = match value.split_once(':') {
                        Some((p, us)) => {
                            let us: f64 =
                                us.parse().map_err(|_| bad(tok, "bad delay microseconds"))?;
                            if !us.is_finite() || us < 0.0 {
                                return Err(bad(tok, "delay microseconds must be >= 0"));
                            }
                            (prob(tok, p)?, us)
                        }
                        None => (prob(tok, value)?, plan.delay_us),
                    };
                    plan.base.delay = p;
                    plan.delay_us = us;
                }
                "dead" => {
                    for r in value.split('+') {
                        let rank: usize = r.parse().map_err(|_| bad(tok, "bad dead rank"))?;
                        plan.dead.insert(rank);
                    }
                }
                "die" => {
                    for pair in value.split('+') {
                        let (r, t) = pair
                            .split_once(':')
                            .ok_or_else(|| bad(tok, "expected die=RANK:TIME_US"))?;
                        let rank: usize = r.parse().map_err(|_| bad(tok, "bad dying rank"))?;
                        let t_us: f64 = t
                            .parse()
                            .map_err(|_| bad(tok, "bad death time (microseconds)"))?;
                        if !t_us.is_finite() || t_us < 0.0 {
                            return Err(bad(tok, "death time must be >= 0"));
                        }
                        plan.deaths.insert(rank, t_us);
                    }
                }
                "phase" => {
                    let phase = Phase::ALL
                        .iter()
                        .copied()
                        .find(|p| p.label() == value)
                        .ok_or_else(|| bad(tok, "unknown phase name"))?;
                    plan.only_phase = Some(phase);
                }
                _ => return Err(bad(tok, "unknown fault key")),
            }
        }
        if plan.base.drop + plan.base.corrupt + plan.base.delay > 1.0 {
            return Err(FaultSpecError {
                token: spec.to_string(),
                reason: "global probabilities sum past 1".to_string(),
            });
        }
        Ok(plan)
    }

    /// A deterministic "chaos" plan for `seed` on a `nprocs`-processor
    /// machine: a randomised but fully reproducible mix of drops,
    /// corruption, sometimes delays, and (for about a third of the seeds)
    /// one mid-run rank death. The `chaos` CLI subcommand and the chaos
    /// test harness share this generator, so a failing seed reproduces
    /// identically from either entry point.
    pub fn chaos(seed: u64, nprocs: usize) -> FaultPlan {
        let roll = |salt: u64| mix(&[seed, salt]);
        // 53 uniform bits → [0, 1).
        let unit = |salt: u64| (roll(salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let mut plan = FaultPlan::new(seed)
            .with_drop(unit(1) * 0.2)
            .with_corrupt(unit(2) * 0.1);
        if roll(3) % 2 == 0 {
            plan = plan.with_delay(unit(4) * 0.1, 50.0 + unit(5) * 450.0);
        }
        if nprocs > 1 && roll(6) % 3 == 0 {
            // Kill one non-source rank somewhere in the distribution window.
            // lint: allow(W002) — reduced mod (nprocs - 1) first, so it fits usize
            let rank = 1 + (roll(7) % (nprocs as u64 - 1)) as usize;
            let t_us = 200.0 + unit(8) * 4_000.0;
            plan = plan.with_death_at(rank, t_us);
        }
        plan
    }
}

/// Error from [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending token.
    pub token: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec token `{}`: {}", self.token, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

/// How the reliable-delivery layer recovers from injected faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retransmissions allowed per message beyond the first attempt.
    pub max_retries: u32,
    /// Initial ARQ timeout before the first retransmission (µs of virtual
    /// time, charged to `Phase::Retry`).
    pub timeout_us: f64,
    /// Multiplier applied to the timeout after every failed attempt.
    pub backoff: f64,
}

impl RetryPolicy {
    /// A policy with the given retry budget and default timing (100 µs
    /// initial timeout, doubling per attempt).
    pub fn with_retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// The timeout charged for the failed `attempt` (0-based):
    /// `timeout_us × backoff^attempt`.
    pub fn timeout_for(&self, attempt: u32) -> f64 {
        self.timeout_us * self.backoff.powi(attempt as i32)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            timeout_us: 100.0,
            backoff: 2.0,
        }
    }
}

/// splitmix64-style avalanche over a word sequence.
fn mix(words: &[u64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &w in words {
        h ^= w
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(h << 6)
            .wrapping_add(h >> 2);
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(9)
            .with_drop(0.3)
            .with_corrupt(0.1)
            .with_delay(0.1, 50.0);
        for seq in 0..200 {
            let a = plan.decide(0, 1, seq, 0, Phase::Send);
            let b = plan.decide(0, 1, seq, 0, Phase::Send);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::new(1234).with_drop(0.25);
        let drops = (0..10_000)
            .filter(|&seq| plan.decide(0, 1, seq, 0, Phase::Send) == Some(FaultKind::Drop))
            .count();
        assert!((2000..3000).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn attempts_roll_independently() {
        let plan = FaultPlan::new(5).with_drop(0.5);
        let fates: Vec<_> = (0..16)
            .map(|attempt| plan.decide(0, 1, 0, attempt, Phase::Send))
            .collect();
        // With p = 0.5 over 16 attempts it would be a 1-in-2^15 fluke for
        // all to agree; the seed is fixed so this is a stable assertion.
        assert!(fates.windows(2).any(|w| w[0] != w[1]), "{fates:?}");
    }

    #[test]
    fn link_overrides_take_precedence() {
        let plan = FaultPlan::new(0).with_drop(0.0).with_link(
            2,
            3,
            LinkProbs {
                drop: 1.0,
                ..LinkProbs::default()
            },
        );
        assert_eq!(plan.decide(0, 1, 0, 0, Phase::Send), None);
        assert_eq!(plan.decide(2, 3, 0, 0, Phase::Send), Some(FaultKind::Drop));
    }

    #[test]
    fn phase_scoping_filters_faults() {
        let plan = FaultPlan::new(0).with_drop(1.0).only_during(Phase::Send);
        assert_eq!(plan.decide(0, 1, 0, 0, Phase::Send), Some(FaultKind::Drop));
        assert_eq!(plan.decide(0, 1, 0, 0, Phase::Other), None);
    }

    #[test]
    fn dead_ranks_recorded() {
        let plan = FaultPlan::new(0).with_dead_rank(2).with_dead_rank(5);
        assert!(plan.is_dead(2) && plan.is_dead(5) && !plan.is_dead(0));
        assert_eq!(plan.dead_ranks().collect::<Vec<_>>(), vec![2, 5]);
    }

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse(
            "seed=42, drop=0.1, corrupt=0.05, delay=0.2:300, dead=1+4, corrupt@0-3=0.5",
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.link_probs(9, 9).drop, 0.1);
        assert_eq!(plan.link_probs(9, 9).corrupt, 0.05);
        assert_eq!(plan.link_probs(9, 9).delay, 0.2);
        assert_eq!(plan.delay_us(), 300.0);
        assert!(plan.is_dead(1) && plan.is_dead(4));
        assert_eq!(plan.link_probs(0, 3).corrupt, 0.5);
        // Per-link override inherits the global drop rate as its base.
        assert_eq!(plan.link_probs(0, 3).drop, 0.1);
    }

    #[test]
    fn parse_phase_scope() {
        let plan = FaultPlan::parse("drop=1,phase=send").unwrap();
        assert_eq!(plan.decide(0, 1, 0, 0, Phase::Send), Some(FaultKind::Drop));
        assert_eq!(plan.decide(0, 1, 0, 0, Phase::Pack), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("drop=0.6,corrupt=0.6").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("drop@01=0.5").is_err());
        assert!(FaultPlan::parse("phase=no-such-phase").is_err());
        assert!(FaultPlan::parse("dead=x").is_err());
    }

    #[test]
    fn parse_timed_deaths() {
        let plan = FaultPlan::parse("die=1:500+3:900.5").unwrap();
        assert_eq!(plan.death_time(1), Some(500.0));
        assert_eq!(plan.death_time(3), Some(900.5));
        assert_eq!(plan.death_time(0), None);
        assert!(plan.has_timed_deaths());
        assert_eq!(
            plan.dying_ranks().collect::<Vec<_>>(),
            vec![(1, 500.0), (3, 900.5)]
        );
        // A timed death is not a static death: the rank starts out alive.
        assert!(!plan.is_dead(1));
    }

    #[test]
    fn parse_rejects_malformed_deaths_with_actionable_messages() {
        let err = FaultPlan::parse("die=1").unwrap_err();
        assert!(err.to_string().contains("die=RANK:TIME_US"), "{err}");
        let err = FaultPlan::parse("die=x:500").unwrap_err();
        assert!(err.to_string().contains("bad dying rank"), "{err}");
        let err = FaultPlan::parse("die=1:soon").unwrap_err();
        assert!(err.to_string().contains("bad death time"), "{err}");
        let err = FaultPlan::parse("die=1:-5").unwrap_err();
        assert!(err.to_string().contains(">= 0"), "{err}");
        let err = FaultPlan::parse("die=1:inf").unwrap_err();
        assert!(err.to_string().contains(">= 0"), "{err}");
    }

    #[test]
    fn chaos_plans_are_deterministic_and_valid() {
        for seed in 0..200 {
            let a = FaultPlan::chaos(seed, 8);
            let b = FaultPlan::chaos(seed, 8);
            assert_eq!(a, b, "seed {seed} not reproducible");
            // Probabilities validated by the builders; the death (if any)
            // must spare the source rank.
            assert_eq!(a.death_time(0), None, "seed {seed} killed the source");
        }
        // The generator actually exercises the death path on some seeds.
        assert!(
            (0..200).any(|s| FaultPlan::chaos(s, 8).has_timed_deaths()),
            "no chaos seed in 0..200 schedules a death"
        );
    }

    #[test]
    fn parse_empty_spec_is_benign() {
        let plan = FaultPlan::parse("").unwrap();
        assert_eq!(plan, FaultPlan::new(0));
        assert_eq!(plan.decide(0, 1, 0, 0, Phase::Send), None);
    }

    #[test]
    fn retry_policy_backoff_grows() {
        let rp = RetryPolicy {
            max_retries: 3,
            timeout_us: 10.0,
            backoff: 2.0,
        };
        assert_eq!(rp.timeout_for(0), 10.0);
        assert_eq!(rp.timeout_for(1), 20.0);
        assert_eq!(rp.timeout_for(3), 80.0);
    }
}
