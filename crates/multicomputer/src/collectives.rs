//! Collective operations built on the point-to-point primitives.
//!
//! The paper's distribution phase is exactly a `scatterv` from the source
//! processor ("local sparse arrays … are sent to processors in sequence"),
//! so that is the collective the scheme drivers use. `gather`, `broadcast`
//! and `barrier` round out the set for the examples and the ops crate.
//!
//! All collectives are rooted and implemented as sequential sends from /
//! receives at the root, matching the paper's sequential-send cost model
//! (`p × T_Startup + total_elems × T_Data` charged at the root).

use crate::engine::Env;
use crate::pack::PackBuffer;
use crate::timing::Phase;

/// Scatter one pre-packed buffer to each rank from `root`.
///
/// On the root, `make_buf(dst)` is called for every destination rank in
/// rank order (including the root itself) and the produced buffer is sent.
/// Every rank (root included) then receives and returns its own buffer.
///
/// Send costs are attributed to [`Phase::Send`]; the cost of `make_buf`
/// lands in whatever phase the caller wrapped the call in (typically
/// [`Phase::Pack`] work happens *before* calling this).
pub fn scatterv(
    env: &mut Env,
    root: usize,
    mut make_buf: impl FnMut(usize) -> PackBuffer,
) -> PackBuffer {
    if env.rank() == root {
        for dst in 0..env.nprocs() {
            let buf = make_buf(dst);
            env.send(dst, buf);
        }
    }
    env.recv(root).payload
}

/// Gather one buffer from every rank at `root`.
///
/// Every rank sends `buf` to the root; the root returns all buffers in
/// rank order, everyone else returns an empty vector.
pub fn gather(env: &mut Env, root: usize, buf: PackBuffer) -> Vec<PackBuffer> {
    env.send(root, buf);
    if env.rank() == root {
        (0..env.nprocs()).map(|src| env.recv(src).payload).collect()
    } else {
        Vec::new()
    }
}

/// Broadcast a buffer from `root` to every rank.
pub fn broadcast(env: &mut Env, root: usize, buf: Option<PackBuffer>) -> PackBuffer {
    if env.rank() == root {
        let buf = buf.expect("root must supply the broadcast buffer");
        for dst in 0..env.nprocs() {
            env.send(dst, buf.clone());
        }
    }
    env.recv(root).payload
}

/// Allgather: every rank contributes one buffer and receives everyone's,
/// in rank order. Implemented as direct exchange (`p²` messages), matching
/// the sequential-send cost model used throughout.
pub fn allgather(env: &mut Env, buf: PackBuffer) -> Vec<PackBuffer> {
    for dst in 0..env.nprocs() {
        env.send(dst, buf.clone());
    }
    (0..env.nprocs()).map(|src| env.recv(src).payload).collect()
}

/// Elementwise sum-reduction of equal-length `f64` vectors at `root`,
/// followed by a broadcast — an allreduce. Returns the reduced vector on
/// every rank.
///
/// # Panics
/// Panics if ranks contribute different lengths.
pub fn allreduce_sum(env: &mut Env, values: &[f64]) -> Vec<f64> {
    let mut buf = PackBuffer::with_capacity(values.len() + 1);
    buf.push_u64(values.len() as u64);
    buf.push_f64_slice(values);
    env.send(0, buf);
    if env.rank() == 0 {
        let mut acc = vec![0.0f64; values.len()];
        for src in 0..env.nprocs() {
            let msg = env.recv(src);
            let mut cursor = msg.payload.cursor();
            let len = cursor.read_usize();
            assert_eq!(len, acc.len(), "rank {src} contributed length {len}, expected {}", acc.len());
            for slot in acc.iter_mut() {
                *slot += cursor.read_f64();
            }
        }
        env.charge_ops((acc.len() * env.nprocs()) as u64);
        for dst in 0..env.nprocs() {
            let mut b = PackBuffer::with_capacity(acc.len());
            b.push_f64_slice(&acc);
            env.send(dst, b);
        }
    }
    env.recv(0).payload.cursor().read_f64_vec(values.len())
}

/// Synchronise all ranks: everyone reports to rank 0, rank 0 releases
/// everyone. Costs are attributed to [`Phase::Send`] / [`Phase::Wait`] as
/// usual; wrap in [`Env::phase`] with [`Phase::Other`] to keep them out of
/// scheme aggregates.
pub fn barrier(env: &mut Env) {
    env.phase(Phase::Other, |env| {
        env.send(0, PackBuffer::new());
        if env.rank() == 0 {
            for src in 0..env.nprocs() {
                env.recv(src);
            }
            for dst in 0..env.nprocs() {
                env.send(dst, PackBuffer::new());
            }
        }
        env.recv(0);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Multicomputer;
    use crate::model::MachineModel;

    fn machine(p: usize) -> Multicomputer {
        Multicomputer::virtual_machine(p, MachineModel::new(1.0, 1.0, 1.0))
    }

    #[test]
    fn scatterv_delivers_per_rank_payloads() {
        let got = machine(4).run(|env| {
            let buf = scatterv(env, 0, |dst| {
                let mut b = PackBuffer::new();
                b.push_u64(100 + dst as u64);
                b
            });
            buf.cursor().read_u64()
        });
        assert_eq!(got, vec![100, 101, 102, 103]);
    }

    #[test]
    fn scatterv_nonzero_root() {
        let got = machine(3).run(|env| {
            let buf = scatterv(env, 2, |dst| {
                let mut b = PackBuffer::new();
                b.push_u64(dst as u64 * 2);
                b
            });
            buf.cursor().read_u64()
        });
        assert_eq!(got, vec![0, 2, 4]);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let got = machine(4).run(|env| {
            let mut b = PackBuffer::new();
            b.push_u64(env.rank() as u64 * 10);
            let all = gather(env, 0, b);
            all.iter().map(|b| b.cursor().read_u64()).collect::<Vec<_>>()
        });
        assert_eq!(got[0], vec![0, 10, 20, 30]);
        assert!(got[1].is_empty());
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let got = machine(5).run(|env| {
            let buf = if env.rank() == 1 {
                let mut b = PackBuffer::new();
                b.push_f64(6.75);
                Some(b)
            } else {
                None
            };
            broadcast(env, 1, buf).cursor().read_f64()
        });
        assert_eq!(got, vec![6.75; 5]);
    }

    #[test]
    fn barrier_completes() {
        // Just check that no rank deadlocks and all finish.
        let got = machine(6).run(|env| {
            barrier(env);
            barrier(env);
            env.rank()
        });
        assert_eq!(got, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn allgather_everyone_sees_everyone() {
        let got = machine(4).run(|env| {
            let mut b = PackBuffer::new();
            b.push_u64(env.rank() as u64 * 3);
            let all = allgather(env, b);
            all.iter().map(|b| b.cursor().read_u64()).collect::<Vec<_>>()
        });
        for ranks in got {
            assert_eq!(ranks, vec![0, 3, 6, 9]);
        }
    }

    #[test]
    fn allreduce_sums_elementwise() {
        let got = machine(5).run(|env| {
            let mine = vec![env.rank() as f64, 1.0, -(env.rank() as f64)];
            allreduce_sum(env, &mine)
        });
        // Σ ranks = 10, Σ 1 = 5, Σ -ranks = -10.
        for v in got {
            assert_eq!(v, vec![10.0, 5.0, -10.0]);
        }
    }

    #[test]
    fn collectives_work_on_a_torus() {
        use crate::topology::Topology;
        let m = Multicomputer::virtual_with_topology(
            4,
            MachineModel::new(1.0, 1.0, 1.0).with_hop_cost(2.0),
            Topology::Torus2D { pr: 2, pc: 2 },
        );
        let got = m.run(|env| {
            barrier(env);
            let mut b = PackBuffer::new();
            b.push_u64(env.rank() as u64);
            let all = allgather(env, b);
            barrier(env);
            all.len()
        });
        assert_eq!(got, vec![4; 4]);
    }

    #[test]
    fn scatterv_send_cost_accumulates_at_root() {
        let m = machine(2);
        let (_, ledgers) = m.run_with_ledgers(|env| {
            scatterv(env, 0, |_| {
                let mut b = PackBuffer::new();
                b.push_u64_slice(&[0; 9]);
                b
            });
        });
        // Root sends 2 messages of 9 elems: 2*(1 + 9*1) = 20 µs.
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 20.0);
        assert_eq!(ledgers[1].get(Phase::Send).as_micros(), 0.0);
    }
}
