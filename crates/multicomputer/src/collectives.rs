//! Collective operations built on the point-to-point primitives.
//!
//! The paper's distribution phase is exactly a `scatterv` from the source
//! processor ("local sparse arrays … are sent to processors in sequence"),
//! so that is the collective the scheme drivers use. `gather`, `broadcast`
//! and `barrier` round out the set for the examples and the ops crate.
//!
//! All collectives are rooted and implemented as sequential sends from /
//! receives at the root, matching the paper's sequential-send cost model
//! (`p × T_Startup + total_elems × T_Data` charged at the root).
//!
//! # Fault behavior
//!
//! Every collective returns `Result<_, CommError>` and degrades gracefully
//! under a [`crate::fault::FaultPlan`] with dead ranks: dead peers are
//! skipped (their slot, where one exists, is an empty [`PackBuffer`]), the
//! reduction/barrier hub moves to the lowest *alive* rank, and a rank that
//! is itself dead gets [`CommError::PeerDead`] back immediately so SPMD
//! closures can bail out without deadlocking the survivors. A dead *root*
//! is unrecoverable for rooted collectives and surfaces as `PeerDead` on
//! every alive rank.

use crate::engine::{CommError, Env};
use crate::pack::PackBuffer;
use crate::timing::Phase;

/// Bail out of a collective when the calling rank itself is dead.
fn check_self_alive(env: &Env) -> Result<(), CommError> {
    if env.is_rank_dead(env.rank()) {
        Err(CommError::PeerDead { rank: env.rank() })
    } else {
        Ok(())
    }
}

/// Scatter one pre-packed buffer to each rank from `root`.
///
/// On the root, `make_buf(dst)` is called for every *alive* destination
/// rank in rank order (including the root itself) and the produced buffer
/// is sent. Every alive rank (root included) then receives and returns its
/// own buffer.
///
/// Send costs are attributed to [`Phase::Send`]; the cost of `make_buf`
/// lands in whatever phase the caller wrapped the call in (typically
/// [`Phase::Pack`] work happens *before* calling this).
pub fn scatterv(
    env: &mut Env,
    root: usize,
    mut make_buf: impl FnMut(usize) -> PackBuffer,
) -> Result<PackBuffer, CommError> {
    check_self_alive(env)?;
    env.span("scatterv", |env| {
        if env.rank() == root {
            for dst in 0..env.nprocs() {
                if env.is_rank_dead(dst) {
                    continue;
                }
                let buf = make_buf(dst);
                env.send(dst, buf)?;
            }
        }
        Ok(env.recv(root)?.payload)
    })
}

/// Nonblocking scatter: like [`scatterv`] but the root posts every send
/// with [`Env::isend`] and drains its NIC once with [`Env::wait_all`], so
/// the per-destination `make_buf` work overlaps with the transfers.
///
/// Delivered payloads, wire statistics and receiver clocks are identical to
/// [`scatterv`]; only the root's time attribution changes (and its makespan
/// shrinks whenever `make_buf` does real work between posts). With a fault
/// plan installed the posts degrade to blocking sends and the two
/// collectives are bit-identical.
pub fn iscatterv(
    env: &mut Env,
    root: usize,
    mut make_buf: impl FnMut(usize) -> PackBuffer,
) -> Result<PackBuffer, CommError> {
    check_self_alive(env)?;
    env.span("iscatterv", |env| {
        if env.rank() == root {
            for dst in 0..env.nprocs() {
                if env.is_rank_dead(dst) {
                    continue;
                }
                let buf = make_buf(dst);
                env.isend(dst, buf)?;
            }
            env.wait_all();
        }
        Ok(env.recv(root)?.payload)
    })
}

/// Gather one buffer from every rank at `root`.
///
/// Every alive rank sends `buf` to the root; the root returns one buffer
/// per rank in rank order — dead ranks contribute an empty [`PackBuffer`]
/// placeholder (callers distinguish them via [`Env::is_rank_dead`]).
/// Non-root ranks return an empty vector.
pub fn gather(env: &mut Env, root: usize, buf: PackBuffer) -> Result<Vec<PackBuffer>, CommError> {
    check_self_alive(env)?;
    env.span("gather", |env| {
        env.send(root, buf)?;
        if env.rank() == root {
            (0..env.nprocs())
                .map(|src| {
                    if env.is_rank_dead(src) {
                        Ok(PackBuffer::new())
                    } else {
                        Ok(env.recv(src)?.payload)
                    }
                })
                .collect()
        } else {
            Ok(Vec::new())
        }
    })
}

/// Broadcast a buffer from `root` to every alive rank.
pub fn broadcast(
    env: &mut Env,
    root: usize,
    buf: Option<PackBuffer>,
) -> Result<PackBuffer, CommError> {
    check_self_alive(env)?;
    env.span("broadcast", |env| {
        if env.rank() == root {
            // lint: allow(E002) — documented API contract: the root passes Some(buf)
            let buf = buf.expect("root must supply the broadcast buffer");
            for dst in 0..env.nprocs() {
                if env.is_rank_dead(dst) {
                    continue;
                }
                env.send(dst, buf.clone())?;
            }
        }
        Ok(env.recv(root)?.payload)
    })
}

/// Allgather: every alive rank contributes one buffer and receives
/// everyone's, in rank order (dead ranks' slots are empty placeholder
/// buffers). Implemented as direct exchange (`p²` messages), matching the
/// sequential-send cost model used throughout.
pub fn allgather(env: &mut Env, buf: PackBuffer) -> Result<Vec<PackBuffer>, CommError> {
    check_self_alive(env)?;
    env.span("allgather", |env| {
        for dst in 0..env.nprocs() {
            if env.is_rank_dead(dst) {
                continue;
            }
            env.send(dst, buf.clone())?;
        }
        (0..env.nprocs())
            .map(|src| {
                if env.is_rank_dead(src) {
                    Ok(PackBuffer::new())
                } else {
                    Ok(env.recv(src)?.payload)
                }
            })
            .collect()
    })
}

/// Elementwise sum-reduction of equal-length `f64` vectors over the alive
/// ranks, followed by a broadcast — an allreduce. The hub is the lowest
/// alive rank, so the collective survives the death of rank 0. Returns the
/// reduced vector on every alive rank.
///
/// # Panics
/// Panics if alive ranks contribute different lengths, or no rank is alive.
pub fn allreduce_sum(env: &mut Env, values: &[f64]) -> Result<Vec<f64>, CommError> {
    check_self_alive(env)?;
    env.span("allreduce_sum", |env| {
        let hub = *env
            .alive_ranks()
            .first()
            // lint: allow(E002) — check_self_alive passed, so alive_ranks() contains us
            .expect("allreduce needs at least one alive rank");
        // Checkout from the rank's arena: iterative solvers call allreduce
        // every sweep, and recycling keeps the hub's p-fold churn off the
        // allocator entirely after the first round.
        let mut buf = env.arena().checkout((values.len() + 1) * 8);
        buf.push_u64(values.len() as u64);
        buf.push_f64_slice(values);
        env.send(hub, buf)?;
        if env.rank() == hub {
            let mut acc = vec![0.0f64; values.len()];
            let mut contributors = 0u64;
            for src in 0..env.nprocs() {
                if env.is_rank_dead(src) {
                    continue;
                }
                let msg = env.recv(src)?;
                let mut cursor = msg.payload.cursor();
                let len = cursor.read_usize();
                assert_eq!(
                    len,
                    acc.len(),
                    "rank {src} contributed length {len}, expected {}",
                    acc.len()
                );
                for slot in acc.iter_mut() {
                    *slot += cursor.read_f64();
                }
                contributors += 1;
                env.arena().recycle_bytes(msg.payload.into_bytes());
            }
            env.charge_ops(acc.len() as u64 * contributors);
            for dst in 0..env.nprocs() {
                if env.is_rank_dead(dst) {
                    continue;
                }
                let mut b = env.arena().checkout(acc.len() * 8);
                b.push_f64_slice(&acc);
                env.send(dst, b)?;
            }
        }
        let msg = env.recv(hub)?;
        let out = msg.payload.cursor().read_f64_vec(values.len());
        env.arena().recycle_bytes(msg.payload.into_bytes());
        Ok(out)
    })
}

/// Synchronise all alive ranks: everyone reports to the lowest alive rank,
/// which then releases everyone. Costs are attributed to [`Phase::Send`] /
/// [`Phase::Wait`] as usual; the whole exchange is wrapped in
/// [`Phase::Other`] to keep it out of scheme aggregates.
pub fn barrier(env: &mut Env) -> Result<(), CommError> {
    check_self_alive(env)?;
    let hub = *env
        .alive_ranks()
        .first()
        // lint: allow(E002) — check_self_alive passed, so alive_ranks() contains us
        .expect("barrier needs at least one alive rank");
    env.phase(Phase::Other, |env| {
        env.span("barrier", |env| {
            env.send(hub, PackBuffer::new())?;
            if env.rank() == hub {
                for src in 0..env.nprocs() {
                    if env.is_rank_dead(src) {
                        continue;
                    }
                    env.recv(src)?;
                }
                for dst in 0..env.nprocs() {
                    if env.is_rank_dead(dst) {
                        continue;
                    }
                    env.send(dst, PackBuffer::new())?;
                }
            }
            env.recv(hub)?;
            Ok(())
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Multicomputer;
    use crate::fault::FaultPlan;
    use crate::model::MachineModel;

    fn machine(p: usize) -> Multicomputer {
        Multicomputer::virtual_machine(p, MachineModel::new(1.0, 1.0, 1.0))
    }

    #[test]
    fn scatterv_delivers_per_rank_payloads() {
        let got = machine(4).run(|env| {
            let buf = scatterv(env, 0, |dst| {
                let mut b = PackBuffer::new();
                b.push_u64(100 + dst as u64);
                b
            })
            .unwrap();
            buf.cursor().read_u64()
        });
        assert_eq!(got, vec![100, 101, 102, 103]);
    }

    #[test]
    fn scatterv_nonzero_root() {
        let got = machine(3).run(|env| {
            let buf = scatterv(env, 2, |dst| {
                let mut b = PackBuffer::new();
                b.push_u64(dst as u64 * 2);
                b
            })
            .unwrap();
            buf.cursor().read_u64()
        });
        assert_eq!(got, vec![0, 2, 4]);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let got = machine(4).run(|env| {
            let mut b = PackBuffer::new();
            b.push_u64(env.rank() as u64 * 10);
            let all = gather(env, 0, b).unwrap();
            all.iter()
                .map(|b| b.cursor().read_u64())
                .collect::<Vec<_>>()
        });
        assert_eq!(got[0], vec![0, 10, 20, 30]);
        assert!(got[1].is_empty());
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let got = machine(5).run(|env| {
            let buf = if env.rank() == 1 {
                let mut b = PackBuffer::new();
                b.push_f64(6.75);
                Some(b)
            } else {
                None
            };
            broadcast(env, 1, buf).unwrap().cursor().read_f64()
        });
        assert_eq!(got, vec![6.75; 5]);
    }

    #[test]
    fn barrier_completes() {
        // Just check that no rank deadlocks and all finish.
        let got = machine(6).run(|env| {
            barrier(env).unwrap();
            barrier(env).unwrap();
            env.rank()
        });
        assert_eq!(got, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn allgather_everyone_sees_everyone() {
        let got = machine(4).run(|env| {
            let mut b = PackBuffer::new();
            b.push_u64(env.rank() as u64 * 3);
            let all = allgather(env, b).unwrap();
            all.iter()
                .map(|b| b.cursor().read_u64())
                .collect::<Vec<_>>()
        });
        for ranks in got {
            assert_eq!(ranks, vec![0, 3, 6, 9]);
        }
    }

    #[test]
    fn allreduce_sums_elementwise() {
        let got = machine(5).run(|env| {
            let mine = vec![env.rank() as f64, 1.0, -(env.rank() as f64)];
            allreduce_sum(env, &mine).unwrap()
        });
        // Σ ranks = 10, Σ 1 = 5, Σ -ranks = -10.
        for v in got {
            assert_eq!(v, vec![10.0, 5.0, -10.0]);
        }
    }

    #[test]
    fn collectives_work_on_a_torus() {
        use crate::topology::Topology;
        let m = Multicomputer::virtual_with_topology(
            4,
            MachineModel::new(1.0, 1.0, 1.0).with_hop_cost(2.0),
            Topology::Torus2D { pr: 2, pc: 2 },
        );
        let got = m.run(|env| {
            barrier(env).unwrap();
            let mut b = PackBuffer::new();
            b.push_u64(env.rank() as u64);
            let all = allgather(env, b).unwrap();
            barrier(env).unwrap();
            all.len()
        });
        assert_eq!(got, vec![4; 4]);
    }

    #[test]
    fn scatterv_send_cost_accumulates_at_root() {
        let m = machine(2);
        let (_, ledgers) = m.run_with_ledgers(|env| {
            scatterv(env, 0, |_| {
                let mut b = PackBuffer::new();
                b.push_u64_slice(&[0; 9]);
                b
            })
            .unwrap();
        });
        // Root sends 2 messages of 9 elems: 2*(1 + 9*1) = 20 µs.
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 20.0);
        assert_eq!(ledgers[1].get(Phase::Send).as_micros(), 0.0);
    }

    #[test]
    fn iscatterv_matches_scatterv_payloads_and_receiver_clocks() {
        let run = |nonblocking: bool| {
            let m = machine(4);
            m.run_with_ledgers(move |env| {
                let make = |dst: usize| {
                    let mut b = PackBuffer::new();
                    b.push_u64_slice(&vec![dst as u64; dst + 1]);
                    b
                };
                let buf = if nonblocking {
                    iscatterv(env, 0, make).unwrap()
                } else {
                    scatterv(env, 0, make).unwrap()
                };
                buf.elem_count()
            })
        };
        let (got_nb, ledgers_nb) = run(true);
        let (got_b, ledgers_b) = run(false);
        assert_eq!(got_nb, got_b);
        assert_eq!(got_nb, vec![1, 2, 3, 4]);
        // Root wire totals and every receiver's ledger are identical; only
        // the root's send/wait attribution may differ.
        assert_eq!(ledgers_nb[0].wire(), ledgers_b[0].wire());
        assert_eq!(ledgers_nb[1..], ledgers_b[1..]);
    }

    #[test]
    fn scatterv_skips_dead_ranks_without_deadlock() {
        let plan = FaultPlan::new(0).with_dead_rank(2);
        let m = machine(4).with_faults(plan);
        let got = m.run(|env| {
            match scatterv(env, 0, |dst| {
                let mut b = PackBuffer::new();
                b.push_u64(dst as u64 + 1);
                b
            }) {
                Ok(buf) => buf.cursor().read_u64(),
                Err(CommError::PeerDead { rank }) => 1000 + rank as u64,
                Err(e) => panic!("unexpected error: {e}"),
            }
        });
        assert_eq!(got, vec![1, 2, 1002, 4]);
    }

    #[test]
    fn gather_substitutes_empty_buffers_for_dead_ranks() {
        let plan = FaultPlan::new(0).with_dead_rank(1);
        let m = machine(3).with_faults(plan);
        let got = m.run(|env| {
            let mut b = PackBuffer::new();
            b.push_u64(env.rank() as u64);
            match gather(env, 0, b) {
                Ok(all) => all.iter().map(|b| b.elem_count()).collect::<Vec<_>>(),
                Err(_) => Vec::new(),
            }
        });
        assert_eq!(
            got[0],
            vec![1, 0, 1],
            "dead rank 1 contributes an empty placeholder"
        );
    }

    #[test]
    fn allreduce_and_barrier_survive_death_of_rank_zero() {
        let plan = FaultPlan::new(0).with_dead_rank(0);
        let m = machine(4).with_faults(plan);
        let got = m.run(|env| {
            if env.is_rank_dead(env.rank()) {
                return vec![-1.0];
            }
            barrier(env).unwrap();
            let out = allreduce_sum(env, &[env.rank() as f64]).unwrap();
            barrier(env).unwrap();
            out
        });
        // Alive ranks 1+2+3 = 6; the hub moved to rank 1.
        assert_eq!(got, vec![vec![-1.0], vec![6.0], vec![6.0], vec![6.0]]);
    }
}
