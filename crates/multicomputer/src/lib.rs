#![warn(missing_docs)]

//! A simulated distributed-memory multicomputer.
//!
//! This crate is the substrate on which the `sparsedist-core` distribution
//! schemes run. The paper this workspace reproduces (Lin, Chung & Liu,
//! *"Data Distribution Schemes of Sparse Arrays on Distributed Memory
//! Multicomputers"*, ICPP 2002) evaluated its schemes in C + MPI on a
//! 16-node IBM SP2. No such machine (and no mature Rust MPI binding) is
//! available here, so this crate provides the closest synthetic equivalent
//! that exercises the same code paths:
//!
//! * an **SPMD engine** ([`Multicomputer`]) that runs one OS thread per
//!   simulated processor, connected by point-to-point message channels;
//! * **pack/unpack buffers** ([`pack::PackBuffer`], [`pack::UnpackCursor`])
//!   playing the role of `MPI_Pack`/`MPI_Unpack`;
//! * an **α-β network cost model** ([`model::MachineModel`]) identical in
//!   form to the paper's own analysis (`T_Startup`, `T_Data`,
//!   `T_Operation`), charged on a deterministic **virtual clock**
//!   ([`time::VirtualTime`]); and
//! * **per-phase timing ledgers** ([`timing::PhaseLedger`]) so a scheme can
//!   report the paper's `T_Distribution` / `T_Compression` split.
//!
//! Two timing modes are supported:
//!
//! * [`TimingMode::Virtual`] — every operation and message is *charged* to a
//!   per-processor virtual clock according to the machine model. Message
//!   causality (a receive cannot complete before the matching send finished)
//!   is respected, so results are deterministic and independent of host
//!   scheduling. This is the mode used to regenerate the paper's tables.
//! * [`TimingMode::WallClock`] — phases are measured with `Instant` on the
//!   real host; an optional calibrated per-element wire delay can be
//!   injected to emulate a slower interconnect than shared memory.
//!
//! A deterministic **fault-injection substrate** ([`fault::FaultPlan`])
//! can be installed with [`Multicomputer::with_faults`]: messages are then
//! CRC32-framed and carried by a reliable-delivery layer (ack/nack,
//! timeout with exponential backoff, bounded retransmission — see
//! [`fault::RetryPolicy`]), with every recovery action charged to
//! [`Phase::Retry`] on the virtual clock and counted in the ledger's
//! [`timing::FaultStats`]. Communication failures surface as
//! [`CommError`] values, never panics.
//!
//! An **observability layer** ([`trace`]) records per-rank spans with
//! virtual-clock stamps plus counters/histograms, delivered to a
//! [`trace::TraceSink`] installed via [`Multicomputer::with_trace_sink`].
//! Tracing is purely observational — the clocks and ledgers of a traced
//! run are bit-identical to an untraced one.
//!
//! # Example
//!
//! ```
//! use sparsedist_multicomputer::{Multicomputer, model::MachineModel, pack::PackBuffer};
//! use sparsedist_multicomputer::timing::Phase;
//!
//! let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
//! let results = machine.run(|env| {
//!     if env.rank() == 0 {
//!         for dst in 0..env.nprocs() {
//!             let mut buf = PackBuffer::new();
//!             buf.push_u64(dst as u64 * 10);
//!             env.phase(Phase::Send, |env| env.send(dst, buf)).unwrap();
//!         }
//!     }
//!     let msg = env.recv(0).unwrap();
//!     msg.payload.cursor().read_u64()
//! });
//! assert_eq!(results, vec![0, 10, 20, 30]);
//! ```

pub mod collectives;
pub mod engine;
pub mod exec;
pub mod explore;
pub mod fault;
pub mod model;
pub mod pack;
pub mod progress;
pub mod time;
pub mod timing;
pub mod topology;
pub mod trace;

pub use engine::{CommError, Env, Message, Multicomputer, RecvHandle, TimingMode};
pub use exec::EngineKind;
pub use explore::{explore, Divergence, Exploration};
pub use fault::{FaultKind, FaultPlan, FaultSpecError, LinkProbs, RetryPolicy};
pub use model::MachineModel;
pub use pack::{ArenaStats, PackArena, PackBuffer, PatchError, UnpackCursor};
pub use progress::{NicProgress, TxWindow};
pub use time::VirtualTime;
pub use timing::{render_fault_summary, FaultStats, Phase, PhaseLedger, WireStats};
pub use topology::Topology;
pub use trace::{
    chrome_trace_json, metrics_json, render_phase_table, render_waterfall, MemorySink,
    MetricsRegistry, NullSink, RankTrace, Span, TraceSink,
};
