//! `MPI_Pack`-style buffers.
//!
//! The paper's CFS scheme "packs `RO`, `CO`, and `VL` … into a buffer" and
//! its ED scheme builds a "special buffer `B`". Both are modelled here by
//! [`PackBuffer`]: a contiguous byte buffer with typed append operations
//! and an **element counter**. The element counter matters because the
//! paper charges `T_Data` per *array element* (an index or a value), not
//! per byte; the engine reads it when charging a send.
//!
//! Indices travel as `u64`, values as `f64`, both little-endian, so a
//! buffer has a well-defined wire layout (8 bytes per element) that
//! [`UnpackCursor`] can walk on the receiving side.

use std::fmt;

/// A contiguous send buffer with typed append operations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PackBuffer {
    bytes: Vec<u8>,
    elems: u64,
}

impl PackBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        PackBuffer::default()
    }

    /// An empty buffer with room for `elems` 8-byte elements.
    pub fn with_capacity(elems: usize) -> Self {
        PackBuffer { bytes: Vec::with_capacity(elems * 8), elems: 0 }
    }

    /// Append one index element.
    pub fn push_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self.elems += 1;
    }

    /// Append one value element.
    pub fn push_f64(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self.elems += 1;
    }

    /// Append a run of index elements.
    pub fn push_u64_slice(&mut self, vs: &[u64]) {
        self.bytes.reserve(vs.len() * 8);
        for &v in vs {
            self.bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.elems += vs.len() as u64;
    }

    /// Append a run of `usize` indices (stored as `u64` on the wire).
    pub fn push_usize_slice(&mut self, vs: &[usize]) {
        self.bytes.reserve(vs.len() * 8);
        for &v in vs {
            self.bytes.extend_from_slice(&(v as u64).to_le_bytes());
        }
        self.elems += vs.len() as u64;
    }

    /// Append a run of value elements.
    pub fn push_f64_slice(&mut self, vs: &[f64]) {
        self.bytes.reserve(vs.len() * 8);
        for &v in vs {
            self.bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.elems += vs.len() as u64;
    }

    /// Append a placeholder index element and return its byte offset for a
    /// later [`PackBuffer::patch_u64`]. The ED encoder uses this to write
    /// each `R_i` count before the row's `(C_ij, V_ij)` pairs are known
    /// (Figure 6 of the paper), keeping the encode a single pass.
    pub fn push_u64_placeholder(&mut self) -> usize {
        let at = self.bytes.len();
        self.push_u64(0);
        at
    }

    /// Overwrite the 8 bytes at `at` (from [`PackBuffer::push_u64_placeholder`])
    /// with `v`. Does not change the element count. Fails if `at` is not a
    /// valid 8-byte slot.
    pub fn patch_u64(&mut self, at: usize, v: u64) -> Result<(), PatchError> {
        if at + 8 > self.bytes.len() {
            return Err(PatchError { at, len: self.bytes.len() });
        }
        self.bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Number of logical array elements packed so far (what `T_Data` is
    /// charged against).
    pub fn elem_count(&self) -> u64 {
        self.elems
    }

    /// Wire size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// True if nothing has been packed.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Begin unpacking from the start of the buffer.
    pub fn cursor(&self) -> UnpackCursor<'_> {
        UnpackCursor { bytes: &self.bytes, pos: 0 }
    }

    /// The raw wire bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// IEEE CRC32 of the wire bytes — the frame checksum the
    /// reliable-delivery layer uses to detect payload corruption.
    pub fn crc32(&self) -> u32 {
        crc32(&self.bytes)
    }

    /// Flip one payload bit (used by fault injection to enact a `Corrupt`
    /// fault on a real buffer). No-op on an empty buffer.
    pub fn flip_bit(&mut self, bit: u64) {
        if self.bytes.is_empty() {
            return;
        }
        let nbits = self.bytes.len() as u64 * 8;
        let bit = bit % nbits;
        self.bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
    }
}

/// IEEE 802.3 CRC32 (the `cksum`/zlib polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Error returned by [`PackBuffer::patch_u64`] for an out-of-range slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchError {
    /// Byte offset of the attempted 8-byte write.
    pub at: usize,
    /// Length of the buffer at the time of the write.
    pub len: usize,
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "patch offset {} out of buffer: 8-byte write into a {}-byte buffer",
            self.at, self.len
        )
    }
}

impl std::error::Error for PatchError {}

impl fmt::Display for PackBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackBuffer({} elems, {} bytes)", self.elems, self.bytes.len())
    }
}

/// Error returned when an [`UnpackCursor`] runs past the end of the buffer
/// or is left with trailing bytes it was told to exhaust.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnpackError {
    /// Byte offset at which the failed read started.
    pub at: usize,
    /// Bytes available past that offset.
    pub remaining: usize,
}

impl fmt::Display for UnpackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unpack past end of buffer: 8-byte read at offset {} with only {} bytes left",
            self.at, self.remaining
        )
    }
}

impl std::error::Error for UnpackError {}

/// Sequential reader over a [`PackBuffer`]'s wire bytes.
#[derive(Debug, Clone)]
pub struct UnpackCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> UnpackCursor<'a> {
    fn take8(&mut self) -> Result<[u8; 8], UnpackError> {
        let end = self.pos + 8;
        if end > self.bytes.len() {
            return Err(UnpackError { at: self.pos, remaining: self.bytes.len() - self.pos });
        }
        let mut out = [0u8; 8];
        out.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(out)
    }

    /// Read one index element, panicking on truncation (the common case in
    /// scheme code, where the sender is in the same address space and the
    /// format is known).
    pub fn read_u64(&mut self) -> u64 {
        self.try_read_u64().expect("truncated pack buffer")
    }

    /// Read one index element as `usize`.
    pub fn read_usize(&mut self) -> usize {
        self.read_u64() as usize
    }

    /// Read one value element.
    pub fn read_f64(&mut self) -> f64 {
        self.try_read_f64().expect("truncated pack buffer")
    }

    /// Fallible read of one index element.
    pub fn try_read_u64(&mut self) -> Result<u64, UnpackError> {
        self.take8().map(u64::from_le_bytes)
    }

    /// Fallible read of one value element.
    pub fn try_read_f64(&mut self) -> Result<f64, UnpackError> {
        self.take8().map(f64::from_le_bytes)
    }

    /// Fallible read of one index element as `usize`.
    pub fn try_read_usize(&mut self) -> Result<usize, UnpackError> {
        self.try_read_u64().map(|v| v as usize)
    }

    /// Fallible read of `n` index elements into a fresh vector.
    pub fn try_read_usize_vec(&mut self, n: usize) -> Result<Vec<usize>, UnpackError> {
        (0..n).map(|_| self.try_read_usize()).collect()
    }

    /// Fallible read of `n` value elements into a fresh vector.
    pub fn try_read_f64_vec(&mut self, n: usize) -> Result<Vec<f64>, UnpackError> {
        (0..n).map(|_| self.try_read_f64()).collect()
    }

    /// Read `n` index elements into a fresh vector.
    pub fn read_usize_vec(&mut self, n: usize) -> Vec<usize> {
        (0..n).map(|_| self.read_usize()).collect()
    }

    /// Read `n` value elements into a fresh vector.
    pub fn read_f64_vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.read_f64()).collect()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True if the cursor has consumed the whole buffer.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut b = PackBuffer::new();
        b.push_u64(42);
        b.push_f64(2.5);
        b.push_u64(7);
        assert_eq!(b.elem_count(), 3);
        assert_eq!(b.byte_len(), 24);

        let mut c = b.cursor();
        assert_eq!(c.read_u64(), 42);
        assert_eq!(c.read_f64(), 2.5);
        assert_eq!(c.read_usize(), 7);
        assert!(c.is_exhausted());
    }

    #[test]
    fn round_trip_slices() {
        let mut b = PackBuffer::new();
        b.push_usize_slice(&[1, 2, 3]);
        b.push_f64_slice(&[0.5, -1.5]);
        b.push_u64_slice(&[9, 10]);
        assert_eq!(b.elem_count(), 7);

        let mut c = b.cursor();
        assert_eq!(c.read_usize_vec(3), vec![1, 2, 3]);
        assert_eq!(c.read_f64_vec(2), vec![0.5, -1.5]);
        assert_eq!(c.read_u64(), 9);
        assert_eq!(c.read_u64(), 10);
        assert!(c.is_exhausted());
    }

    #[test]
    fn truncated_read_reports_offset() {
        let mut b = PackBuffer::new();
        b.push_u64(1);
        let mut c = b.cursor();
        c.read_u64();
        let err = c.try_read_u64().unwrap_err();
        assert_eq!(err, UnpackError { at: 8, remaining: 0 });
        assert!(err.to_string().contains("offset 8"));
    }

    #[test]
    #[should_panic(expected = "truncated pack buffer")]
    fn infallible_read_panics_on_truncation() {
        let b = PackBuffer::new();
        let mut c = b.cursor();
        let _ = c.read_f64();
    }

    #[test]
    fn negative_and_special_values_survive() {
        let mut b = PackBuffer::new();
        b.push_f64(-0.0);
        b.push_f64(f64::MAX);
        b.push_f64(f64::MIN_POSITIVE);
        let mut c = b.cursor();
        assert_eq!(c.read_f64(), -0.0);
        assert_eq!(c.read_f64(), f64::MAX);
        assert_eq!(c.read_f64(), f64::MIN_POSITIVE);
    }

    #[test]
    fn with_capacity_does_not_affect_contents() {
        let mut a = PackBuffer::new();
        let mut b = PackBuffer::with_capacity(100);
        a.push_u64(5);
        b.push_u64(5);
        assert_eq!(a, b);
    }

    #[test]
    fn placeholder_patching() {
        let mut b = PackBuffer::new();
        let slot = b.push_u64_placeholder();
        b.push_f64(1.5);
        b.patch_u64(slot, 99).unwrap();
        assert_eq!(b.elem_count(), 2);
        let mut c = b.cursor();
        assert_eq!(c.read_u64(), 99);
        assert_eq!(c.read_f64(), 1.5);
    }

    #[test]
    fn patch_out_of_range_is_an_error() {
        let mut b = PackBuffer::new();
        let err = b.patch_u64(0, 1).unwrap_err();
        assert_eq!(err, PatchError { at: 0, len: 0 });
        assert!(err.to_string().contains("patch offset 0"));
        b.push_u64(7);
        assert_eq!(b.patch_u64(1, 2).unwrap_err(), PatchError { at: 1, len: 8 });
        // The failed patches must not have altered the contents.
        assert_eq!(b.cursor().read_u64(), 7);
    }

    #[test]
    fn crc32_known_vectors_and_sensitivity() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        let mut b = PackBuffer::new();
        b.push_u64(42);
        b.push_f64(1.5);
        let before = b.crc32();
        b.flip_bit(17);
        assert_ne!(b.crc32(), before, "a single bit flip must change the CRC");
        b.flip_bit(17);
        assert_eq!(b.crc32(), before, "flipping back restores it");
    }

    #[test]
    fn flip_bit_on_empty_buffer_is_noop() {
        let mut b = PackBuffer::new();
        b.flip_bit(123);
        assert!(b.is_empty());
    }

    #[test]
    fn empty_buffer_properties() {
        let b = PackBuffer::new();
        assert!(b.is_empty());
        assert_eq!(b.elem_count(), 0);
        assert!(b.cursor().is_exhausted());
    }
}
