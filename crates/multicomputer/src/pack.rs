//! `MPI_Pack`-style buffers.
//!
//! The paper's CFS scheme "packs `RO`, `CO`, and `VL` … into a buffer" and
//! its ED scheme builds a "special buffer `B`". Both are modelled here by
//! [`PackBuffer`]: a contiguous byte buffer with typed append operations
//! and an **element counter**. The element counter matters because the
//! paper charges `T_Data` per *array element* (an index or a value), not
//! per byte; the engine reads it when charging a send.
//!
//! Indices travel as `u64`, values as `f64`, both little-endian, so a
//! buffer has a well-defined wire layout (8 bytes per element) that
//! [`UnpackCursor`] can walk on the receiving side. That is the **v1**
//! layout; the compact **v2** layout built on the narrower primitives here
//! (`u32` fields, LEB128 varints, raw framing bytes) is defined one level
//! up, in `sparsedist-core`'s `wire` module. In every layout the element
//! counter tracks *logical* elements — a varint-encoded index is still one
//! element on the paper's cost model, however few bytes it occupies.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Append a slice of 8-byte values to `out` as little-endian bytes in one
/// `memcpy` when the host layout already matches the wire layout, falling
/// back to a per-element loop on big-endian hosts.
macro_rules! extend_le_bulk {
    ($out:expr, $vs:expr, $ty:ty) => {{
        #[cfg(target_endian = "little")]
        {
            // SAFETY: `$vs` is a valid slice of `$ty`, every bit pattern of
            // which is a plain-old-data 8-byte value; reinterpreting its
            // memory as bytes is sound, and on a little-endian host those
            // bytes are exactly the wire encoding.
            let bytes = unsafe {
                std::slice::from_raw_parts(
                    $vs.as_ptr() as *const u8,
                    $vs.len() * std::mem::size_of::<$ty>(),
                )
            };
            $out.extend_from_slice(bytes);
        }
        #[cfg(not(target_endian = "little"))]
        {
            $out.reserve($vs.len() * std::mem::size_of::<$ty>());
            for &v in $vs {
                $out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }};
}

/// A contiguous send buffer with typed append operations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PackBuffer {
    bytes: Vec<u8>,
    elems: u64,
}

impl PackBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        PackBuffer::default()
    }

    /// An empty buffer with room for `elems` 8-byte elements.
    pub fn with_capacity(elems: usize) -> Self {
        PackBuffer {
            bytes: Vec::with_capacity(elems * 8),
            elems: 0,
        }
    }

    /// Append one index element.
    pub fn push_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self.elems += 1;
    }

    /// Append one value element.
    pub fn push_f64(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self.elems += 1;
    }

    /// Append a run of index elements in one bulk byte copy.
    pub fn push_u64_slice(&mut self, vs: &[u64]) {
        extend_le_bulk!(self.bytes, vs, u64);
        self.elems += vs.len() as u64;
    }

    /// Append a run of `usize` indices (stored as `u64` on the wire) in one
    /// bulk byte copy where the host layout permits.
    pub fn push_usize_slice(&mut self, vs: &[usize]) {
        #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
        {
            extend_le_bulk!(self.bytes, vs, usize);
        }
        #[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
        {
            self.bytes.reserve(vs.len() * 8);
            for &v in vs {
                self.bytes.extend_from_slice(&(v as u64).to_le_bytes());
            }
        }
        self.elems += vs.len() as u64;
    }

    /// Append a run of value elements in one bulk byte copy.
    pub fn push_f64_slice(&mut self, vs: &[f64]) {
        extend_le_bulk!(self.bytes, vs, f64);
        self.elems += vs.len() as u64;
    }

    /// Append one narrow (4-byte) index element — the v2 wire format's
    /// `IDX32` encoding for arrays whose dimensions fit in `u32`.
    pub fn push_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self.elems += 1;
    }

    /// Append a run of narrow index elements in one bulk byte copy.
    pub fn push_u32_slice(&mut self, vs: &[u32]) {
        extend_le_bulk!(self.bytes, vs, u32);
        self.elems += vs.len() as u64;
    }

    /// Append one index element as an LEB128 varint (1–10 bytes). Counts as
    /// one logical element regardless of its encoded width.
    pub fn push_varint(&mut self, mut v: u64) {
        loop {
            // lint: allow(W001) — masked to 7 bits, the cast cannot truncate
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.bytes.push(byte);
                break;
            }
            self.bytes.push(byte | 0x80);
        }
        self.elems += 1;
    }

    /// Append raw framing bytes (headers, magics) that are **not** logical
    /// array elements: the element counter is unchanged, so `T_Data`
    /// charges stay at paper semantics.
    pub fn push_raw(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Append a byte range that *does* represent logical elements, crediting
    /// exactly `elems` of them. This is the chunked-streaming primitive: a
    /// large packed buffer is split into byte ranges (which need not align
    /// with element boundaries) and each chunk frame re-credits its share of
    /// the original element count, so the per-chunk wire charges sum to the
    /// unchunked `T_Data` total.
    pub fn push_chunk(&mut self, bytes: &[u8], elems: u64) {
        self.bytes.extend_from_slice(bytes);
        self.elems += elems;
    }

    /// Append a placeholder index element and return its byte offset for a
    /// later [`PackBuffer::patch_u64`]. The ED encoder uses this to write
    /// each `R_i` count before the row's `(C_ij, V_ij)` pairs are known
    /// (Figure 6 of the paper), keeping the encode a single pass.
    pub fn push_u64_placeholder(&mut self) -> usize {
        let at = self.bytes.len();
        self.push_u64(0);
        at
    }

    /// Overwrite the 8 bytes at `at` (from [`PackBuffer::push_u64_placeholder`])
    /// with `v`. Does not change the element count. Fails if `at` is not a
    /// valid 8-byte slot.
    pub fn patch_u64(&mut self, at: usize, v: u64) -> Result<(), PatchError> {
        if at + 8 > self.bytes.len() {
            return Err(PatchError {
                at,
                len: self.bytes.len(),
            });
        }
        self.bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Append a placeholder narrow (4-byte) index element and return its
    /// byte offset for a later [`PackBuffer::patch_u32`] — the v2 analogue
    /// of [`PackBuffer::push_u64_placeholder`].
    pub fn push_u32_placeholder(&mut self) -> usize {
        let at = self.bytes.len();
        self.push_u32(0);
        at
    }

    /// Overwrite the 4 bytes at `at` (from [`PackBuffer::push_u32_placeholder`])
    /// with `v`. Does not change the element count.
    pub fn patch_u32(&mut self, at: usize, v: u32) -> Result<(), PatchError> {
        if at + 4 > self.bytes.len() {
            return Err(PatchError {
                at,
                len: self.bytes.len(),
            });
        }
        self.bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Number of logical array elements packed so far (what `T_Data` is
    /// charged against).
    pub fn elem_count(&self) -> u64 {
        self.elems
    }

    /// Wire size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// True if nothing has been packed.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Begin unpacking from the start of the buffer.
    pub fn cursor(&self) -> UnpackCursor<'_> {
        UnpackCursor {
            bytes: &self.bytes,
            pos: 0,
        }
    }

    /// The raw wire bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// IEEE CRC32 of the wire bytes — the frame checksum the
    /// reliable-delivery layer uses to detect payload corruption.
    pub fn crc32(&self) -> u32 {
        crc32(&self.bytes)
    }

    /// Flip one payload bit (used by fault injection to enact a `Corrupt`
    /// fault on a real buffer). No-op on an empty buffer.
    pub fn flip_bit(&mut self, bit: u64) {
        if self.bytes.is_empty() {
            return;
        }
        let nbits = self.bytes.len() as u64 * 8;
        let bit = bit % nbits;
        // lint: allow(W002) — bit < nbits = len·8, so bit/8 < len fits usize
        self.bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
    }

    /// Consume the buffer, returning its backing byte storage (for
    /// recycling through a [`PackArena`]).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// A per-rank pool of backing byte vectors for [`PackBuffer`]s.
///
/// Repeated distributions allocate and drop one send buffer per part per
/// run; the arena keeps the freed allocations so the next run's
/// [`PackArena::checkout`] reuses them instead of growing fresh vectors
/// from zero. Thread-safe (the engine hands one arena per rank across
/// scoped threads) and deterministic: recycling only changes *where* the
/// bytes live, never what is written into them.
#[derive(Debug, Default)]
pub struct PackArena {
    free: Mutex<Vec<Vec<u8>>>,
    checkouts: AtomicU64,
    reuses: AtomicU64,
    recycles: AtomicU64,
}

/// Cumulative allocation-reuse counters of a [`PackArena`], since the
/// arena was created (arenas persist across `run_*` calls). Counted with
/// relaxed atomics — totals are exact, cross-thread ordering is not
/// observable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers handed out by [`PackArena::checkout`].
    pub checkouts: u64,
    /// Checkouts served from the pool instead of a fresh allocation.
    pub reuses: u64,
    /// Allocations returned to the pool.
    pub recycles: u64,
}

impl PackArena {
    /// An empty arena.
    pub fn new() -> Self {
        PackArena::default()
    }

    /// Take a cleared buffer with at least `cap_bytes` of capacity,
    /// preferring a recycled allocation over a fresh one.
    pub fn checkout(&self, cap_bytes: usize) -> PackBuffer {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        // lint: allow(E002) — a poisoned arena means a rank panicked; propagate
        let mut free = self.free.lock().expect("pack arena poisoned");
        // Largest vectors are kept at the back; take the biggest available
        // so one hot buffer stops the whole pool from re-growing.
        let bytes = match free.pop() {
            Some(mut v) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                v.clear();
                if v.capacity() < cap_bytes {
                    v.reserve(cap_bytes);
                }
                v
            }
            None => Vec::with_capacity(cap_bytes),
        };
        PackBuffer { bytes, elems: 0 }
    }

    /// Return a buffer's backing storage to the pool.
    pub fn recycle(&self, buf: PackBuffer) {
        self.recycle_bytes(buf.into_bytes());
    }

    /// Return raw backing storage to the pool (what
    /// [`PackBuffer::into_bytes`] yields).
    pub fn recycle_bytes(&self, bytes: Vec<u8>) {
        if bytes.capacity() == 0 {
            return;
        }
        self.recycles.fetch_add(1, Ordering::Relaxed);
        // lint: allow(E002) — a poisoned arena means a rank panicked; propagate
        let mut free = self.free.lock().expect("pack arena poisoned");
        free.push(bytes);
        free.sort_by_key(Vec::capacity);
    }

    /// Number of pooled allocations currently available.
    pub fn pooled(&self) -> usize {
        // lint: allow(E002) — a poisoned arena means a rank panicked; propagate
        self.free.lock().expect("pack arena poisoned").len()
    }

    /// Cumulative checkout/reuse/recycle counters — the engine folds these
    /// into each rank's metrics registry when tracing.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            recycles: self.recycles.load(Ordering::Relaxed),
        }
    }
}

/// IEEE 802.3 CRC32 (the `cksum`/zlib polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            // lint: allow(W001) — table index i < 256 always fits in u32
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        // lint: allow(W002) — masked to 8 bits, the table index fits usize
        c = table[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Error returned by [`PackBuffer::patch_u64`] for an out-of-range slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchError {
    /// Byte offset of the attempted 8-byte write.
    pub at: usize,
    /// Length of the buffer at the time of the write.
    pub len: usize,
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "patch offset {} out of buffer: 8-byte write into a {}-byte buffer",
            self.at, self.len
        )
    }
}

impl std::error::Error for PatchError {}

impl fmt::Display for PackBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PackBuffer({} elems, {} bytes)",
            self.elems,
            self.bytes.len()
        )
    }
}

/// Error returned when an [`UnpackCursor`] runs past the end of the buffer
/// or is left with trailing bytes it was told to exhaust.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnpackError {
    /// Byte offset at which the failed read started.
    pub at: usize,
    /// Bytes available past that offset.
    pub remaining: usize,
}

impl fmt::Display for UnpackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unpack past end of buffer: 8-byte read at offset {} with only {} bytes left",
            self.at, self.remaining
        )
    }
}

impl std::error::Error for UnpackError {}

/// Sequential reader over a [`PackBuffer`]'s wire bytes.
#[derive(Debug, Clone)]
pub struct UnpackCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> UnpackCursor<'a> {
    fn take8(&mut self) -> Result<[u8; 8], UnpackError> {
        let end = self.pos + 8;
        if end > self.bytes.len() {
            return Err(UnpackError {
                at: self.pos,
                remaining: self.bytes.len() - self.pos,
            });
        }
        let mut out = [0u8; 8];
        out.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(out)
    }

    /// Read one index element, panicking on truncation (the common case in
    /// scheme code, where the sender is in the same address space and the
    /// format is known).
    pub fn read_u64(&mut self) -> u64 {
        // lint: allow(E002) — documented panicking convenience over try_read_u64
        self.try_read_u64().expect("truncated pack buffer")
    }

    /// Read one index element as `usize`.
    pub fn read_usize(&mut self) -> usize {
        // lint: allow(W002) — same-address-space reads of values packed from usize
        self.read_u64() as usize
    }

    /// Read one value element.
    pub fn read_f64(&mut self) -> f64 {
        // lint: allow(E002) — documented panicking convenience over try_read_f64
        self.try_read_f64().expect("truncated pack buffer")
    }

    /// Fallible read of one index element.
    pub fn try_read_u64(&mut self) -> Result<u64, UnpackError> {
        self.take8().map(u64::from_le_bytes)
    }

    /// Fallible read of one narrow (4-byte) index element.
    pub fn try_read_u32(&mut self) -> Result<u32, UnpackError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(UnpackError {
                at: self.pos,
                remaining: self.bytes.len() - self.pos,
            });
        }
        let mut out = [0u8; 4];
        out.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(u32::from_le_bytes(out))
    }

    /// Read one narrow index element, panicking on truncation.
    pub fn read_u32(&mut self) -> u32 {
        // lint: allow(E002) — documented panicking convenience over try_read_u32
        self.try_read_u32().expect("truncated pack buffer")
    }

    /// Fallible read of one LEB128 varint element (at most 10 bytes).
    /// Reports truncation and over-long encodings as an [`UnpackError`] at
    /// the varint's first byte.
    pub fn try_read_varint(&mut self) -> Result<u64, UnpackError> {
        let start = self.pos;
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let Some(&byte) = self.bytes.get(self.pos) else {
                return Err(UnpackError {
                    at: start,
                    remaining: self.bytes.len() - start,
                });
            };
            self.pos += 1;
            if shift == 63 && byte > 1 {
                // An over-long encoding would overflow 64 bits.
                return Err(UnpackError {
                    at: start,
                    remaining: self.bytes.len() - start,
                });
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Read one varint element, panicking on truncation.
    pub fn read_varint(&mut self) -> u64 {
        // lint: allow(E002) — documented panicking convenience over try_read_varint
        self.try_read_varint().expect("truncated pack buffer")
    }

    /// Fallible read of `n` raw framing bytes (headers, magics).
    pub fn try_read_raw(&mut self, n: usize) -> Result<&'a [u8], UnpackError> {
        let end = self.pos + n;
        if end > self.bytes.len() {
            return Err(UnpackError {
                at: self.pos,
                remaining: self.bytes.len() - self.pos,
            });
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Fallible read of one value element.
    pub fn try_read_f64(&mut self) -> Result<f64, UnpackError> {
        self.take8().map(f64::from_le_bytes)
    }

    /// Fallible read of one index element as `usize`.
    pub fn try_read_usize(&mut self) -> Result<usize, UnpackError> {
        // lint: allow(W002) — same-address-space reads of values packed from usize
        self.try_read_u64().map(|v| v as usize)
    }

    /// Fallible read of `n` index elements into a fresh vector.
    pub fn try_read_usize_vec(&mut self, n: usize) -> Result<Vec<usize>, UnpackError> {
        (0..n).map(|_| self.try_read_usize()).collect()
    }

    /// Fallible read of `n` value elements into a fresh vector.
    pub fn try_read_f64_vec(&mut self, n: usize) -> Result<Vec<f64>, UnpackError> {
        (0..n).map(|_| self.try_read_f64()).collect()
    }

    /// Read `n` index elements into a fresh vector.
    pub fn read_usize_vec(&mut self, n: usize) -> Vec<usize> {
        (0..n).map(|_| self.read_usize()).collect()
    }

    /// Read `n` value elements into a fresh vector.
    pub fn read_f64_vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.read_f64()).collect()
    }

    /// Byte offset of the next read — how much of the buffer has been
    /// consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True if the cursor has consumed the whole buffer.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut b = PackBuffer::new();
        b.push_u64(42);
        b.push_f64(2.5);
        b.push_u64(7);
        assert_eq!(b.elem_count(), 3);
        assert_eq!(b.byte_len(), 24);

        let mut c = b.cursor();
        assert_eq!(c.read_u64(), 42);
        assert_eq!(c.read_f64(), 2.5);
        assert_eq!(c.read_usize(), 7);
        assert!(c.is_exhausted());
    }

    #[test]
    fn round_trip_slices() {
        let mut b = PackBuffer::new();
        b.push_usize_slice(&[1, 2, 3]);
        b.push_f64_slice(&[0.5, -1.5]);
        b.push_u64_slice(&[9, 10]);
        assert_eq!(b.elem_count(), 7);

        let mut c = b.cursor();
        assert_eq!(c.read_usize_vec(3), vec![1, 2, 3]);
        assert_eq!(c.read_f64_vec(2), vec![0.5, -1.5]);
        assert_eq!(c.read_u64(), 9);
        assert_eq!(c.read_u64(), 10);
        assert!(c.is_exhausted());
    }

    #[test]
    fn truncated_read_reports_offset() {
        let mut b = PackBuffer::new();
        b.push_u64(1);
        let mut c = b.cursor();
        c.read_u64();
        let err = c.try_read_u64().unwrap_err();
        assert_eq!(
            err,
            UnpackError {
                at: 8,
                remaining: 0
            }
        );
        assert!(err.to_string().contains("offset 8"));
    }

    #[test]
    #[should_panic(expected = "truncated pack buffer")]
    fn infallible_read_panics_on_truncation() {
        let b = PackBuffer::new();
        let mut c = b.cursor();
        let _ = c.read_f64();
    }

    #[test]
    fn negative_and_special_values_survive() {
        let mut b = PackBuffer::new();
        b.push_f64(-0.0);
        b.push_f64(f64::MAX);
        b.push_f64(f64::MIN_POSITIVE);
        let mut c = b.cursor();
        assert_eq!(c.read_f64(), -0.0);
        assert_eq!(c.read_f64(), f64::MAX);
        assert_eq!(c.read_f64(), f64::MIN_POSITIVE);
    }

    #[test]
    fn with_capacity_does_not_affect_contents() {
        let mut a = PackBuffer::new();
        let mut b = PackBuffer::with_capacity(100);
        a.push_u64(5);
        b.push_u64(5);
        assert_eq!(a, b);
    }

    #[test]
    fn placeholder_patching() {
        let mut b = PackBuffer::new();
        let slot = b.push_u64_placeholder();
        b.push_f64(1.5);
        b.patch_u64(slot, 99).unwrap();
        assert_eq!(b.elem_count(), 2);
        let mut c = b.cursor();
        assert_eq!(c.read_u64(), 99);
        assert_eq!(c.read_f64(), 1.5);
    }

    #[test]
    fn patch_out_of_range_is_an_error() {
        let mut b = PackBuffer::new();
        let err = b.patch_u64(0, 1).unwrap_err();
        assert_eq!(err, PatchError { at: 0, len: 0 });
        assert!(err.to_string().contains("patch offset 0"));
        b.push_u64(7);
        assert_eq!(b.patch_u64(1, 2).unwrap_err(), PatchError { at: 1, len: 8 });
        // The failed patches must not have altered the contents.
        assert_eq!(b.cursor().read_u64(), 7);
    }

    #[test]
    fn crc32_known_vectors_and_sensitivity() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        let mut b = PackBuffer::new();
        b.push_u64(42);
        b.push_f64(1.5);
        let before = b.crc32();
        b.flip_bit(17);
        assert_ne!(b.crc32(), before, "a single bit flip must change the CRC");
        b.flip_bit(17);
        assert_eq!(b.crc32(), before, "flipping back restores it");
    }

    #[test]
    fn flip_bit_on_empty_buffer_is_noop() {
        let mut b = PackBuffer::new();
        b.flip_bit(123);
        assert!(b.is_empty());
    }

    #[test]
    fn empty_buffer_properties() {
        let b = PackBuffer::new();
        assert!(b.is_empty());
        assert_eq!(b.elem_count(), 0);
        assert!(b.cursor().is_exhausted());
    }

    #[test]
    fn bulk_slice_pushes_match_scalar_pushes() {
        let us: Vec<usize> = vec![0, 1, 255, 256, 1 << 20, usize::MAX >> 1];
        let fs: Vec<f64> = vec![0.0, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, -7.25];
        let mut bulk = PackBuffer::new();
        bulk.push_usize_slice(&us);
        bulk.push_f64_slice(&fs);
        bulk.push_u64_slice(&[3, u64::MAX]);
        let mut scalar = PackBuffer::new();
        for &v in &us {
            scalar.push_u64(v as u64);
        }
        for &v in &fs {
            scalar.push_f64(v);
        }
        scalar.push_u64(3);
        scalar.push_u64(u64::MAX);
        assert_eq!(
            bulk, scalar,
            "bulk pushes must be byte-identical to scalar pushes"
        );
    }

    #[test]
    fn u32_round_trip_and_placeholder() {
        let mut b = PackBuffer::new();
        let slot = b.push_u32_placeholder();
        b.push_u32_slice(&[7, u32::MAX]);
        b.patch_u32(slot, 42).unwrap();
        assert_eq!(b.elem_count(), 3);
        assert_eq!(b.byte_len(), 12);
        let mut c = b.cursor();
        assert_eq!(c.read_u32(), 42);
        assert_eq!(c.read_u32(), 7);
        assert_eq!(c.read_u32(), u32::MAX);
        assert!(c.is_exhausted());
        assert_eq!(
            b.patch_u32(9, 0).unwrap_err(),
            PatchError { at: 9, len: 12 }
        );
    }

    #[test]
    fn varint_round_trip_boundaries() {
        let vals = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        let mut b = PackBuffer::new();
        for &v in &vals {
            b.push_varint(v);
        }
        assert_eq!(b.elem_count(), vals.len() as u64);
        let mut c = b.cursor();
        for &v in &vals {
            assert_eq!(c.read_varint(), v);
        }
        assert!(c.is_exhausted());
        // Encoded widths: 0..127 take one byte, u64::MAX takes ten.
        let mut one = PackBuffer::new();
        one.push_varint(127);
        assert_eq!(one.byte_len(), 1);
        let mut ten = PackBuffer::new();
        ten.push_varint(u64::MAX);
        assert_eq!(ten.byte_len(), 10);
    }

    #[test]
    fn varint_truncation_and_overlong_are_errors() {
        let mut b = PackBuffer::new();
        b.push_raw(&[0x80, 0x80]); // continuation bits with no terminator
        assert!(b.cursor().try_read_varint().is_err());
        let mut o = PackBuffer::new();
        o.push_raw(&[0xff; 10]); // 10th byte would overflow 64 bits
        assert!(o.cursor().try_read_varint().is_err());
    }

    #[test]
    fn raw_bytes_do_not_count_as_elements() {
        let mut b = PackBuffer::new();
        b.push_raw(&[b'S', b'2', 3]);
        b.push_u64(5);
        assert_eq!(b.elem_count(), 1, "framing bytes are not logical elements");
        assert_eq!(b.byte_len(), 11);
        let mut c = b.cursor();
        assert_eq!(c.try_read_raw(3).unwrap(), &[b'S', b'2', 3]);
        assert_eq!(c.read_u64(), 5);
        assert!(c.try_read_raw(1).is_err());
    }

    #[test]
    fn chunks_credit_their_element_share() {
        // Split a 3-element buffer into two byte-level chunks; the credited
        // element counts sum back to the original regardless of where the
        // byte split landed.
        let mut whole = PackBuffer::new();
        whole.push_u64_slice(&[7, 8, 9]);
        let bytes = whole.as_bytes();
        let mut first = PackBuffer::new();
        first.push_chunk(&bytes[..10], 2);
        let mut second = PackBuffer::new();
        second.push_chunk(&bytes[10..], 1);
        assert_eq!(first.elem_count() + second.elem_count(), whole.elem_count());
        assert_eq!(first.byte_len() + second.byte_len(), whole.byte_len());
        let mut joined = PackBuffer::new();
        joined.push_chunk(first.as_bytes(), first.elem_count());
        joined.push_chunk(second.as_bytes(), second.elem_count());
        assert_eq!(joined.as_bytes(), whole.as_bytes());
        assert_eq!(joined.elem_count(), 3);
    }

    #[test]
    fn arena_recycles_backing_storage() {
        let arena = PackArena::new();
        let mut b = arena.checkout(1024);
        b.push_u64_slice(&[1, 2, 3]);
        let cap = b.bytes.capacity();
        arena.recycle(b);
        assert_eq!(arena.pooled(), 1);
        let b2 = arena.checkout(8);
        assert_eq!(
            arena.pooled(),
            0,
            "checkout must reuse the pooled allocation"
        );
        assert!(b2.is_empty(), "recycled buffers come back cleared");
        assert!(b2.bytes.capacity() >= cap);
        // Recycling an unallocated buffer is a no-op.
        arena.recycle(PackBuffer::new());
        assert_eq!(arena.pooled(), 0);
    }

    #[test]
    fn arena_hands_out_largest_allocation_first() {
        let arena = PackArena::new();
        arena.recycle_bytes(Vec::with_capacity(16));
        arena.recycle_bytes(Vec::with_capacity(4096));
        arena.recycle_bytes(Vec::with_capacity(256));
        let b = arena.checkout(0);
        assert!(b.bytes.capacity() >= 4096);
        assert_eq!(arena.pooled(), 2);
    }
}
