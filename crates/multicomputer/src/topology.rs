//! Interconnect topologies.
//!
//! The α-β model of [`crate::model::MachineModel`] prices every message the
//! same regardless of which pair of processors exchanges it — a fully
//! connected (crossbar-like) network, which matches both the paper's
//! analysis and its SP2 testbed (a multistage switch). Real distributed
//! memory multicomputers of the era were often rings, meshes or tori where
//! a message crosses several links; with wormhole routing the cost model
//! becomes
//!
//! ```text
//! T(msg) = T_Startup + hops(src, dst) · T_Hop + elems · T_Data
//! ```
//!
//! This module supplies the `hops` function for the classic topologies so
//! the ablation benches can ask how sensitive the SFC/CFS/ED ranking is to
//! the interconnect (answer: barely — the per-element term dominates —
//! which is itself worth demonstrating).

/// An interconnect topology: how many links a message crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every pair one hop apart (the paper's implicit model).
    FullyConnected,
    /// A bidirectional ring of `p` processors.
    Ring,
    /// A `pr × pc` mesh without wraparound (rank `i·pc + j` at grid
    /// position `(i, j)`), Manhattan routing.
    Mesh2D {
        /// Grid rows.
        pr: usize,
        /// Grid columns.
        pc: usize,
    },
    /// A `pr × pc` torus (mesh with wraparound links).
    Torus2D {
        /// Grid rows.
        pr: usize,
        /// Grid columns.
        pc: usize,
    },
}

impl Topology {
    /// Number of links a message from `src` to `dst` crosses on a
    /// `p`-processor machine. Self-messages cost zero hops.
    ///
    /// # Panics
    /// Panics if a grid topology's dimensions do not multiply to `p`, or a
    /// rank is out of range.
    pub fn hops(&self, src: usize, dst: usize, p: usize) -> usize {
        assert!(src < p && dst < p, "ranks {src},{dst} out of 0..{p}");
        if src == dst {
            return 0;
        }
        match *self {
            Topology::FullyConnected => 1,
            Topology::Ring => {
                let d = src.abs_diff(dst);
                d.min(p - d)
            }
            Topology::Mesh2D { pr, pc } => {
                assert_eq!(pr * pc, p, "mesh {pr}x{pc} != p={p}");
                let (si, sj) = (src / pc, src % pc);
                let (di, dj) = (dst / pc, dst % pc);
                si.abs_diff(di) + sj.abs_diff(dj)
            }
            Topology::Torus2D { pr, pc } => {
                assert_eq!(pr * pc, p, "torus {pr}x{pc} != p={p}");
                let (si, sj) = (src / pc, src % pc);
                let (di, dj) = (dst / pc, dst % pc);
                let dr = si.abs_diff(di);
                let dc = sj.abs_diff(dj);
                dr.min(pr - dr) + dc.min(pc - dc)
            }
        }
    }

    /// The largest hop count between any pair (the network diameter).
    pub fn diameter(&self, p: usize) -> usize {
        (0..p)
            .flat_map(|s| (0..p).map(move |d| (s, d)))
            .map(|(s, d)| self.hops(s, d, p))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_is_one_hop() {
        let t = Topology::FullyConnected;
        assert_eq!(t.hops(0, 5, 8), 1);
        assert_eq!(t.hops(3, 3, 8), 0);
        assert_eq!(t.diameter(8), 1);
    }

    #[test]
    fn ring_takes_shorter_way_round() {
        let t = Topology::Ring;
        assert_eq!(t.hops(0, 1, 8), 1);
        assert_eq!(t.hops(0, 7, 8), 1); // wraparound
        assert_eq!(t.hops(0, 4, 8), 4);
        assert_eq!(t.hops(1, 6, 8), 3);
        assert_eq!(t.diameter(8), 4);
    }

    #[test]
    fn mesh_is_manhattan() {
        let t = Topology::Mesh2D { pr: 3, pc: 4 };
        assert_eq!(t.hops(0, 11, 12), 2 + 3); // (0,0) → (2,3)
        assert_eq!(t.hops(5, 6, 12), 1); // (1,1) → (1,2)
        assert_eq!(t.diameter(12), 5);
    }

    #[test]
    fn torus_wraps_both_dimensions() {
        let t = Topology::Torus2D { pr: 4, pc: 4 };
        assert_eq!(t.hops(0, 15, 16), 2); // (0,0) → (3,3) wraps to 1+1
        assert_eq!(t.hops(0, 10, 16), 4); // (0,0) → (2,2): 2+2, no shortcut
        assert_eq!(t.diameter(16), 4);
        // A torus never exceeds the matching mesh.
        let mesh = Topology::Mesh2D { pr: 4, pc: 4 };
        for s in 0..16 {
            for d in 0..16 {
                assert!(t.hops(s, d, 16) <= mesh.hops(s, d, 16));
            }
        }
    }

    #[test]
    fn hops_symmetric() {
        for t in [
            Topology::FullyConnected,
            Topology::Ring,
            Topology::Mesh2D { pr: 2, pc: 6 },
            Topology::Torus2D { pr: 3, pc: 4 },
        ] {
            for s in 0..12 {
                for d in 0..12 {
                    assert_eq!(t.hops(s, d, 12), t.hops(d, s, 12), "{t:?} {s}->{d}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "mesh 2x2 != p=8")]
    fn bad_grid_panics() {
        let _ = Topology::Mesh2D { pr: 2, pc: 2 }.hops(0, 1, 8);
    }
}
