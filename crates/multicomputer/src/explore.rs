//! Exhaustive schedule exploration for the event-loop engine — the
//! dynamic twin of the `sparsedist-lint` C rules (`sparsedist simcheck`).
//!
//! The static analyzer proves syntactic communication-safety properties
//! (awaits only on receives, every post reaches its drain); this module
//! checks the *semantic* claim those properties serve: the protocol's
//! outcome — ledgers, locals, owners — is independent of message-delivery
//! order, and no delivery order deadlocks. The event-loop scheduler in
//! [`crate::exec`] normally pops a FIFO ready queue, which fixes one
//! canonical interleaving; here we drive the loop through *every*
//! interleaving instead and compare.
//!
//! # How the sweep works
//!
//! The scheduler consults a pluggable override (`exec::ScheduleGuard`) at
//! each step where the ready set offers a real choice (width > 1; width-1
//! steps have a single successor state, so branching there would only
//! multiply identical runs — the DPOR-lite reduction). Each run records
//! its `(width, choice)` trace. The explorer then performs a depth-first
//! sweep by *replay*: rerun with the same choice prefix up to the deepest
//! branch point that still has an untaken sibling, take that sibling, and
//! default to choice 0 beyond. When no branch point has a sibling left,
//! the tree is exhausted — every reachable delivery schedule has run.
//!
//! Replay works because a run is a pure function of its choice sequence:
//! the engine uses no wall clock, no entropy and no unordered collections
//! (the lint D rules police this), so the same prefix always reproduces
//! the same branch points. The explorer is generic over the outcome type:
//! callers digest whatever must be schedule-invariant (ledger bytes,
//! reassembled arrays, typed errors) into a `PartialEq` value, and
//! [`explore`] reports the first schedule whose digest diverges from the
//! first run's, if any.
//!
//! State-space caveat: the sweep is exhaustive over *delivery orders for
//! one fixed program*, not over programs or fault seeds — drive it once
//! per (scheme, partition, fault plan) configuration of interest. Tree
//! size is exponential in ready-set width, which is why `simcheck` caps
//! machines at a handful of ranks.

use crate::exec::ScheduleGuard;

/// The result of exploring every delivery schedule of one configuration
/// (see [`explore`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration<T> {
    /// The canonical outcome: what the first (all-FIFO) schedule produced.
    pub baseline: T,
    /// How many distinct schedules ran.
    pub schedules: usize,
    /// True when the sweep hit `max_schedules` with unexplored branches
    /// remaining — the verdict then covers only the schedules that ran.
    pub truncated: bool,
    /// The first schedule whose outcome differed from `baseline`, if any.
    /// `None` means every explored schedule agreed bit-for-bit.
    pub divergence: Option<Divergence<T>>,
    /// The deepest branch-point count seen across all runs — a size
    /// measure of the interleaving tree.
    pub max_branch_points: usize,
}

/// A schedule whose outcome broke bit-identity with the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence<T> {
    /// Zero-based index of the diverging schedule (schedule 0 is the
    /// baseline itself, so this is always ≥ 1).
    pub schedule: usize,
    /// The branch choices that produced it, one per branch point — replay
    /// material for debugging.
    pub choices: Vec<usize>,
    /// What that schedule produced instead of the baseline outcome.
    pub outcome: T,
}

impl<T> Exploration<T> {
    /// True when every explored schedule produced the baseline outcome
    /// *and* the tree was fully explored: the outcome is proven
    /// schedule-independent for this configuration.
    pub fn proves_schedule_independence(&self) -> bool {
        self.divergence.is_none() && !self.truncated
    }
}

/// Run `run` under every message-delivery schedule (up to
/// `max_schedules`) and compare outcomes.
///
/// `run` must execute the configuration on the **event-loop engine on
/// this thread** ([`crate::EngineKind::EventLoop`] — the schedule
/// override is thread-local) and digest the result into a `PartialEq`
/// value covering everything that must be schedule-invariant. It is
/// called once per schedule; the first call uses the engine's canonical
/// FIFO order, so `baseline` equals what a production run produces.
///
/// Deadlock-freedom falls out of the outcome comparison: the event loop
/// detects stalls structurally and surfaces [`crate::CommError::Stalled`]
/// through the program's receives, so a schedule that deadlocks yields a
/// different digest than one that completes (and the explorer itself
/// never hangs).
///
/// # Panics
/// Panics if `max_schedules` is zero, and propagates panics from `run`.
pub fn explore<T, F>(mut run: F, max_schedules: usize) -> Exploration<T>
where
    T: PartialEq,
    F: FnMut() -> T,
{
    assert!(max_schedules > 0, "must explore at least one schedule");
    let mut prefix: Vec<usize> = Vec::new();
    let mut baseline: Option<T> = None;
    let mut divergence = None;
    let mut schedules = 0;
    let mut max_branch_points = 0;
    let mut truncated = false;
    loop {
        let guard = ScheduleGuard::install(prefix.clone());
        let out = run();
        let trace = guard.finish();
        max_branch_points = max_branch_points.max(trace.len());
        match baseline.as_ref() {
            None => baseline = Some(out),
            Some(base) => {
                if divergence.is_none() && *base != out {
                    divergence = Some(Divergence {
                        schedule: schedules,
                        choices: trace.iter().map(|&(_, c)| c).collect(),
                        outcome: out,
                    });
                }
            }
        }
        schedules += 1;
        let next = next_prefix(&trace);
        match next {
            Some(p) if schedules < max_schedules => prefix = p,
            Some(_) => {
                truncated = true;
                break;
            }
            None => break,
        }
    }
    let Some(baseline) = baseline else {
        unreachable!("the loop always runs at least once");
    };
    Exploration {
        baseline,
        schedules,
        truncated,
        divergence,
        max_branch_points,
    }
}

/// The depth-first successor of a completed run's trace: replay every
/// choice before the deepest branch point that still has an untaken
/// sibling, then take that sibling. `None` when the trace is the last
/// leaf — all siblings everywhere are exhausted.
fn next_prefix(trace: &[(usize, usize)]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        let (width, choice) = trace[i];
        if choice + 1 < width {
            let mut prefix: Vec<usize> = trace[..i].iter().map(|&(_, c)| c).collect();
            prefix.push(choice + 1);
            return Some(prefix);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Multicomputer;
    use crate::exec::EngineKind;
    use crate::model::MachineModel;
    use crate::pack::PackBuffer;

    fn model() -> MachineModel {
        MachineModel::ibm_sp2()
    }

    /// Rank 0 fans a value out to every other rank; receivers read it.
    /// With p ranks all initially ready, the first scheduler step already
    /// offers a choice, so the tree has multiple leaves.
    fn fan_out_digest(p: usize) -> String {
        let m = Multicomputer::virtual_machine(p, model()).with_engine(EngineKind::EventLoop);
        let (results, ledgers) = m.run_tasks_with_ledgers(&(), |(), env| {
            Box::pin(async move {
                if env.rank() == 0 {
                    for dst in 1..env.nprocs() {
                        let mut b = PackBuffer::new();
                        b.push_u64(u64::try_from(dst).unwrap() * 7);
                        env.send(dst, b).unwrap();
                    }
                    0
                } else {
                    let got = env.recv_async(0).await.unwrap();
                    got.payload.cursor().read_u64()
                }
            })
        });
        format!("{results:?}|{ledgers:?}")
    }

    #[test]
    fn next_prefix_walks_the_tree_depth_first() {
        // A two-level tree: widths (3, 2). The sweep must visit
        // (0,0) (0,1) (1,0) (1,1) (2,0) (2,1) — six leaves.
        assert_eq!(next_prefix(&[(3, 0), (2, 0)]), Some(vec![0, 1]));
        assert_eq!(next_prefix(&[(3, 0), (2, 1)]), Some(vec![1]));
        assert_eq!(next_prefix(&[(3, 2), (2, 1)]), None);
        assert_eq!(next_prefix(&[]), None);
    }

    #[test]
    fn explore_enumerates_every_leaf_of_a_synthetic_tree() {
        // Simulate runs without an engine: the guard records nothing, so
        // traces are empty — a single-schedule tree.
        let report = explore(|| 42u32, 100);
        assert_eq!(report.schedules, 1);
        assert!(!report.truncated);
        assert!(report.proves_schedule_independence());
        assert_eq!(report.baseline, 42);
    }

    #[test]
    fn fan_out_outcomes_are_schedule_independent() {
        let report = explore(|| fan_out_digest(3), 10_000);
        assert!(
            report.schedules > 1,
            "a 3-rank fan-out must branch: {report:?}"
        );
        assert!(!report.truncated, "tree unexpectedly large: {report:?}");
        assert!(
            report.proves_schedule_independence(),
            "divergence: {:?}",
            report.divergence
        );
    }

    #[test]
    fn truncation_is_reported_when_the_cap_bites() {
        let report = explore(|| fan_out_digest(3), 2);
        assert_eq!(report.schedules, 2);
        assert!(report.truncated);
        assert!(!report.proves_schedule_independence());
    }

    #[test]
    fn a_schedule_sensitive_probe_is_caught() {
        // Host-side poll order is the one observable that legitimately
        // varies across schedules (everything inside the simulation is
        // designed not to). A probe that records it must diverge —
        // proving the explorer drives genuinely distinct interleavings
        // and that the comparison can fail.
        use std::sync::Mutex;
        let run = || {
            let order: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            let m = Multicomputer::virtual_machine(3, model()).with_engine(EngineKind::EventLoop);
            m.run_tasks(&order, |order, env| {
                Box::pin(async move {
                    order.lock().unwrap().push(env.rank());
                })
            });
            order.into_inner().unwrap()
        };
        let report = explore(run, 10_000);
        assert!(report.schedules > 1, "{report:?}");
        assert!(
            report.divergence.is_some(),
            "poll-order probe failed to diverge: {report:?}"
        );
        // Three independent tasks: every poll permutation is reachable,
        // so the tree has exactly 3! leaves.
        assert_eq!(report.schedules, 6, "{report:?}");
    }
}
