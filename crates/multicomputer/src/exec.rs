//! The event-loop engine: every simulated rank runs as a resumable task on
//! one OS thread, scheduled by message availability on the virtual
//! timeline.
//!
//! The threaded engine in [`crate::engine`] spawns one OS thread per rank,
//! which caps realistic machine sizes at around a thousand ranks. This
//! module removes that cap. The observation that makes it cheap: in
//! virtual-time mode the *only* operation that ever blocks on a peer is a
//! receive — sends charge the local clock and append to an unbounded
//! queue, acks are drained opportunistically, and `wait_all` is local NIC
//! arithmetic. A rank program is therefore an `async` function whose only
//! suspension points are receives, and the "scheduler" reduces to: run a
//! task until it needs a frame that has not been pushed yet, park it keyed
//! by the awaited source, and wake it when that source pushes a frame (or
//! finishes, which surfaces [`CommError::Disconnected`] exactly like a
//! dropped channel endpoint).
//!
//! # Determinism
//!
//! All charging, ARQ, fault-fate and trace logic lives in
//! [`crate::engine::Env`] above the transport seam, so a rank's ledger is a
//! pure function of its program order and of the frames it consumes, in
//! order, per link. The fabric preserves per-link FIFO exactly like the
//! channel matrix, and arrival stamps travel inside the frames — so the
//! ledgers are bit-identical to the threaded engine's by construction, no
//! matter in which order the scheduler interleaves tasks (the equality is
//! additionally enforced by a proptest over the chaos corpus). To keep the
//! *schedule* itself reproducible too, the ready queue is FIFO, wakes
//! happen in push order, and this module uses no wall-clock time, no
//! entropy and no unordered collections (the `sparsedist-lint` D rules
//! police this file).
//!
//! # Stall handling
//!
//! Deadlock detection is structural instead of wall-clock: when every
//! unfinished task is parked, no frame can ever arrive again — the
//! scheduler marks the fabric stalled and wakes everyone, so each pending
//! receive returns [`CommError::Stalled`] (the event-loop analogue of the
//! threaded engine's watchdog, but exact rather than timeout-based).

use crate::engine::{AckMsg, CommError, Frame};

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

/// Which execution backend a [`crate::Multicomputer`] uses to drive rank
/// tasks (see [`crate::Multicomputer::run_tasks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// One OS thread per simulated rank, connected by a channel matrix —
    /// the original engine. Every task future completes in a single poll
    /// because its receives block inside the poll.
    Threaded,
    /// Every rank is a resumable task on a single-threaded deterministic
    /// event loop; receives are yield points scheduled by frame
    /// availability. Virtual-time mode only.
    EventLoop,
}

impl EngineKind {
    /// The largest machine this backend supports. The threaded bound keeps
    /// thread-spawn storms away from OS limits; the event-loop bound is a
    /// sanity cap on fabric memory (per-rank state is O(1), so the loop
    /// comfortably drives the paper's sweeps at 65536 ranks).
    pub fn max_procs(self) -> usize {
        match self {
            EngineKind::Threaded => 1024,
            EngineKind::EventLoop => 131_072,
        }
    }
}

/// The shared mailbox fabric connecting event-loop tasks: the event-mode
/// replacement for the threaded engine's crossbeam channel matrix.
///
/// Everything lives in one `RefCell` because the event loop is strictly
/// single-threaded; borrows are confined to the short fabric methods, never
/// held across a task poll.
pub(crate) struct EventFabric {
    state: RefCell<FabricState>,
    /// Installed watchdog bound in milliseconds (0 = none), reported in
    /// [`CommError::Stalled`] for parity with the threaded engine.
    watchdog_ms: u64,
}

/// Mutable fabric state. Mailboxes are keyed `[dst][src]` with sparse
/// per-source queues (a `BTreeMap`, not a dense `Vec`, so a 65536-rank
/// machine does not allocate p² queues up front).
struct FabricState {
    /// In-flight data frames, FIFO per (src, dst) link.
    frames: Vec<BTreeMap<usize, VecDeque<Frame>>>,
    /// In-flight ack/nack control frames, same keying.
    acks: Vec<BTreeMap<usize, VecDeque<AckMsg>>>,
    /// Tasks whose future has completed (their "channels" are closed).
    done: Vec<bool>,
    /// The source each parked task is blocked on (a task waits on at most
    /// one link at a time — receives are sequential within a rank).
    waiting_on: Vec<Option<usize>>,
    /// Reverse index: tasks possibly parked on frames from rank `i`.
    /// Entries can go stale (the task was woken by a frame push since);
    /// wakes filter through `waiting_on` before enqueueing.
    waiters: Vec<Vec<usize>>,
    /// FIFO ready queue of runnable task ranks.
    ready: VecDeque<usize>,
    /// Guards against double-enqueueing a rank onto `ready`.
    queued: Vec<bool>,
    /// Set by the scheduler when every unfinished task is parked: no frame
    /// can ever arrive, so pending receives must error out. Cleared by any
    /// subsequent frame push (progress resumed).
    stalled: bool,
}

impl FabricState {
    fn enqueue(&mut self, rank: usize) {
        if !self.queued[rank] && !self.done[rank] {
            self.queued[rank] = true;
            self.ready.push_back(rank);
        }
    }

    fn pop_ready(&mut self) -> Option<usize> {
        let rank = self.ready.pop_front()?;
        self.queued[rank] = false;
        Some(rank)
    }

    /// Wake every task currently parked on `src` (stale waiter entries are
    /// skipped via the `waiting_on` check).
    fn wake_waiters_of(&mut self, src: usize) {
        let parked = std::mem::take(&mut self.waiters[src]);
        for w in parked {
            if self.waiting_on[w] == Some(src) {
                self.waiting_on[w] = None;
                self.enqueue(w);
            }
        }
    }
}

impl EventFabric {
    /// A fabric for `p` tasks, all initially runnable in rank order.
    pub(crate) fn new(p: usize, watchdog_ms: u64) -> Self {
        EventFabric {
            state: RefCell::new(FabricState {
                frames: (0..p).map(|_| BTreeMap::new()).collect(),
                acks: (0..p).map(|_| BTreeMap::new()).collect(),
                done: vec![false; p],
                waiting_on: vec![None; p],
                waiters: (0..p).map(|_| Vec::new()).collect(),
                ready: (0..p).collect(),
                queued: vec![true; p],
                stalled: false,
            }),
            watchdog_ms,
        }
    }

    /// Append a frame to the `src → dst` link, waking `dst` if it is
    /// parked on that link. Fails like a closed channel when `dst`'s task
    /// has already completed.
    pub(crate) fn push_frame(&self, dst: usize, src: usize, frame: Frame) -> Result<(), CommError> {
        let mut st = self.state.borrow_mut();
        if st.done[dst] {
            return Err(CommError::Disconnected { peer: dst });
        }
        st.frames[dst].entry(src).or_default().push_back(frame);
        st.stalled = false; // a frame in flight is progress
        if st.waiting_on[dst] == Some(src) {
            st.waiting_on[dst] = None;
            st.enqueue(dst);
        }
        Ok(())
    }

    /// Synchronous receive attempt, for [`crate::Env::recv`] callers that
    /// reached an event-mode env. Never parks (there is no thread to
    /// block): an empty link surfaces as a stall, pointing at the API
    /// contract that event-loop rank programs await their receives.
    pub(crate) fn try_next_frame(&self, rank: usize, src: usize) -> Result<Frame, CommError> {
        let mut st = self.state.borrow_mut();
        if let Some(frame) = st.frames[rank].get_mut(&src).and_then(VecDeque::pop_front) {
            return Ok(frame);
        }
        if st.done[src] {
            return Err(CommError::Disconnected { peer: src });
        }
        Err(CommError::Stalled {
            src,
            waited_ms: self.watchdog_ms,
        })
    }

    /// A future resolving to the next frame on the `src → rank` link (or
    /// the matching [`CommError`]); the task parks while the link is empty.
    pub(crate) fn frame_wait(self: &Rc<Self>, rank: usize, src: usize) -> FrameWait {
        FrameWait {
            fabric: Rc::clone(self),
            rank,
            src,
            yielded: false,
        }
    }

    /// Best-effort ack push (acks to a finished task vanish, exactly like
    /// sends on a dropped channel endpoint).
    pub(crate) fn push_ack(&self, dst: usize, src: usize, ack: AckMsg) {
        let mut st = self.state.borrow_mut();
        if !st.done[dst] {
            st.acks[dst].entry(src).or_default().push_back(ack);
        }
    }

    /// Pop the next pending ack from `from`, if any.
    pub(crate) fn pop_ack(&self, rank: usize, from: usize) -> Option<AckMsg> {
        self.state.borrow_mut().acks[rank]
            .get_mut(&from)
            .and_then(VecDeque::pop_front)
    }
}

/// Future for one pending receive on the fabric (see
/// [`EventFabric::frame_wait`]).
pub(crate) struct FrameWait {
    fabric: Rc<EventFabric>,
    rank: usize,
    src: usize,
    /// Whether the exploration-mode pre-consume yield already happened.
    yielded: bool,
}

impl Future for FrameWait {
    type Output = Result<Frame, CommError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut st = this.fabric.state.borrow_mut();
        // Under an installed schedule override, every receive parks once
        // *before* consuming, staying runnable: the scheduler may then
        // interleave any other ready rank between two receives, which is
        // exactly the "frame delivered later" case a production poll
        // short-circuits past. This widens the explored interleaving
        // space to per-receive granularity; plain runs skip it.
        if !this.yielded && !st.stalled && exploring() {
            this.yielded = true;
            st.enqueue(this.rank);
            return Poll::Pending;
        }
        if let Some(frame) = st.frames[this.rank]
            .get_mut(&this.src)
            .and_then(VecDeque::pop_front)
        {
            return Poll::Ready(Ok(frame));
        }
        if st.done[this.src] {
            // Drained and the peer has exited: the link can only ever be
            // empty from here on — the channel-close semantics.
            return Poll::Ready(Err(CommError::Disconnected { peer: this.src }));
        }
        if st.stalled {
            return Poll::Ready(Err(CommError::Stalled {
                src: this.src,
                waited_ms: this.fabric.watchdog_ms,
            }));
        }
        st.waiting_on[this.rank] = Some(this.src);
        st.waiters[this.src].push(this.rank);
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Pluggable scheduling (the `simcheck` seam)
//
// By default the loop pops the FIFO ready queue — one canonical schedule.
// The explorer (`crate::explore`) installs a thread-local override that
// picks *which* ready task runs at every step where the ready set offers
// a real choice (width > 1), and records the (width, choice) trace so a
// depth-first sweep can enumerate every delivery interleaving. The
// override lives in a thread-local because the event loop is strictly
// single-threaded and `Multicomputer` must stay `Sync`-agnostic.
// ---------------------------------------------------------------------------

/// A schedule override: replay `prefix` at the first branch points, then
/// take choice 0; record every branch point taken.
pub(crate) struct ScheduleState {
    /// Choices to replay, one per branch point (ready width > 1).
    prefix: Vec<usize>,
    /// Recorded `(width, choice)` per branch point, in order.
    pub(crate) trace: Vec<(usize, usize)>,
    cursor: usize,
}

thread_local! {
    static SCHEDULE: RefCell<Option<ScheduleState>> = const { RefCell::new(None) };
}

/// Whether a schedule override is installed on this thread (exploration
/// mode): receives then park once before consuming so the sweep sees
/// per-receive delivery granularity.
fn exploring() -> bool {
    SCHEDULE.with(|s| s.borrow().is_some())
}

/// Install a schedule override for the next event-loop run on this
/// thread. The returned guard uninstalls on drop (panic-safe) and hands
/// back the recorded trace via [`ScheduleGuard::finish`].
pub(crate) struct ScheduleGuard;

impl ScheduleGuard {
    pub(crate) fn install(prefix: Vec<usize>) -> Self {
        SCHEDULE.with(|s| {
            *s.borrow_mut() = Some(ScheduleState {
                prefix,
                trace: Vec::new(),
                cursor: 0,
            });
        });
        ScheduleGuard
    }

    /// Uninstall and return the branch-point trace of the run.
    pub(crate) fn finish(self) -> Vec<(usize, usize)> {
        SCHEDULE
            .with(|s| s.borrow_mut().take())
            .map_or_else(Vec::new, |st| st.trace)
    }
}

impl Drop for ScheduleGuard {
    fn drop(&mut self) {
        SCHEDULE.with(|s| {
            s.borrow_mut().take();
        });
    }
}

/// Pick the next runnable rank: FIFO by default, or the installed
/// schedule's choice at branch points. Decisions are recorded only where
/// the ready set offers a real choice — a width-1 step has exactly one
/// possible successor state, so exploring it adds nothing (the DPOR-lite
/// reduction).
fn pick_ready(st: &mut FabricState) -> Option<usize> {
    let width = st.ready.len();
    if width <= 1 {
        return st.pop_ready();
    }
    let choice = SCHEDULE.with(|s| {
        s.borrow_mut().as_mut().map(|sch| {
            let c = if sch.cursor < sch.prefix.len() {
                sch.prefix[sch.cursor].min(width - 1)
            } else {
                0
            };
            sch.cursor += 1;
            sch.trace.push((width, c));
            c
        })
    });
    match choice {
        None | Some(0) => st.pop_ready(),
        Some(c) => {
            let rank = st.ready.remove(c)?;
            st.queued[rank] = false;
            Some(rank)
        }
    }
}

fn noop_raw_waker() -> RawWaker {
    fn clone(_: *const ()) -> RawWaker {
        noop_raw_waker()
    }
    fn noop(_: *const ()) {}
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, noop, noop, noop);
    RawWaker::new(std::ptr::null(), &VTABLE)
}

/// A waker that does nothing: wakeups are tracked in the fabric's
/// `waiting_on`/`waiters` tables, not through the std waker protocol
/// (hand-rolled because `Waker::noop` postdates the MSRV).
pub(crate) fn noop_waker() -> Waker {
    // SAFETY: every vtable entry ignores its data pointer and carries no
    // state, so the RawWaker contract (clone/wake/wake_by_ref/drop over a
    // null pointer) is upheld trivially.
    unsafe { Waker::from_raw(noop_raw_waker()) }
}

/// Drive `tasks` (one per rank, index = rank) to completion on the fabric
/// and return their outputs in rank order.
///
/// The loop is deterministic: tasks are polled in FIFO ready order
/// starting from rank 0, a parked task is woken only by a frame push on
/// the link it awaits (or its peer finishing), and a global stall — every
/// unfinished task parked — synthesizes wakeups so pending receives
/// surface [`CommError::Stalled`] instead of deadlocking.
pub(crate) fn drive<'f, T>(
    mut tasks: Vec<Pin<Box<dyn Future<Output = T> + 'f>>>,
    fabric: &Rc<EventFabric>,
) -> Vec<T> {
    let p = tasks.len();
    let mut results: Vec<Option<T>> = (0..p).map(|_| None).collect();
    let mut remaining = p;
    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    while remaining > 0 {
        let next = pick_ready(&mut fabric.state.borrow_mut());
        let rank = match next {
            Some(rank) => rank,
            None => {
                // Every unfinished task is parked on a link that can never
                // deliver: a protocol stall. Wake them all so the pending
                // receives error out deterministically.
                let mut st = fabric.state.borrow_mut();
                st.stalled = true;
                for r in 0..p {
                    if !st.done[r] {
                        st.waiting_on[r] = None;
                        st.enqueue(r);
                    }
                }
                continue;
            }
        };
        match tasks[rank].as_mut().poll(&mut cx) {
            Poll::Ready(out) => {
                results[rank] = Some(out);
                remaining -= 1;
                let mut st = fabric.state.borrow_mut();
                st.done[rank] = true;
                // Closing the rank's "channels" is progress: peers blocked
                // on it must now observe the disconnect.
                st.stalled = false;
                st.wake_waiters_of(rank);
            }
            Poll::Pending => {
                let st = fabric.state.borrow();
                debug_assert!(
                    st.waiting_on[rank].is_some() || st.queued[rank],
                    "task {rank} pended without parking or re-enqueueing"
                );
            }
        }
    }
    results
        .into_iter()
        .map(|r| {
            // lint: allow(E002) — the loop above runs until every slot is filled
            r.expect("event loop finished with an unfinished task")
        })
        .collect()
}
